//! Graceful degradation: repairing a deployed design after a
//! [`ProblemDelta`] instead of re-solving from scratch.
//!
//! The paper's optimization runs offline with a generous time budget.
//! A fielded system that loses a node (or revises a WCET) needs a
//! *repaired* design orders of magnitude faster — and most of the old
//! design is usually still right. The repair pipeline:
//!
//! 1. [`apply_delta`] builds the post-delta [`Problem`] (same
//!    architecture and bus — killed nodes fall silent in their TDMA
//!    slot — with the delta's graph/WCET and remapped designer
//!    constraints).
//! 2. [`project_design`] translates the previous design into the
//!    post-delta id space: surviving decisions carry over, replicas
//!    on dead nodes are shed (shrinking the replication level), and
//!    removed/added processes are handled by the remap.
//! 3. [`repair`] runs the **escalation ladder**: four rungs of
//!    increasing effort, each with its own slice of the repair
//!    budget, each falling through to the next when it cannot accept
//!    — and the returned [`RepairOutcome`] records which rung
//!    produced the design and why the earlier rungs fell through.
//!
//! | rung | effort | accepts when |
//! |---|---|---|
//! | 0 [`RepairRung::Revalidate`] | validate + one evaluation | projected design schedulable **and** nothing dirty |
//! | 1 [`RepairRung::Localized`] | tabu over the dirty decisions only | converged to a schedulable local optimum in budget |
//! | 2 [`RepairRung::Warm`] | full warm-started tabu | schedulable within its slice |
//! | 3 [`RepairRung::Scratch`] | from-scratch [`optimize_with_cache`] | best effort (last resort) |
//!
//! Rung 0's acceptance returns immediately (nothing changed that the
//! old design does not already answer). Rungs 1 and 2 form a
//! progressive polish: an accepted localized repair is still handed
//! to the warm tabu, whose slice widens the search to the clean
//! decisions the delta's load shift may have invalidated in spirit if
//! not in letter. Rung 3 runs only when no earlier rung accepted —
//! it is the fallback, not a routine fourth pass.
//!
//! Every rung shares one [`Evaluator`] over one `Arc`-shared
//! [`EvalCache`]: the cache keys mix the *post-delta* problem
//! fingerprint, so entries from the pre-delta problem can never alias
//! (soundness), while rungs 1–3 reuse each other's candidate costs
//! (warmness). Rungs carry their best design forward, so escalation
//! never loses quality already found.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ftdes_model::delta::{AppliedDelta, CompatibilityReport, ProblemDelta};
use ftdes_model::design::{Design, DesignConstraints, ProcessDesign};
use ftdes_model::error::ModelError;
use ftdes_model::ids::{NodeId, ProcessId};
use ftdes_model::policy::{FtPolicy, MappingConstraint};
use ftdes_model::time::Time;
use ftdes_sched::Schedule;

use crate::cache::{EvalCache, EvalOutcome, Evaluator};
use crate::config::{SearchConfig, SearchStats};
use crate::error::OptError;
use crate::moves::candidate_decisions;
use crate::parallel::{effective_threads, WorkerPool};
use crate::problem::Problem;
use crate::space::PolicySpace;
use crate::strategy::{optimize_with_cache, Strategy};
use crate::tabu::tabu_search_mpa_with;

/// Builds the post-delta problem: the delta's graph and WCET table on
/// the unchanged architecture and bus, with designer constraints
/// remapped to the new id space (a mapping constraint pinning a
/// process to a node that died is dropped — keeping it would make the
/// process unplaceable by decree) and the engine knobs
/// (checkpoint range, splice/lookahead/occupancy toggles) carried
/// over.
///
/// # Errors
///
/// Propagates every [`ProblemDelta::apply`] error — including
/// [`ModelError::Unmappable`] when the platform degraded beyond what
/// any repair can absorb.
pub fn apply_delta(
    problem: &Problem,
    delta: &ProblemDelta,
) -> Result<(Problem, AppliedDelta), ModelError> {
    let applied = delta.apply(problem.graph(), problem.arch(), problem.wcet())?;

    let old = problem.constraints();
    let mut constraints = DesignConstraints::free(applied.graph.process_count());
    for i in 0..problem.process_count() {
        let p = ProcessId::new(i as u32);
        if let Some(q) = applied.map_process(p) {
            constraints.set_policy(q, old.policy(p));
            match old.mapping(p) {
                MappingConstraint::Fixed(n) if applied.killed_nodes().contains(&n) => {}
                c => constraints.set_mapping(q, c),
            }
        }
    }

    let opts = problem.schedule_options();
    let new = Problem::new(
        applied.graph.clone(),
        problem.arch().clone(),
        applied.wcet.clone(),
        *problem.fault_model(),
        problem.bus().clone(),
    )
    .with_max_checkpoints(problem.max_checkpoints())
    .with_constraints(constraints)
    .with_comm_lookahead(opts.comm_lookahead)
    .with_suffix_splice(opts.suffix_splice)
    .with_reconvergence(opts.reconvergence)
    .with_occupancy_backend(opts.occupancy)
    .with_priority_strategy(opts.priority);
    Ok((new, applied))
}

/// Projects the previous design onto the post-delta problem:
///
/// * a surviving process keeps its decision, with replicas on
///   now-ineligible nodes shed and the replication level shrunk to
///   match (checkpoint counts are clamped to the problem's range),
/// * a process whose whole mapping died falls back to its cheapest
///   admissible decision,
/// * an added process gets its cheapest admissible decision.
///
/// The result always passes [`Design::validate`] on `problem` — it is
/// the rung-0 candidate and every later rung's warm start.
///
/// # Errors
///
/// [`OptError::NoFeasiblePlacement`] when a process has no admissible
/// decision at all (cannot happen for deltas accepted by
/// [`apply_delta`], which re-validates mappability).
pub fn project_design(
    prev: &Design,
    applied: &AppliedDelta,
    problem: &Problem,
) -> Result<Design, OptError> {
    let fm = problem.fault_model();
    let wcet = problem.wcet();
    let n = problem.process_count();
    let mut decisions = Vec::with_capacity(n);
    for i in 0..n {
        let q = ProcessId::new(i as u32);
        let projected = applied.origin_of(q).and_then(|p| {
            let d = prev.decision(p);
            let surviving: Vec<NodeId> = d
                .mapping
                .iter()
                .copied()
                .filter(|&node| wcet.is_eligible(q, node))
                .collect();
            if surviving.is_empty() {
                return None;
            }
            if let MappingConstraint::Fixed(required) = problem.constraints().mapping(q) {
                if surviving[0] != required {
                    // The primary moved off the pinned node: let the
                    // fallback enumerate constraint-respecting
                    // decisions instead of guessing here.
                    return None;
                }
            }
            let r = (surviving.len() as u32).min(fm.max_replicas());
            let mapping: Vec<NodeId> = surviving.into_iter().take(r as usize).collect();
            let policy =
                rebuild_policy(q, r, d.policy.checkpoints(), fm, problem.max_checkpoints());
            ProcessDesign::new(policy, mapping).ok()
        });
        match projected {
            Some(d) => decisions.push(d),
            None => decisions.push(fallback_decision(problem, q)?),
        }
    }
    let design = Design::from_decisions(decisions);
    debug_assert!(design
        .validate(
            problem.arch(),
            problem.wcet(),
            problem.fault_model(),
            problem.constraints()
        )
        .is_ok());
    Ok(design)
}

/// Rebuilds a policy for replication level `r`, keeping the previous
/// checkpoint count when the new level still has a re-execution
/// budget to roll back with.
fn rebuild_policy(
    q: ProcessId,
    r: u32,
    checkpoints: u32,
    fm: &ftdes_model::fault::FaultModel,
    max_checkpoints: u32,
) -> FtPolicy {
    let base = FtPolicy::new(q, r.clamp(1, fm.max_replicas()), fm)
        .unwrap_or_else(|_| FtPolicy::reexecution(fm));
    let want = checkpoints.clamp(1, max_checkpoints.max(1));
    base.with_checkpoints(q, want, fm).unwrap_or(base)
}

/// The cheapest admissible decision for `q` — first entry of the
/// deterministic candidate enumeration (lowest replication level,
/// fastest primary, one segment).
fn fallback_decision(problem: &Problem, q: ProcessId) -> Result<ProcessDesign, OptError> {
    candidate_decisions(problem, PolicySpace::Mixed, q)
        .into_iter()
        .next()
        .ok_or(OptError::NoFeasiblePlacement { process: q })
}

/// Per-rung wall-clock slices of a repair run. Rung 0 needs no slice
/// (one validation + one evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairBudget {
    /// Slice for rung 1, the localized tabu over dirty decisions.
    pub localized: Duration,
    /// Slice for rung 2, the full warm-started tabu.
    pub warm: Duration,
    /// Slice for rung 3, the from-scratch search.
    pub scratch: Duration,
}

impl RepairBudget {
    /// Splits `total` into the default 25% / 35% / 40% rung slices.
    #[must_use]
    pub fn from_total(total: Duration) -> Self {
        RepairBudget {
            localized: total.mul_f64(0.25),
            warm: total.mul_f64(0.35),
            scratch: total.mul_f64(0.40),
        }
    }

    /// The summed wall-clock ceiling of the ladder.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.localized + self.warm + self.scratch
    }
}

/// The four rungs of the escalation ladder, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairRung {
    /// Rung 0: re-validate and re-evaluate the projected design
    /// as-is.
    Revalidate,
    /// Rung 1: tabu search restricted to the decisions the
    /// compatibility report marked dirty.
    Localized,
    /// Rung 2: full tabu search warm-started from the best design so
    /// far.
    Warm,
    /// Rung 3: from-scratch optimization (shares the ladder's
    /// evaluation cache).
    Scratch,
}

impl fmt::Display for RepairRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RepairRung::Revalidate => "rung 0 (revalidate)",
            RepairRung::Localized => "rung 1 (localized tabu)",
            RepairRung::Warm => "rung 2 (warm tabu)",
            RepairRung::Scratch => "rung 3 (from scratch)",
        };
        f.write_str(name)
    }
}

/// How one rung of the ladder ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RungStatus {
    /// The rung produced a schedulable design within its budget
    /// slice. The ladder still lets rung 2 polish an accepted
    /// localized repair; it stops escalating to the from-scratch
    /// fallback once any rung has accepted.
    Accepted,
    /// The rung ran but its result could not be accepted; the reason
    /// (not schedulable, dirty decisions remain, ...) is recorded.
    Rejected(String),
    /// The rung hit its budget slice before converging and escalated.
    TimedOut,
    /// The rung did not apply (e.g. nothing dirty to search locally).
    Skipped(String),
}

/// One ladder step as recorded in the [`RepairOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungAttempt {
    /// Which rung.
    pub rung: RepairRung,
    /// How it ended.
    pub status: RungStatus,
    /// Wall-clock spent on this rung.
    pub elapsed: Duration,
    /// Best schedule length the rung produced, if it produced one.
    pub length: Option<Time>,
}

/// The result of a repair: the post-delta problem, the repaired
/// design/schedule, and the full provenance of how the ladder got
/// there.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The post-delta problem the design solves.
    pub problem: Problem,
    /// The repaired design.
    pub design: Design,
    /// Its schedule on the post-delta problem.
    pub schedule: Schedule,
    /// The rung that produced `design`.
    pub rung: RepairRung,
    /// Every rung attempted, in order, with its outcome — the
    /// retry/timeout/fallback audit trail.
    pub attempts: Vec<RungAttempt>,
    /// Which decisions of the previous design survived the delta.
    pub report: CompatibilityReport,
    /// Aggregated search statistics over all rungs.
    pub stats: SearchStats,
}

impl RepairOutcome {
    /// Worst-case schedule length δ of the repaired design.
    #[must_use]
    pub fn length(&self) -> Time {
        self.schedule.length()
    }

    /// Returns `true` when the repaired design meets all deadlines.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.schedule.is_schedulable()
    }
}

/// Errors of the repair pipeline.
#[derive(Debug)]
pub enum RepairError {
    /// The delta itself could not be applied (unknown references,
    /// platform degraded beyond mappability, ...).
    Delta(ModelError),
    /// The search failed (no feasible placement, scheduler error).
    Opt(OptError),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Delta(e) => write!(f, "delta rejected: {e}"),
            RepairError::Opt(e) => write!(f, "repair search failed: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<ModelError> for RepairError {
    fn from(e: ModelError) -> Self {
        RepairError::Delta(e)
    }
}

impl From<OptError> for RepairError {
    fn from(e: OptError) -> Self {
        RepairError::Opt(e)
    }
}

/// Repairs `prev` after `delta` with a fresh evaluation cache. See
/// [`repair_with_cache`].
///
/// # Errors
///
/// Same as [`repair_with_cache`].
pub fn repair(
    problem: &Problem,
    prev: &Design,
    delta: &ProblemDelta,
    budget: &RepairBudget,
    cfg: &SearchConfig,
) -> Result<RepairOutcome, RepairError> {
    let cache = Arc::new(EvalCache::default());
    repair_with_cache(problem, prev, delta, budget, cfg, &cache)
}

/// Repairs `prev` — a design for `problem` — after `delta`, running
/// the escalation ladder described in the module docs over the shared
/// `cache`.
///
/// `cfg` supplies the search knobs (goal, tenure, window sizes,
/// iteration caps); its `time_limit` is ignored — the rung slices of
/// `budget` govern wall-clock instead.
///
/// # Errors
///
/// * [`RepairError::Delta`] when the delta cannot be applied,
/// * [`RepairError::Opt`] when no rung could produce any schedule at
///   all.
///
/// A *schedulability* failure is not an error: the outcome's schedule
/// reports `is_schedulable() == false` and the attempts record why
/// every rung fell through — callers decide whether a degraded-mode
/// (deadline-missing) design is acceptable.
pub fn repair_with_cache(
    problem: &Problem,
    prev: &Design,
    delta: &ProblemDelta,
    budget: &RepairBudget,
    cfg: &SearchConfig,
    cache: &Arc<EvalCache>,
) -> Result<RepairOutcome, RepairError> {
    let (new_problem, applied) = apply_delta(problem, delta)?;
    let report = applied.compatibility(prev, new_problem.fault_model());
    let projected = project_design(prev, &applied, &new_problem)?;
    run_ladder(new_problem, projected, report, budget, cfg, cache)
}

/// Best-so-far carried between rungs.
struct Carried {
    design: Design,
    schedule: Arc<Schedule>,
    rung: RepairRung,
}

impl Carried {
    fn offer(&mut self, design: Design, schedule: Arc<Schedule>, rung: RepairRung) {
        if schedule.cost() < self.schedule.cost() {
            self.design = design;
            self.schedule = schedule;
            self.rung = rung;
        }
    }
}

fn run_ladder(
    problem: Problem,
    projected: Design,
    report: CompatibilityReport,
    budget: &RepairBudget,
    cfg: &SearchConfig,
    cache: &Arc<EvalCache>,
) -> Result<RepairOutcome, RepairError> {
    let pool = WorkerPool::new(effective_threads(cfg.threads));
    let evaluator = Evaluator::with_shared_cache(&problem, Arc::clone(cache));
    let mut stats = SearchStats::default();
    let mut attempts = Vec::new();
    let started = Instant::now();

    // Rung slices ignore cfg.time_limit: the ladder owns wall-clock.
    let cfg = SearchConfig {
        time_limit: None,
        ..cfg.clone()
    };

    // --- Rung 0: re-validate the projected design as-is. ---
    let t0 = Instant::now();
    let projected_schedule = match projected.validate(
        problem.arch(),
        problem.wcet(),
        problem.fault_model(),
        problem.constraints(),
    ) {
        Ok(()) => match evaluator.schedule(&projected) {
            Ok(schedule) => Some(schedule),
            Err(e) => {
                attempts.push(RungAttempt {
                    rung: RepairRung::Revalidate,
                    status: RungStatus::Rejected(format!(
                        "projected design fails to schedule: {e}"
                    )),
                    elapsed: t0.elapsed(),
                    length: None,
                });
                None
            }
        },
        Err(e) => {
            attempts.push(RungAttempt {
                rung: RepairRung::Revalidate,
                status: RungStatus::Rejected(format!("projected design invalid: {e}")),
                elapsed: t0.elapsed(),
                length: None,
            });
            None
        }
    };
    let mut carried = match projected_schedule {
        Some(schedule) => {
            stats.evaluations += 1;
            let schedulable = schedule.is_schedulable();
            if schedulable && report.fully_compatible() {
                attempts.push(RungAttempt {
                    rung: RepairRung::Revalidate,
                    status: RungStatus::Accepted,
                    elapsed: t0.elapsed(),
                    length: Some(schedule.length()),
                });
                stats.elapsed = started.elapsed();
                return Ok(RepairOutcome {
                    problem,
                    design: projected,
                    schedule: Arc::unwrap_or_clone(schedule),
                    rung: RepairRung::Revalidate,
                    attempts,
                    report,
                    stats,
                });
            }
            attempts.push(RungAttempt {
                rung: RepairRung::Revalidate,
                status: RungStatus::Rejected(if schedulable {
                    format!("{} dirty decision(s) to re-optimize", report.dirty().len())
                } else {
                    "projected design misses deadlines".to_string()
                }),
                elapsed: t0.elapsed(),
                length: Some(schedule.length()),
            });
            Some(Carried {
                design: projected.clone(),
                schedule,
                rung: RepairRung::Revalidate,
            })
        }
        None => None,
    };

    // --- Rung 1: localized tabu over the dirty decisions. ---
    let t1 = Instant::now();
    let dirty: Vec<ProcessId> = report.dirty_processes().collect();
    if dirty.is_empty() {
        attempts.push(RungAttempt {
            rung: RepairRung::Localized,
            status: RungStatus::Skipped("no dirty decisions to search".into()),
            elapsed: Duration::ZERO,
            length: None,
        });
    } else if let Some(base) = &carried {
        let deadline = t1 + budget.localized;
        match localized_tabu(
            &evaluator,
            &pool,
            &dirty,
            base.design.clone(),
            &cfg,
            deadline,
            &mut stats,
        ) {
            Ok(local) => {
                let accepted = local.converged && local.schedule.is_schedulable();
                let length = local.schedule.length();
                carried.as_mut().expect("base exists").offer(
                    local.design,
                    local.schedule,
                    RepairRung::Localized,
                );
                // Accepted does not return yet: rung 2 polishes the
                // localized optimum within its own slice (the
                // localized neighborhood cannot move clean decisions,
                // whose context the delta may have changed a lot).
                attempts.push(RungAttempt {
                    rung: RepairRung::Localized,
                    status: if accepted {
                        RungStatus::Accepted
                    } else if local.converged {
                        RungStatus::Rejected("local optimum misses deadlines".into())
                    } else {
                        RungStatus::TimedOut
                    },
                    elapsed: t1.elapsed(),
                    length: Some(length),
                });
            }
            Err(e) => attempts.push(RungAttempt {
                rung: RepairRung::Localized,
                status: RungStatus::Rejected(format!("localized search failed: {e}")),
                elapsed: t1.elapsed(),
                length: None,
            }),
        }
    } else {
        attempts.push(RungAttempt {
            rung: RepairRung::Localized,
            status: RungStatus::Skipped("no valid warm start to search from".into()),
            elapsed: Duration::ZERO,
            length: None,
        });
    }

    // --- Rung 2: full warm-started tabu. ---
    let t2 = Instant::now();
    if budget.warm.is_zero() {
        // Warm tabu is an anytime search: with a cutoff already in the
        // past it would hand back the start design unchanged, which
        // must not count as this rung "producing" a repair.
        attempts.push(RungAttempt {
            rung: RepairRung::Warm,
            status: RungStatus::TimedOut,
            elapsed: Duration::ZERO,
            length: None,
        });
    } else if let Some(base) = &carried {
        let start = (base.design.clone(), (*base.schedule).clone());
        let cutoff = Some(t2 + budget.warm);
        match tabu_search_mpa_with(
            &evaluator,
            &pool,
            PolicySpace::Mixed,
            start,
            &cfg,
            cutoff,
            &mut stats,
        ) {
            Ok((design, schedule)) => {
                let schedule = Arc::new(schedule);
                let length = schedule.length();
                let accepted = schedule.is_schedulable();
                carried.as_mut().expect("base exists").offer(
                    design,
                    Arc::clone(&schedule),
                    RepairRung::Warm,
                );
                attempts.push(RungAttempt {
                    rung: RepairRung::Warm,
                    status: if accepted {
                        RungStatus::Accepted
                    } else {
                        RungStatus::Rejected("warm tabu result misses deadlines".into())
                    },
                    elapsed: t2.elapsed(),
                    length: Some(length),
                });
            }
            Err(e) => attempts.push(RungAttempt {
                rung: RepairRung::Warm,
                status: RungStatus::Rejected(format!("warm tabu failed: {e}")),
                elapsed: t2.elapsed(),
                length: None,
            }),
        }
    } else {
        attempts.push(RungAttempt {
            rung: RepairRung::Warm,
            status: RungStatus::Skipped("no valid warm start".into()),
            elapsed: Duration::ZERO,
            length: None,
        });
    }

    // Rungs 1–2 are a progressive polish of the projected design;
    // the from-scratch fallback only runs when neither of them (nor
    // rung 0) *accepted* — a merely-schedulable carry (e.g. a dirty
    // projection that happens to meet deadlines) is not endorsement,
    // or the ladder could return unpolished designs whenever the
    // earlier rungs time out.
    let endorsed = attempts.iter().any(|a| a.status == RungStatus::Accepted);
    if endorsed {
        if let Some(best) = carried {
            // An Accepted rung produced a zero-violation design and
            // `offer` keeps the cost minimum (violation first), so
            // the carried best is schedulable.
            stats.elapsed = started.elapsed();
            return Ok(RepairOutcome {
                problem,
                design: best.design,
                schedule: Arc::unwrap_or_clone(best.schedule),
                rung: best.rung,
                attempts,
                report,
                stats,
            });
        }
    }

    // --- Rung 3: from scratch (shares the ladder's cache). ---
    let t3 = Instant::now();
    let scratch_cfg = SearchConfig {
        time_limit: Some(budget.scratch),
        ..cfg.clone()
    };
    match optimize_with_cache(&problem, Strategy::Mxr, &scratch_cfg, cache) {
        Ok(outcome) => {
            stats.evaluations += outcome.stats.evaluations;
            stats.cache_hits += outcome.stats.cache_hits;
            stats.pruned += outcome.stats.pruned;
            stats.greedy_steps += outcome.stats.greedy_steps;
            stats.tabu_iterations += outcome.stats.tabu_iterations;
            let schedule = Arc::new(outcome.schedule);
            let length = schedule.length();
            attempts.push(RungAttempt {
                rung: RepairRung::Scratch,
                status: if schedule.is_schedulable() {
                    RungStatus::Accepted
                } else {
                    RungStatus::Rejected("even from-scratch search misses deadlines".into())
                },
                elapsed: t3.elapsed(),
                length: Some(length),
            });
            match carried.as_mut() {
                Some(c) => c.offer(outcome.design, schedule, RepairRung::Scratch),
                None => {
                    carried = Some(Carried {
                        design: outcome.design,
                        schedule,
                        rung: RepairRung::Scratch,
                    });
                }
            }
        }
        Err(e) => {
            attempts.push(RungAttempt {
                rung: RepairRung::Scratch,
                status: RungStatus::Rejected(format!("from-scratch search failed: {e}")),
                elapsed: t3.elapsed(),
                length: None,
            });
        }
    }

    stats.elapsed = started.elapsed();
    let best = carried.ok_or(RepairError::Opt(OptError::NoFeasiblePlacement {
        process: ProcessId::new(0),
    }))?;
    Ok(RepairOutcome {
        problem,
        design: best.design,
        schedule: Arc::unwrap_or_clone(best.schedule),
        rung: best.rung,
        attempts,
        report,
        stats,
    })
}

/// The result of the localized search.
struct LocalResult {
    design: Design,
    schedule: Arc<Schedule>,
    /// `true` when the search reached a local optimum before its
    /// deadline (as opposed to being cut off mid-descent).
    converged: bool,
}

/// Tabu search restricted to the dirty decisions: the move set is the
/// full decision neighbourhood of each dirty process (replication
/// level × primary × checkpoints), clean processes are frozen. The
/// trajectory is deterministic — candidates are enumerated in a fixed
/// order and the winner is the `(cost, index)` minimum, exactly like
/// the full tabu search.
#[allow(clippy::too_many_arguments)]
fn localized_tabu(
    evaluator: &Evaluator<'_>,
    pool: &WorkerPool,
    dirty: &[ProcessId],
    start: Design,
    cfg: &SearchConfig,
    deadline: Instant,
    stats: &mut SearchStats,
) -> Result<LocalResult, OptError> {
    let problem = evaluator.problem();
    // Fixed candidate table over the dirty set only.
    let cands: Vec<(ProcessId, Vec<ProcessDesign>)> = dirty
        .iter()
        .map(|&p| (p, candidate_decisions(problem, PolicySpace::Mixed, p)))
        .filter(|(_, c)| !c.is_empty())
        .collect();

    let mut now = start;
    let (mut now_cost, _) = evaluator.evaluate(&now).map_err(OptError::from)?;
    let mut best = now.clone();
    let mut best_cost = now_cost;

    // Tabu memory over dirty-process indices.
    let tenure = (dirty.len() / 2).max(2);
    let mut tabu_until = vec![0usize; cands.len()];
    let stall_limit = (dirty.len() * 2).max(4);
    let mut stall = 0usize;
    let mut iter = 0usize;
    let mut converged = false;
    let max_iters = cfg.max_tabu_iterations.max(1);

    while iter < max_iters {
        if Instant::now() >= deadline {
            break;
        }
        iter += 1;
        stats.tabu_iterations += 1;

        // The window: every non-no-op candidate of every dirty
        // process, in (process, candidate) order.
        let mut window: Vec<(usize, ProcessId, &ProcessDesign)> = Vec::new();
        for (ci, (p, decisions)) in cands.iter().enumerate() {
            let current = now.decision(*p);
            for d in decisions {
                if d != current {
                    window.push((ci, *p, d));
                }
            }
        }
        if window.is_empty() {
            converged = true;
            break;
        }

        let ceval = evaluator.candidate_eval(&now, None, None);
        let scored = pool
            .try_map_init(
                &window,
                || now.clone(),
                |design, _, &(_, p, d)| {
                    ceval
                        .eval_move(design, p, d)
                        .map(|(outcome, hit)| Some((outcome, hit)))
                },
            )
            .map_err(OptError::from)?;

        // Deterministic winner: (cost, window index) minimum over
        // non-tabu candidates, with aspiration on the global best.
        let mut winner: Option<(ftdes_sched::ScheduleCost, usize)> = None;
        for (wi, slot) in scored.iter().enumerate() {
            let Some((outcome, hit)) = slot else { continue };
            if *hit {
                stats.cache_hits += 1;
            } else {
                stats.evaluations += 1;
            }
            let cost = match outcome {
                EvalOutcome::Exact(c) => *c,
                EvalOutcome::LowerBound(c) => *c,
            };
            let (ci, _, _) = window[wi];
            let is_tabu = tabu_until[ci] > iter && cost >= best_cost;
            if is_tabu {
                continue;
            }
            if winner.is_none_or(|(wc, wwi)| (cost, wi) < (wc, wwi)) {
                winner = Some((cost, wi));
            }
        }
        let Some((w_cost, wi)) = winner else {
            converged = true;
            break;
        };
        let (ci, p, d) = window[wi];
        now.set_decision(p, d.clone());
        now_cost = w_cost;
        tabu_until[ci] = iter + tenure;

        if now_cost < best_cost {
            best = now.clone();
            best_cost = now_cost;
            stall = 0;
        } else {
            stall += 1;
            if stall >= stall_limit {
                converged = true;
                break;
            }
        }
    }

    let schedule = evaluator.schedule(&best).map_err(OptError::from)?;
    Ok(LocalResult {
        design: best,
        schedule,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdes_gen::paper_workload;
    use ftdes_model::architecture::Architecture;
    use ftdes_model::fault::FaultModel;
    use ftdes_ttp::config::BusConfig;

    fn small_problem(seed: u64) -> Problem {
        let arch = Architecture::with_node_count(3);
        let workload = paper_workload(12, &arch, seed);
        let largest = workload
            .graph
            .edges()
            .iter()
            .map(|e| e.message.size)
            .max()
            .unwrap_or(1)
            .max(1);
        let bus = BusConfig::initial(&arch, largest, Time::from_us(2_500)).unwrap();
        Problem::new(
            workload.graph,
            arch,
            workload.wcet,
            FaultModel::new(1, Time::from_ms(5)),
            bus,
        )
    }

    fn quick_cfg() -> SearchConfig {
        SearchConfig {
            max_tabu_iterations: 60,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn identity_delta_accepts_at_rung_zero() {
        let problem = small_problem(7);
        let outcome = crate::optimize(&problem, Strategy::Mxr, &quick_cfg()).unwrap();
        let budget = RepairBudget::from_total(Duration::from_millis(400));
        let repaired = repair(
            &problem,
            &outcome.design,
            &ProblemDelta::new(),
            &budget,
            &quick_cfg(),
        )
        .unwrap();
        assert_eq!(repaired.rung, RepairRung::Revalidate);
        assert!(repaired.report.fully_compatible());
        assert_eq!(repaired.length(), outcome.schedule.length());
        assert_eq!(repaired.attempts.len(), 1);
        assert_eq!(repaired.attempts[0].status, RungStatus::Accepted);
    }

    #[test]
    fn kill_node_repairs_off_the_dead_node() {
        let problem = small_problem(11);
        let outcome = crate::optimize(&problem, Strategy::Mxr, &quick_cfg()).unwrap();
        let dead = NodeId::new(0);
        let budget = RepairBudget::from_total(Duration::from_millis(800));
        let repaired = repair(
            &problem,
            &outcome.design,
            &ProblemDelta::kill_node(dead),
            &budget,
            &quick_cfg(),
        )
        .unwrap();
        // No replica of the repaired design may reference the dead
        // node, and the design must validate on the new problem.
        for (_, d) in repaired.design.iter() {
            assert!(!d.mapping.contains(&dead));
        }
        repaired
            .design
            .validate(
                repaired.problem.arch(),
                repaired.problem.wcet(),
                repaired.problem.fault_model(),
                repaired.problem.constraints(),
            )
            .unwrap();
        // The ladder recorded how it got there.
        assert!(!repaired.attempts.is_empty());
        assert!(repaired.attempts.iter().any(|a| a.rung == repaired.rung));
    }

    #[test]
    fn projection_sheds_dead_replicas() {
        let problem = small_problem(3);
        let outcome = crate::optimize(&problem, Strategy::Mr, &quick_cfg()).unwrap();
        let dead = NodeId::new(1);
        let (new_problem, applied) = apply_delta(&problem, &ProblemDelta::kill_node(dead)).unwrap();
        let projected = project_design(&outcome.design, &applied, &new_problem).unwrap();
        projected
            .validate(
                new_problem.arch(),
                new_problem.wcet(),
                new_problem.fault_model(),
                new_problem.constraints(),
            )
            .unwrap();
        for (_, d) in projected.iter() {
            assert!(!d.mapping.contains(&dead));
        }
    }

    #[test]
    fn ladder_times_out_into_later_rungs_with_zero_budget() {
        // A zero localized/warm budget forces the ladder to fall
        // through (dirty decisions exist, but no time to fix them
        // locally), ending at the scratch rung.
        let problem = small_problem(5);
        let outcome = crate::optimize(&problem, Strategy::Mxr, &quick_cfg()).unwrap();
        let budget = RepairBudget {
            localized: Duration::ZERO,
            warm: Duration::ZERO,
            scratch: Duration::from_millis(500),
        };
        let repaired = repair(
            &problem,
            &outcome.design,
            &ProblemDelta::kill_node(NodeId::new(2)),
            &budget,
            &quick_cfg(),
        )
        .unwrap();
        let rungs: Vec<RepairRung> = repaired.attempts.iter().map(|a| a.rung).collect();
        assert!(rungs.contains(&RepairRung::Revalidate));
        assert!(rungs.contains(&RepairRung::Scratch));
    }

    #[test]
    fn unmappable_delta_is_an_error() {
        let problem = small_problem(2);
        let outcome = crate::optimize(&problem, Strategy::Mxr, &quick_cfg()).unwrap();
        // Killing every node is beyond repair.
        let delta = ProblemDelta::kill_node(NodeId::new(0))
            .and(ftdes_model::delta::DeltaOp::KillNode {
                node: NodeId::new(1),
            })
            .and(ftdes_model::delta::DeltaOp::KillNode {
                node: NodeId::new(2),
            });
        let budget = RepairBudget::from_total(Duration::from_millis(100));
        let err = repair(&problem, &outcome.design, &delta, &budget, &quick_cfg()).unwrap_err();
        assert!(matches!(err, RepairError::Delta(_)));
    }
}
