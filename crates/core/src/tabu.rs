//! `TabuSearchMPA` (paper §5.2, Fig. 9).
//!
//! A neighbourhood search over mapping / policy moves for the
//! processes on the critical path, steered by a *selective history*:
//!
//! * `Tabu(Pi)` — non-zero means `Pi` was moved recently and should
//!   not be selected again, *unless* the move beats the best-so-far
//!   solution (aspiration, line 9);
//! * `Wait(Pi)` — iterations since `Pi` was last moved; once it
//!   exceeds `|Γ|` the process becomes a diversification candidate
//!   (line 12).
//!
//! Selection (lines 14–20): prefer a solution better than the
//! best-so-far; otherwise diversify; otherwise take the best non-tabu
//! move even if it worsens the cost (that is what lets the search
//! leave local optima).

use std::sync::Arc;
use std::time::Instant;

use ftdes_model::design::Design;
use ftdes_sched::{PlacementCheckpoints, Schedule};

use crate::cache::{EvalOutcome, Evaluator};
use crate::config::{Goal, SearchConfig, SearchStats};
use crate::error::OptError;
use crate::moves::{MoveRef, MoveTable};
use crate::parallel::{effective_threads, WorkerPool};
use crate::problem::Problem;
use crate::space::PolicySpace;

/// An evaluated neighbour.
struct Candidate {
    /// Position of the move in this iteration's window — the
    /// deterministic tiebreaker of candidate selection.
    index: usize,
    mv: MoveRef,
    /// Exact cost, or the certified lower bound of a bounded-pruned
    /// run (resolved to exact before it can influence the selection).
    outcome: EvalOutcome,
}

impl Candidate {
    fn cost(&self) -> ftdes_sched::ScheduleCost {
        self.outcome.cost()
    }
}

/// Lines 9–20 of paper Fig. 9: aspiration / diversification /
/// best-admissible selection over the window, resolved by the total
/// order on `(cost, move index)`. Pruned candidates participate with
/// their lower bounds; [`tabu_search_mpa_with`] re-evaluates exactly
/// any pruned candidate that could still influence the outcome before
/// accepting a selection, so the result is identical to an all-exact
/// window.
fn select_candidate(
    candidates: &[Candidate],
    best_cost: ftdes_sched::ScheduleCost,
    tabu: &[usize],
    wait: &[usize],
    cfg: &SearchConfig,
    n: usize,
) -> Option<usize> {
    let is_tabu = |c: &Candidate| tabu[c.mv.process.index()] > 0;
    let aspirates = |c: &Candidate| cfg.aspiration && c.cost() < best_cost;
    let is_waiting = |c: &Candidate| cfg.diversification && wait[c.mv.process.index()] > n;
    let admissible = |c: &Candidate| !is_tabu(c) || aspirates(c) || is_waiting(c);
    let best_of = |pred: &dyn Fn(&Candidate) -> bool| -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| pred(c))
            .min_by_key(|(_, c)| (c.cost(), c.index))
            .map(|(i, _)| i)
    };

    let x_now = best_of(&admissible);
    let selected = match x_now {
        Some(i) if candidates[i].cost() < best_cost => Some(i),
        _ => best_of(&|c: &Candidate| is_waiting(c))
            .or_else(|| best_of(&|c: &Candidate| !is_tabu(c)))
            .or(x_now),
    };
    // Every candidate may be tabu without aspiring: then simply take
    // the overall best to keep the search moving.
    selected.or_else(|| best_of(&|_| true))
}

/// Runs the tabu search from `start` until the goal is reached or
/// the limits are exhausted, returning the best design found.
///
/// Candidate evaluation is parallel (see [`SearchConfig::threads`])
/// and memoized (see [`SearchConfig::eval_cache`]); both are pure
/// throughput knobs — the search trajectory is bit-identical across
/// thread counts because selection resolves ties by
/// `(cost, move index)`.
///
/// # Errors
///
/// Propagates [`OptError::Sched`] when a candidate cannot be
/// evaluated.
pub fn tabu_search_mpa(
    problem: &Problem,
    space: PolicySpace,
    start: (Design, Schedule),
    cfg: &SearchConfig,
    cutoff: Option<Instant>,
    stats: &mut SearchStats,
) -> Result<(Design, Schedule), OptError> {
    let evaluator = Evaluator::with_cache(problem, cfg.eval_cache);
    let pool = WorkerPool::new(effective_threads(cfg.threads));
    tabu_search_mpa_with(&evaluator, &pool, space, start, cfg, cutoff, stats)
}

/// [`tabu_search_mpa`] sharing a caller-owned [`Evaluator`] and
/// [`WorkerPool`], so the memoization cache and the worker threads
/// span the greedy phase, both staged tabu passes and any further
/// evaluation the caller performs.
///
/// # Errors
///
/// Same as [`tabu_search_mpa`].
pub fn tabu_search_mpa_with(
    evaluator: &Evaluator<'_>,
    pool: &WorkerPool,
    space: PolicySpace,
    start: (Design, Schedule),
    cfg: &SearchConfig,
    cutoff: Option<Instant>,
    stats: &mut SearchStats,
) -> Result<(Design, Schedule), OptError> {
    let problem = evaluator.problem();
    let n = problem.process_count();
    let tenure = cfg.tenure_for(n);
    let table = MoveTable::new(problem, space);
    let mut tabu = vec![0usize; n];
    let mut wait = vec![0usize; n];
    let mut window: Vec<MoveRef> = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    // Prefix checkpoints of the current solution's placement: empty
    // for the first window (the start schedule was materialized
    // elsewhere), then refreshed for free by every winner
    // materialization.
    let mut ckpts = PlacementCheckpoints::new();

    let (start_design, start_schedule) = start;
    let mut best_design = start_design.clone();
    let mut best_schedule = Arc::new(start_schedule);
    let mut now_design = start_design;
    let mut now_schedule = Arc::clone(&best_schedule);

    while !(cfg.goal == Goal::MeetDeadline && best_schedule.is_schedulable())
        && stats.tabu_iterations < cfg.max_tabu_iterations
        && cutoff.is_none_or(|c| Instant::now() < c)
    {
        stats.tabu_iterations += 1;

        // Line 7: moves for the critical path of the current solution.
        let cp = now_schedule.move_candidates(problem.graph(), cfg.min_move_candidates);
        table.window(&now_design, &cp, &mut window);
        if window.is_empty() {
            break;
        }
        // Bound the neighbourhood: rotate a deterministic window over
        // the full move list so every move still gets its turn.
        let cap = cfg.max_moves_per_iteration.max(1);
        if window.len() > cap {
            let offset = (stats.tabu_iterations.wrapping_sub(1) * cap) % window.len();
            window.rotate_left(offset);
            window.truncate(cap);
        }

        // The incumbent bound: the current solution's exact cost. A
        // candidate that provably exceeds it aborts mid-placement.
        // Deterministic (no racy window incumbent), so the pruned set
        // is identical across thread counts and cache states.
        let bound = if cfg.bounded {
            Some(now_schedule.cost())
        } else {
            None
        };
        // The window's shared evaluation context: one O(n) base key
        // (per-candidate keys are then O(1)), the base solution's
        // checkpoints, the bound — the whole cache → splice → resume
        // → bounded stack behind one facade.
        let ceval = evaluator.candidate_eval(&now_design, cfg.incremental.then_some(&ckpts), bound);

        // Evaluate the window in parallel (cost-only); results stay
        // in move order. Each worker clones the base design once and
        // applies/undoes one decision per candidate — no per-candidate
        // design clone, no schedule materialization.
        let evaluated = pool
            .try_map_init(
                &window,
                || now_design.clone(),
                |design, _, mv| {
                    if cutoff.is_some_and(|c| Instant::now() >= c) {
                        return Ok(None);
                    }
                    Ok(Some(ceval.eval_move(
                        design,
                        mv.process,
                        table.decision(*mv),
                    )?))
                },
            )
            .map_err(|e: ftdes_sched::SchedError| OptError::from(e))?;
        candidates.clear();
        for (index, (mv, slot)) in window.iter().zip(evaluated).enumerate() {
            if let Some((outcome, hit)) = slot {
                if outcome.is_exact() {
                    stats.record_eval(hit);
                } else {
                    stats.pruned += 1;
                }
                candidates.push(Candidate {
                    index,
                    mv: *mv,
                    outcome,
                });
            }
        }

        let best_cost = best_schedule.cost();

        // Lines 14–20 with bounded-evaluation resolution: run the
        // selection, then exactly re-evaluate every pruned candidate
        // whose lower bound is at or below the would-be winner — its
        // true cost could still change the outcome. Repeat until the
        // winner is exact and nothing below it is unresolved. Each
        // pass resolves at least one candidate, the resolution set is
        // a deterministic function of the (deterministic) bounds, and
        // lower bounds never under-rank a candidate, so the final
        // selection equals the all-exact selection bit for bit.
        let selected = loop {
            let Some(sel) = select_candidate(&candidates, best_cost, &tabu, &wait, cfg, n) else {
                break None;
            };
            let (w_cost, w_index) = (candidates[sel].cost(), candidates[sel].index);
            // When the winner is exact, a resolution only has to push
            // each unresolved candidate past it — re-evaluate bounded
            // by the winner's cost (still a certified classification,
            // far cheaper than a full run). A pruned winner is
            // resolved exactly.
            let resolve_bound = candidates[sel].outcome.is_exact().then_some(w_cost);
            let mut resolved_any = false;
            for c in &mut candidates {
                if !c.outcome.is_exact() && (c.outcome.cost(), c.index) <= (w_cost, w_index) {
                    let (outcome, hit) = ceval.eval_move_bounded(
                        &mut now_design,
                        c.mv.process,
                        table.decision(c.mv),
                        resolve_bound,
                    )?;
                    if outcome.is_exact() {
                        stats.record_eval(hit);
                    } else {
                        stats.pruned += 1;
                    }
                    debug_assert!(outcome.is_exact() || outcome.cost() > w_cost);
                    c.outcome = outcome;
                    resolved_any = true;
                }
            }
            if !resolved_any {
                break Some(sel);
            }
        };
        let Some(selected) = selected else {
            break;
        };

        let chosen = candidates.swap_remove(selected);
        now_design.set_decision(chosen.mv.process, table.decision(chosen.mv).clone());
        // Materialize the winner's schedule (the next iteration needs
        // its critical path); one full run per iteration, counted —
        // and the incremental engine records its checkpoints on it.
        stats.evaluations += 1;
        now_schedule = if cfg.incremental {
            evaluator.schedule_recording(&now_design, &mut ckpts)?
        } else {
            evaluator.schedule(&now_design)?
        };
        debug_assert_eq!(now_schedule.cost(), chosen.cost());

        // Lines 23–25: best-so-far and history updates.
        if now_schedule.cost() < best_cost {
            best_design = now_design.clone();
            best_schedule = Arc::clone(&now_schedule);
        }
        for t in &mut tabu {
            *t = t.saturating_sub(1);
        }
        for w in &mut wait {
            *w += 1;
        }
        tabu[chosen.mv.process.index()] = tenure;
        wait[chosen.mv.process.index()] = 0;
    }

    let best_schedule = Arc::try_unwrap(best_schedule).unwrap_or_else(|shared| (*shared).clone());
    Ok((best_design, best_schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::initial_mpa;
    use ftdes_model::architecture::Architecture;
    use ftdes_model::fault::FaultModel;
    use ftdes_model::graph::{Message, ProcessGraph};
    use ftdes_model::ids::NodeId;
    use ftdes_model::time::Time;
    use ftdes_model::wcet::WcetTable;
    use ftdes_ttp::config::BusConfig;

    /// Paper Fig. 8's four-process application on two nodes (k = 1,
    /// µ = 10 ms).
    fn fig8_problem() -> Problem {
        let ms = Time::from_ms;
        let mut g = ProcessGraph::new(0.into());
        let p: Vec<_> = g.add_processes(4);
        g.add_edge(p[0], p[1], Message::new(4)).unwrap();
        g.add_edge(p[0], p[2], Message::new(4)).unwrap();
        g.add_edge(p[1], p[3], Message::new(4)).unwrap();
        let mut wcet = WcetTable::new();
        let c = [(40, 50), (60, 75), (60, 75), (40, 50)];
        for (i, &(c0, c1)) in c.iter().enumerate() {
            wcet.set(p[i], NodeId::new(0), ms(c0));
            wcet.set(p[i], NodeId::new(1), ms(c1));
        }
        let arch = Architecture::with_node_count(2);
        let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
        Problem::new(g, arch, wcet, FaultModel::new(1, ms(10)), bus)
    }

    #[test]
    fn tabu_never_returns_worse_than_start() {
        let problem = fig8_problem();
        let cfg = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 30,
            ..SearchConfig::default()
        };
        let mut stats = SearchStats::default();
        let start = initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let start_sched = problem.evaluate(&start).unwrap();
        let start_cost = start_sched.cost();
        let (_, best) = tabu_search_mpa(
            &problem,
            PolicySpace::Mixed,
            (start, start_sched),
            &cfg,
            None,
            &mut stats,
        )
        .unwrap();
        assert!(best.cost() <= start_cost);
        assert_eq!(stats.tabu_iterations, 30, "length goal runs to the limit");
    }

    #[test]
    fn tabu_escapes_greedy_local_optimum() {
        // The tabu search accepts worsening moves, so over enough
        // iterations it must match or beat the pure greedy result.
        let problem = fig8_problem();
        let cfg = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 50,
            ..SearchConfig::default()
        };
        let mut stats = SearchStats::default();
        let start = initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let (gd, gs) =
            crate::greedy::greedy_mpa(&problem, PolicySpace::Mixed, start, &cfg, None, &mut stats)
                .unwrap();
        let greedy_cost = gs.cost();
        let (_, ts) = tabu_search_mpa(
            &problem,
            PolicySpace::Mixed,
            (gd, gs),
            &cfg,
            None,
            &mut stats,
        )
        .unwrap();
        assert!(ts.cost() <= greedy_cost);
    }

    #[test]
    fn deadline_goal_stops_on_schedulable() {
        let problem = fig8_problem();
        let mut g = problem.graph().clone();
        for i in 0..4 {
            g.process_mut(ftdes_model::ids::ProcessId::new(i)).deadline =
                Some(Time::from_ms(1_000_000));
        }
        let problem = Problem::new(
            g,
            problem.arch().clone(),
            problem.wcet().clone(),
            *problem.fault_model(),
            problem.bus().clone(),
        );
        let cfg = SearchConfig::default();
        let mut stats = SearchStats::default();
        let start = initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let sched = problem.evaluate(&start).unwrap();
        let (_, best) = tabu_search_mpa(
            &problem,
            PolicySpace::Mixed,
            (start, sched),
            &cfg,
            None,
            &mut stats,
        )
        .unwrap();
        assert!(best.is_schedulable());
        assert_eq!(stats.tabu_iterations, 0, "already schedulable at entry");
    }
}

#[cfg(test)]
mod option_tests {
    use super::*;
    use crate::initial::initial_mpa;
    use ftdes_model::architecture::Architecture;
    use ftdes_model::fault::FaultModel;
    use ftdes_model::graph::{Message, ProcessGraph};
    use ftdes_model::ids::NodeId;
    use ftdes_model::time::Time;
    use ftdes_model::wcet::WcetTable;
    use ftdes_ttp::config::BusConfig;

    fn problem() -> Problem {
        let mut g = ProcessGraph::new(0.into());
        let ps: Vec<_> = g.add_processes(6);
        for w in ps.windows(2) {
            g.add_edge(w[0], w[1], Message::new(2)).unwrap();
        }
        let mut wcet = WcetTable::new();
        for (i, &p) in ps.iter().enumerate() {
            wcet.set(p, NodeId::new(0), Time::from_ms(10 + i as u64));
            wcet.set(p, NodeId::new(1), Time::from_ms(12 + i as u64));
        }
        let arch = Architecture::with_node_count(2);
        let bus = BusConfig::initial(&arch, 2, Time::from_ms(1)).unwrap();
        Problem::new(g, arch, wcet, FaultModel::new(1, Time::from_ms(5)), bus)
    }

    fn run(cfg: &SearchConfig) -> (ftdes_model::time::Time, SearchStats) {
        let problem = problem();
        let mut stats = SearchStats::default();
        let start = initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let sched = problem.evaluate(&start).unwrap();
        stats.evaluations += 1;
        let (_, best) = tabu_search_mpa(
            &problem,
            PolicySpace::Mixed,
            (start, sched),
            cfg,
            None,
            &mut stats,
        )
        .unwrap();
        (best.length(), stats)
    }

    #[test]
    fn toggles_change_behaviour_but_stay_sound() {
        let base = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 25,
            time_limit: None,
            ..SearchConfig::default()
        };
        let (full, _) = run(&base);
        let (no_asp, _) = run(&SearchConfig {
            aspiration: false,
            ..base.clone()
        });
        let (no_div, _) = run(&SearchConfig {
            diversification: false,
            ..base.clone()
        });
        // All converge to something; soundness = deterministic,
        // comparable lengths (the richer machinery never loses by
        // more than it explores).
        for v in [full, no_asp, no_div] {
            assert!(v > ftdes_model::time::Time::ZERO);
        }
    }

    #[test]
    fn neighbourhood_cap_rotates_deterministically() {
        let base = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 12,
            max_moves_per_iteration: 3,
            time_limit: None,
            ..SearchConfig::default()
        };
        let (a, sa) = run(&base);
        let (b, sb) = run(&base);
        assert_eq!(a, b, "capped search is deterministic");
        assert_eq!(sa.evaluations, sb.evaluations);
        // The cap truly bounds the work: at most cap cost evaluations
        // plus one winner materialization per iteration (plus the
        // initial evaluation).
        assert!(sa.evaluations <= 1 + 12 * (3 + 1));
    }

    #[test]
    fn iteration_limit_respected() {
        let cfg = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 5,
            time_limit: None,
            ..SearchConfig::default()
        };
        let (_, stats) = run(&cfg);
        assert_eq!(stats.tabu_iterations, 5);
    }
}
