//! `TabuSearchMPA` (paper §5.2, Fig. 9).
//!
//! A neighbourhood search over mapping / policy moves for the
//! processes on the critical path, steered by a *selective history*:
//!
//! * `Tabu(Pi)` — non-zero means `Pi` was moved recently and should
//!   not be selected again, *unless* the move beats the best-so-far
//!   solution (aspiration, line 9);
//! * `Wait(Pi)` — iterations since `Pi` was last moved; once it
//!   exceeds `|Γ|` the process becomes a diversification candidate
//!   (line 12).
//!
//! Selection (lines 14–20): prefer a solution better than the
//! best-so-far; otherwise diversify; otherwise take the best non-tabu
//! move even if it worsens the cost (that is what lets the search
//! leave local optima).

use std::sync::Arc;
use std::time::Instant;

use ftdes_model::design::Design;
use ftdes_sched::{PlacementCheckpoints, Schedule};

use crate::cache::{EvalOutcome, Evaluator};
use crate::config::{Goal, SearchConfig, SearchStats};
use crate::error::OptError;
use crate::moves::{MoveRef, MoveTable};
use crate::parallel::{effective_threads, WorkerPool};
use crate::problem::Problem;
use crate::space::PolicySpace;

/// An evaluated neighbour.
struct Candidate {
    /// Position of the move in this iteration's window — the
    /// deterministic tiebreaker of candidate selection.
    index: usize,
    mv: MoveRef,
    /// Exact cost, or the certified lower bound of a bounded-pruned
    /// run (resolved to exact before it can influence the selection).
    outcome: EvalOutcome,
}

impl Candidate {
    fn cost(&self) -> ftdes_sched::ScheduleCost {
        self.outcome.cost()
    }
}

/// Lines 9–20 of paper Fig. 9: aspiration / diversification /
/// best-admissible selection over the window, resolved by the total
/// order on `(cost, move index)`. Pruned candidates participate with
/// their lower bounds; [`tabu_search_mpa_with`] re-evaluates exactly
/// any pruned candidate that could still influence the outcome before
/// accepting a selection, so the result is identical to an all-exact
/// window.
fn select_candidate(
    candidates: &[Candidate],
    best_cost: ftdes_sched::ScheduleCost,
    tabu: &[usize],
    wait: &[usize],
    cfg: &SearchConfig,
    n: usize,
) -> Option<usize> {
    let is_tabu = |c: &Candidate| tabu[c.mv.process.index()] > 0;
    let aspirates = |c: &Candidate| cfg.aspiration && c.cost() < best_cost;
    let is_waiting = |c: &Candidate| cfg.diversification && wait[c.mv.process.index()] > n;
    let admissible = |c: &Candidate| !is_tabu(c) || aspirates(c) || is_waiting(c);
    let best_of = |pred: &dyn Fn(&Candidate) -> bool| -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| pred(c))
            .min_by_key(|(_, c)| (c.cost(), c.index))
            .map(|(i, _)| i)
    };

    let x_now = best_of(&admissible);
    let selected = match x_now {
        Some(i) if candidates[i].cost() < best_cost => Some(i),
        _ => best_of(&|c: &Candidate| is_waiting(c))
            .or_else(|| best_of(&|c: &Candidate| !is_tabu(c)))
            .or(x_now),
    };
    // Every candidate may be tabu without aspiring: then simply take
    // the overall best to keep the search moving.
    selected.or_else(|| best_of(&|_| true))
}

/// Why [`TabuSearch::run`] returned control to its caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TabuPause {
    /// The per-call iteration budget was consumed; the search can
    /// continue from exactly where it stopped (this is the portfolio
    /// engine's epoch barrier).
    Budget,
    /// The search is done: the goal was reached, the neighbourhood is
    /// empty, the iteration cap was hit, or the wall-clock cutoff
    /// passed. Further calls return immediately unless
    /// [`TabuSearch::inject`] opens a new neighbourhood.
    Finished,
}

/// A resumable tabu search (paper Fig. 9) over one policy space.
///
/// [`tabu_search_mpa`] runs it to completion in one call; the
/// portfolio engine ([`crate::portfolio`]) instead interleaves
/// bounded [`TabuSearch::run`] chunks with deterministic elite
/// exchanges ([`TabuSearch::inject`]) at epoch barriers. All search
/// state — tabu tenures, waiting times, the rotating neighbourhood
/// window offset, the incremental placement checkpoints — survives
/// across calls, so a sequence of budgeted `run` calls walks the
/// *identical* trajectory as one unbudgeted call.
pub struct TabuSearch<'e, 'p> {
    evaluator: &'e Evaluator<'p>,
    pool: &'e WorkerPool,
    cfg: SearchConfig,
    table: MoveTable,
    tabu: Vec<usize>,
    wait: Vec<usize>,
    window: Vec<MoveRef>,
    candidates: Vec<Candidate>,
    // Prefix checkpoints of the current solution's placement: empty
    // for the first window (the start schedule was materialized
    // elsewhere), then refreshed for free by every winner
    // materialization.
    ckpts: PlacementCheckpoints,
    now_design: Design,
    now_schedule: Arc<Schedule>,
    best_design: Design,
    best_schedule: Arc<Schedule>,
    tenure: usize,
    n: usize,
}

impl std::fmt::Debug for TabuSearch<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabuSearch")
            .field("best_cost", &self.best_schedule.cost())
            .finish_non_exhaustive()
    }
}

impl<'e, 'p> TabuSearch<'e, 'p> {
    /// Prepares a search from `start` over `space`, sharing the
    /// caller's evaluator (memoization) and worker pool (window
    /// parallelism). `cfg` is captured by clone; its limits apply to
    /// the externally supplied `stats` counter, so several stages may
    /// share one budget (see [`tabu_search_mpa_with`]).
    #[must_use]
    pub fn new(
        evaluator: &'e Evaluator<'p>,
        pool: &'e WorkerPool,
        space: PolicySpace,
        start: (Design, Arc<Schedule>),
        cfg: &SearchConfig,
    ) -> Self {
        let problem = evaluator.problem();
        let n = problem.process_count();
        let (start_design, start_schedule) = start;
        TabuSearch {
            evaluator,
            pool,
            cfg: cfg.clone(),
            table: MoveTable::new(problem, space),
            tabu: vec![0usize; n],
            wait: vec![0usize; n],
            window: Vec::new(),
            candidates: Vec::new(),
            ckpts: PlacementCheckpoints::new(),
            best_design: start_design.clone(),
            best_schedule: Arc::clone(&start_schedule),
            now_design: start_design,
            now_schedule: start_schedule,
            tenure: cfg.tenure_for(n),
            n,
        }
    }

    /// The cost of the best solution found so far.
    #[must_use]
    pub fn best_cost(&self) -> ftdes_sched::ScheduleCost {
        self.best_schedule.cost()
    }

    /// Whether the best solution meets every deadline.
    #[must_use]
    pub fn best_is_schedulable(&self) -> bool {
        self.best_schedule.is_schedulable()
    }

    /// A clone of the best solution (design + shared schedule).
    #[must_use]
    pub fn best(&self) -> (Design, Arc<Schedule>) {
        (self.best_design.clone(), Arc::clone(&self.best_schedule))
    }

    /// Consumes the search, returning the best solution found.
    #[must_use]
    pub fn into_best(self) -> (Design, Schedule) {
        let TabuSearch {
            best_design,
            best_schedule,
            now_schedule,
            ..
        } = self;
        drop(now_schedule);
        let schedule = Arc::try_unwrap(best_schedule).unwrap_or_else(|shared| (*shared).clone());
        (best_design, schedule)
    }

    /// Adopts `design` as the current solution (the portfolio's elite
    /// exchange): materializes its schedule (recording placement
    /// checkpoints when the incremental engine is on, so subsequent
    /// windows resume from it), replaces the working solution, and
    /// updates the best-so-far when the elite is strictly better.
    /// Tabu tenures and waiting times are deliberately kept — they
    /// describe the worker's own move history, which is what keeps a
    /// diversified worker diversified after adopting a shared elite.
    ///
    /// # Errors
    ///
    /// Propagates [`OptError::Sched`] when the design cannot be
    /// scheduled.
    pub fn inject(&mut self, design: Design, stats: &mut SearchStats) -> Result<(), OptError> {
        let schedule = if self.cfg.incremental {
            self.evaluator
                .schedule_recording(&design, &mut self.ckpts)?
        } else {
            self.evaluator.schedule(&design)?
        };
        stats.evaluations += 1;
        if schedule.cost() < self.best_schedule.cost() {
            self.best_design = design.clone();
            self.best_schedule = Arc::clone(&schedule);
        }
        self.now_design = design;
        self.now_schedule = schedule;
        Ok(())
    }

    /// Runs until the goal is reached, the limits are exhausted, or
    /// `budget` further iterations were performed (`None` =
    /// unlimited). The trajectory of a budgeted call sequence is
    /// bit-identical to one unbudgeted call — only *where control
    /// returns* differs, never *what is searched*.
    ///
    /// # Errors
    ///
    /// Propagates [`OptError::Sched`] when a candidate cannot be
    /// evaluated.
    pub fn run(
        &mut self,
        stats: &mut SearchStats,
        cutoff: Option<Instant>,
        budget: Option<usize>,
    ) -> Result<TabuPause, OptError> {
        let mut left = budget;
        loop {
            if (self.cfg.goal == Goal::MeetDeadline && self.best_schedule.is_schedulable())
                || stats.tabu_iterations >= self.cfg.max_tabu_iterations
                || cutoff.is_some_and(|c| Instant::now() >= c)
            {
                return Ok(TabuPause::Finished);
            }
            if let Some(l) = &mut left {
                if *l == 0 {
                    return Ok(TabuPause::Budget);
                }
                *l -= 1;
            }
            if !self.step(stats, cutoff)? {
                return Ok(TabuPause::Finished);
            }
        }
    }

    /// One tabu iteration (window → selection → acceptance). Returns
    /// `false` when the search cannot advance (empty neighbourhood or
    /// no selectable candidate).
    fn step(&mut self, stats: &mut SearchStats, cutoff: Option<Instant>) -> Result<bool, OptError> {
        let (cfg, problem) = (&self.cfg, self.evaluator.problem());
        stats.tabu_iterations += 1;

        // Line 7: moves for the critical path of the current solution.
        let cp = self
            .now_schedule
            .move_candidates(problem.graph(), cfg.min_move_candidates);
        self.table.window(&self.now_design, &cp, &mut self.window);
        if self.window.is_empty() {
            return Ok(false);
        }
        // Bound the neighbourhood: rotate a deterministic window over
        // the full move list so every move still gets its turn. With
        // `adaptive_window` the cap rounds up to a multiple of the
        // pool width so no evaluation worker idles on the last chunk
        // (a search-space knob across thread counts — see the
        // `SearchConfig` docs).
        let mut cap = cfg.max_moves_per_iteration.max(1);
        if cfg.adaptive_window {
            let width = self.pool.threads().max(1);
            cap = cap.div_ceil(width) * width;
        }
        if self.window.len() > cap {
            let offset = (stats.tabu_iterations.wrapping_sub(1) * cap) % self.window.len();
            self.window.rotate_left(offset);
            self.window.truncate(cap);
        }

        // The incumbent bound: the current solution's exact cost. A
        // candidate that provably exceeds it aborts mid-placement.
        // Deterministic (no racy window incumbent), so the pruned set
        // is identical across thread counts and cache states.
        let bound = if cfg.bounded {
            Some(self.now_schedule.cost())
        } else {
            None
        };
        // The window's shared evaluation context: one O(n) base key
        // (per-candidate keys are then O(1)), the base solution's
        // checkpoints, the bound — the whole cache → splice → resume
        // → bounded stack behind one facade.
        let ceval = self.evaluator.candidate_eval(
            &self.now_design,
            cfg.incremental.then_some(&self.ckpts),
            bound,
        );

        // Evaluate the window in parallel (cost-only); results stay
        // in move order. Each worker clones the base design once and
        // applies/undoes one decision per candidate — no per-candidate
        // design clone, no schedule materialization.
        let (window, table, now_design) = (&self.window, &self.table, &self.now_design);
        let evaluated = self
            .pool
            .try_map_init(
                window,
                || now_design.clone(),
                |design, _, mv| {
                    if cutoff.is_some_and(|c| Instant::now() >= c) {
                        return Ok(None);
                    }
                    Ok(Some(ceval.eval_move(
                        design,
                        mv.process,
                        table.decision(*mv),
                    )?))
                },
            )
            .map_err(|e: ftdes_sched::SchedError| OptError::from(e))?;
        self.candidates.clear();
        for (index, (mv, slot)) in self.window.iter().zip(evaluated).enumerate() {
            if let Some((outcome, hit)) = slot {
                if outcome.is_exact() {
                    stats.record_eval(hit);
                } else {
                    stats.pruned += 1;
                }
                self.candidates.push(Candidate {
                    index,
                    mv: *mv,
                    outcome,
                });
            }
        }

        let best_cost = self.best_schedule.cost();

        // Lines 14–20 with bounded-evaluation resolution: run the
        // selection, then exactly re-evaluate every pruned candidate
        // whose lower bound is at or below the would-be winner — its
        // true cost could still change the outcome. Repeat until the
        // winner is exact and nothing below it is unresolved. Each
        // pass resolves at least one candidate, the resolution set is
        // a deterministic function of the (deterministic) bounds, and
        // lower bounds never under-rank a candidate, so the final
        // selection equals the all-exact selection bit for bit.
        let selected = loop {
            let Some(sel) = select_candidate(
                &self.candidates,
                best_cost,
                &self.tabu,
                &self.wait,
                cfg,
                self.n,
            ) else {
                break None;
            };
            let (w_cost, w_index) = (self.candidates[sel].cost(), self.candidates[sel].index);
            // When the winner is exact, a resolution only has to push
            // each unresolved candidate past it — re-evaluate bounded
            // by the winner's cost (still a certified classification,
            // far cheaper than a full run). A pruned winner is
            // resolved exactly.
            let resolve_bound = self.candidates[sel].outcome.is_exact().then_some(w_cost);
            let mut resolved_any = false;
            for c in &mut self.candidates {
                if !c.outcome.is_exact() && (c.outcome.cost(), c.index) <= (w_cost, w_index) {
                    let (outcome, hit) = ceval.eval_move_bounded(
                        &mut self.now_design,
                        c.mv.process,
                        self.table.decision(c.mv),
                        resolve_bound,
                    )?;
                    if outcome.is_exact() {
                        stats.record_eval(hit);
                    } else {
                        stats.pruned += 1;
                    }
                    debug_assert!(outcome.is_exact() || outcome.cost() > w_cost);
                    c.outcome = outcome;
                    resolved_any = true;
                }
            }
            if !resolved_any {
                break Some(sel);
            }
        };
        let Some(selected) = selected else {
            return Ok(false);
        };

        let chosen = self.candidates.swap_remove(selected);
        self.now_design
            .set_decision(chosen.mv.process, self.table.decision(chosen.mv).clone());
        // Materialize the winner's schedule (the next iteration needs
        // its critical path); one full run per iteration, counted —
        // and the incremental engine records its checkpoints on it.
        stats.evaluations += 1;
        self.now_schedule = if cfg.incremental {
            self.evaluator
                .schedule_recording(&self.now_design, &mut self.ckpts)?
        } else {
            self.evaluator.schedule(&self.now_design)?
        };
        debug_assert_eq!(self.now_schedule.cost(), chosen.cost());

        // Lines 23–25: best-so-far and history updates.
        if self.now_schedule.cost() < best_cost {
            self.best_design = self.now_design.clone();
            self.best_schedule = Arc::clone(&self.now_schedule);
        }
        for t in &mut self.tabu {
            *t = t.saturating_sub(1);
        }
        for w in &mut self.wait {
            *w += 1;
        }
        self.tabu[chosen.mv.process.index()] = self.tenure;
        self.wait[chosen.mv.process.index()] = 0;
        Ok(true)
    }
}

/// Runs the tabu search from `start` until the goal is reached or
/// the limits are exhausted, returning the best design found.
///
/// Candidate evaluation is parallel (see [`SearchConfig::threads`])
/// and memoized (see [`SearchConfig::eval_cache`]); both are pure
/// throughput knobs — the search trajectory is bit-identical across
/// thread counts because selection resolves ties by
/// `(cost, move index)`.
///
/// # Errors
///
/// Propagates [`OptError::Sched`] when a candidate cannot be
/// evaluated.
pub fn tabu_search_mpa(
    problem: &Problem,
    space: PolicySpace,
    start: (Design, Schedule),
    cfg: &SearchConfig,
    cutoff: Option<Instant>,
    stats: &mut SearchStats,
) -> Result<(Design, Schedule), OptError> {
    let evaluator = Evaluator::with_cache(problem, cfg.eval_cache);
    let pool = WorkerPool::new(effective_threads(cfg.threads));
    tabu_search_mpa_with(&evaluator, &pool, space, start, cfg, cutoff, stats)
}

/// [`tabu_search_mpa`] sharing a caller-owned [`Evaluator`] and
/// [`WorkerPool`], so the memoization cache and the worker threads
/// span the greedy phase, both staged tabu passes and any further
/// evaluation the caller performs.
///
/// # Errors
///
/// Same as [`tabu_search_mpa`].
pub fn tabu_search_mpa_with(
    evaluator: &Evaluator<'_>,
    pool: &WorkerPool,
    space: PolicySpace,
    start: (Design, Schedule),
    cfg: &SearchConfig,
    cutoff: Option<Instant>,
    stats: &mut SearchStats,
) -> Result<(Design, Schedule), OptError> {
    let (start_design, start_schedule) = start;
    let mut search = TabuSearch::new(
        evaluator,
        pool,
        space,
        (start_design, Arc::new(start_schedule)),
        cfg,
    );
    search.run(stats, cutoff, None)?;
    Ok(search.into_best())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::initial_mpa;
    use ftdes_model::architecture::Architecture;
    use ftdes_model::fault::FaultModel;
    use ftdes_model::graph::{Message, ProcessGraph};
    use ftdes_model::ids::NodeId;
    use ftdes_model::time::Time;
    use ftdes_model::wcet::WcetTable;
    use ftdes_ttp::config::BusConfig;

    /// Paper Fig. 8's four-process application on two nodes (k = 1,
    /// µ = 10 ms).
    fn fig8_problem() -> Problem {
        let ms = Time::from_ms;
        let mut g = ProcessGraph::new(0.into());
        let p: Vec<_> = g.add_processes(4);
        g.add_edge(p[0], p[1], Message::new(4)).unwrap();
        g.add_edge(p[0], p[2], Message::new(4)).unwrap();
        g.add_edge(p[1], p[3], Message::new(4)).unwrap();
        let mut wcet = WcetTable::new();
        let c = [(40, 50), (60, 75), (60, 75), (40, 50)];
        for (i, &(c0, c1)) in c.iter().enumerate() {
            wcet.set(p[i], NodeId::new(0), ms(c0));
            wcet.set(p[i], NodeId::new(1), ms(c1));
        }
        let arch = Architecture::with_node_count(2);
        let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
        Problem::new(g, arch, wcet, FaultModel::new(1, ms(10)), bus)
    }

    #[test]
    fn tabu_never_returns_worse_than_start() {
        let problem = fig8_problem();
        let cfg = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 30,
            ..SearchConfig::default()
        };
        let mut stats = SearchStats::default();
        let start = initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let start_sched = problem.evaluate(&start).unwrap();
        let start_cost = start_sched.cost();
        let (_, best) = tabu_search_mpa(
            &problem,
            PolicySpace::Mixed,
            (start, start_sched),
            &cfg,
            None,
            &mut stats,
        )
        .unwrap();
        assert!(best.cost() <= start_cost);
        assert_eq!(stats.tabu_iterations, 30, "length goal runs to the limit");
    }

    #[test]
    fn tabu_escapes_greedy_local_optimum() {
        // The tabu search accepts worsening moves, so over enough
        // iterations it must match or beat the pure greedy result.
        let problem = fig8_problem();
        let cfg = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 50,
            ..SearchConfig::default()
        };
        let mut stats = SearchStats::default();
        let start = initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let (gd, gs) =
            crate::greedy::greedy_mpa(&problem, PolicySpace::Mixed, start, &cfg, None, &mut stats)
                .unwrap();
        let greedy_cost = gs.cost();
        let (_, ts) = tabu_search_mpa(
            &problem,
            PolicySpace::Mixed,
            (gd, gs),
            &cfg,
            None,
            &mut stats,
        )
        .unwrap();
        assert!(ts.cost() <= greedy_cost);
    }

    #[test]
    fn deadline_goal_stops_on_schedulable() {
        let problem = fig8_problem();
        let mut g = problem.graph().clone();
        for i in 0..4 {
            g.process_mut(ftdes_model::ids::ProcessId::new(i)).deadline =
                Some(Time::from_ms(1_000_000));
        }
        let problem = Problem::new(
            g,
            problem.arch().clone(),
            problem.wcet().clone(),
            *problem.fault_model(),
            problem.bus().clone(),
        );
        let cfg = SearchConfig::default();
        let mut stats = SearchStats::default();
        let start = initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let sched = problem.evaluate(&start).unwrap();
        let (_, best) = tabu_search_mpa(
            &problem,
            PolicySpace::Mixed,
            (start, sched),
            &cfg,
            None,
            &mut stats,
        )
        .unwrap();
        assert!(best.is_schedulable());
        assert_eq!(stats.tabu_iterations, 0, "already schedulable at entry");
    }
}

#[cfg(test)]
mod option_tests {
    use super::*;
    use crate::initial::initial_mpa;
    use ftdes_model::architecture::Architecture;
    use ftdes_model::fault::FaultModel;
    use ftdes_model::graph::{Message, ProcessGraph};
    use ftdes_model::ids::NodeId;
    use ftdes_model::time::Time;
    use ftdes_model::wcet::WcetTable;
    use ftdes_ttp::config::BusConfig;

    fn problem() -> Problem {
        let mut g = ProcessGraph::new(0.into());
        let ps: Vec<_> = g.add_processes(6);
        for w in ps.windows(2) {
            g.add_edge(w[0], w[1], Message::new(2)).unwrap();
        }
        let mut wcet = WcetTable::new();
        for (i, &p) in ps.iter().enumerate() {
            wcet.set(p, NodeId::new(0), Time::from_ms(10 + i as u64));
            wcet.set(p, NodeId::new(1), Time::from_ms(12 + i as u64));
        }
        let arch = Architecture::with_node_count(2);
        let bus = BusConfig::initial(&arch, 2, Time::from_ms(1)).unwrap();
        Problem::new(g, arch, wcet, FaultModel::new(1, Time::from_ms(5)), bus)
    }

    fn run(cfg: &SearchConfig) -> (ftdes_model::time::Time, SearchStats) {
        let problem = problem();
        let mut stats = SearchStats::default();
        let start = initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let sched = problem.evaluate(&start).unwrap();
        stats.evaluations += 1;
        let (_, best) = tabu_search_mpa(
            &problem,
            PolicySpace::Mixed,
            (start, sched),
            cfg,
            None,
            &mut stats,
        )
        .unwrap();
        (best.length(), stats)
    }

    #[test]
    fn toggles_change_behaviour_but_stay_sound() {
        let base = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 25,
            time_limit: None,
            ..SearchConfig::default()
        };
        let (full, _) = run(&base);
        let (no_asp, _) = run(&SearchConfig {
            aspiration: false,
            ..base.clone()
        });
        let (no_div, _) = run(&SearchConfig {
            diversification: false,
            ..base.clone()
        });
        // All converge to something; soundness = deterministic,
        // comparable lengths (the richer machinery never loses by
        // more than it explores).
        for v in [full, no_asp, no_div] {
            assert!(v > ftdes_model::time::Time::ZERO);
        }
    }

    #[test]
    fn neighbourhood_cap_rotates_deterministically() {
        let base = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 12,
            max_moves_per_iteration: 3,
            time_limit: None,
            ..SearchConfig::default()
        };
        let (a, sa) = run(&base);
        let (b, sb) = run(&base);
        assert_eq!(a, b, "capped search is deterministic");
        assert_eq!(sa.evaluations, sb.evaluations);
        // The cap truly bounds the work: at most cap cost evaluations
        // plus one winner materialization per iteration (plus the
        // initial evaluation).
        assert!(sa.evaluations <= 1 + 12 * (3 + 1));
    }

    #[test]
    fn iteration_limit_respected() {
        let cfg = SearchConfig {
            goal: Goal::MinimizeLength,
            max_tabu_iterations: 5,
            time_limit: None,
            ..SearchConfig::default()
        };
        let (_, stats) = run(&cfg);
        assert_eq!(stats.tabu_iterations, 5);
    }
}
