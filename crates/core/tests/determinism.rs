//! Parallel evaluation must not change the search: for a fixed
//! `ftdes-gen` seed, a single-threaded run (`threads = 1`, the
//! `FTDES_NO_PARALLEL` / `RAYON_NUM_THREADS=1` behaviour) and a
//! multi-threaded run must walk the identical trajectory — same best
//! cost, same iteration counts, same evaluation counts, same design.

use ftdes_core::{optimize, Goal, Outcome, Problem, SearchConfig, Strategy};
use ftdes_gen::paper_workload;
use ftdes_model::architecture::Architecture;
use ftdes_model::fault::FaultModel;
use ftdes_model::time::Time;
use ftdes_ttp::config::BusConfig;

fn fixed_problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let w = paper_workload(processes, &arch, seed);
    let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)),
        bus,
    )
}

fn run(problem: &Problem, threads: usize, eval_cache: bool) -> Outcome {
    let cfg = SearchConfig {
        goal: Goal::MinimizeLength,
        // No wall-clock limit: cutoff-truncated windows are the one
        // legitimate source of nondeterminism.
        time_limit: None,
        max_tabu_iterations: 40,
        threads,
        eval_cache,
        ..SearchConfig::default()
    };
    optimize(problem, Strategy::Mxr, &cfg).unwrap()
}

#[test]
fn parallel_search_is_bit_identical_to_single_threaded() {
    for seed in [3u64, 7, 11] {
        let problem = fixed_problem(14, 3, 2, seed);
        let single = run(&problem, 1, true);
        let parallel = run(&problem, 4, true);

        assert_eq!(
            single.schedule.cost(),
            parallel.schedule.cost(),
            "seed {seed}: best cost must not depend on the thread count"
        );
        assert_eq!(
            single.design, parallel.design,
            "seed {seed}: the selected design must be identical"
        );
        assert_eq!(
            single.stats.tabu_iterations, parallel.stats.tabu_iterations,
            "seed {seed}: iteration counts must match"
        );
        assert_eq!(
            single.stats.greedy_steps, parallel.stats.greedy_steps,
            "seed {seed}: greedy trajectories must match"
        );
        assert_eq!(
            single.stats.evaluations, parallel.stats.evaluations,
            "seed {seed}: scheduling work must match"
        );
        assert_eq!(
            single.stats.cache_hits, parallel.stats.cache_hits,
            "seed {seed}: cache behaviour must match"
        );
    }
}

#[test]
fn cache_changes_work_not_results() {
    let problem = fixed_problem(12, 2, 2, 5);
    let cached = run(&problem, 2, true);
    let uncached = run(&problem, 2, false);

    assert_eq!(
        cached.schedule.cost(),
        uncached.schedule.cost(),
        "memoization must be invisible in the result"
    );
    assert_eq!(cached.design, uncached.design);
    assert_eq!(cached.stats.tabu_iterations, uncached.stats.tabu_iterations);
    assert_eq!(uncached.stats.cache_hits, 0, "cache disabled");
    assert!(
        cached.stats.evaluations < uncached.stats.evaluations,
        "the cache must absorb revisited designs ({} vs {})",
        cached.stats.evaluations,
        uncached.stats.evaluations
    );
    // Same trajectory → same window contents. The cached run may add
    // one materialization per cache-hitting winner, but every window
    // lookup the uncached run performed must be accounted for.
    assert!(
        cached.stats.lookups() >= uncached.stats.lookups(),
        "cached run lost candidate lookups ({} vs {})",
        cached.stats.lookups(),
        uncached.stats.lookups()
    );
}
