//! Incremental-vs-full parity: the resumed-from-checkpoint and
//! bounded evaluation engines must be **observationally identical** to
//! the from-scratch cost function.
//!
//! * `resumed_equals_full`: for random problems, random walks of
//!   applied moves and every candidate move at every step, a resumed
//!   evaluation returns exactly the full `schedule_cost` result.
//! * `bounded_classifies_exactly`: a bounded run completes exactly
//!   iff the exact cost is within the bound, and an aborted run's
//!   certified lower bound never exceeds the exact cost — so bounded
//!   evaluation can never misorder candidate selection.
//! * `search_results_invariant_under_engines`: whole searches produce
//!   bit-identical designs/costs/trajectories with the engines on or
//!   off.

use ftdes_core::moves::MoveTable;
use ftdes_core::{initial, optimize, Goal, PolicySpace, Problem, SearchConfig, Strategy};
use ftdes_gen::paper_workload;
use ftdes_model::architecture::Architecture;
use ftdes_model::fault::FaultModel;
use ftdes_model::time::Time;
use ftdes_sched::{CostOutcome, CostScratch, PlacementCheckpoints, ScheduleCost, ScheduleOptions};
use ftdes_ttp::config::BusConfig;

fn problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let w = paper_workload(processes, &arch, seed);
    let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)),
        bus,
    )
}

/// A tiny deterministic PRNG (splitmix64) for move-sequence choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A paper-family problem with a checkpointing overhead χ and the
/// checkpoint move axis open (`max_checkpoints = 3`): the walks below
/// then contain checkpoint-count moves — candidates whose expansion
/// keeps every node but changes the primary's recovery profile, which
/// the restored snapshots' slack accounts must reproduce exactly.
fn checkpointed_problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let w = paper_workload(processes, &arch, seed);
    let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)).with_checkpoint_overhead(Time::from_ms(2)),
        bus,
    )
    .with_max_checkpoints(3)
}

#[test]
fn resumed_equals_full_for_random_move_sequences() {
    let problems = [
        problem(12, 3, 2, 1),
        problem(12, 3, 2, 5),
        problem(12, 3, 2, 9),
        checkpointed_problem(12, 3, 2, 1),
        checkpointed_problem(12, 3, 2, 9),
    ];
    for (case, problem) in problems.into_iter().enumerate() {
        let seed = case as u64 + 1;
        let table = MoveTable::new(&problem, PolicySpace::Mixed);
        let mut design = initial::initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let mut rng = Rng(seed);
        let mut scratch = CostScratch::default();
        let mut core = ftdes_sched::SchedScratch::default();
        let mut ckpts = PlacementCheckpoints::new();
        let mut window = Vec::new();

        // A random walk of applied moves; at every step, every
        // candidate move of the current window is checked for parity.
        for step in 0..6 {
            let schedule = problem
                .evaluate_recording(&design, &mut core, Some(&mut ckpts))
                .unwrap();
            let cp = schedule.move_candidates(problem.graph(), 8);
            table.window(&design, &cp, &mut window);
            if window.is_empty() {
                break;
            }
            for mv in &window {
                let mut cand = design.clone();
                cand.set_decision(mv.process, table.decision(*mv).clone());
                let full = problem.evaluate_cost(&cand, &mut scratch).unwrap();
                let resumed = ftdes_sched::schedule_cost_resumed(
                    problem.graph(),
                    problem.arch(),
                    problem.dense_wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &cand,
                    mv.process,
                    ScheduleOptions::default(),
                    &mut scratch,
                    &ckpts,
                    None,
                )
                .unwrap();
                assert_eq!(
                    resumed,
                    CostOutcome::Exact(full),
                    "case {case} step {step}: resumed evaluation diverged for {mv:?}"
                );
                // The resumed evaluation must also agree with the
                // materializing scheduler.
                assert_eq!(problem.evaluate(&cand).unwrap().cost(), full);
            }
            let mv = window[rng.below(window.len())];
            design.set_decision(mv.process, table.decision(mv).clone());
        }
    }
}

#[test]
fn bounded_runs_classify_exactly_and_never_misorder() {
    // Both the plain paper family and a checkpointed instance: the
    // bounded engine's lookahead sums fault-free execution times
    // (WCET + checkpoint saves) and its abort certificates price
    // rollback recovery through the slack account.
    for problem in [problem(14, 3, 2, 3), checkpointed_problem(14, 3, 2, 13)] {
        bounded_classification_case(problem);
    }
}

fn bounded_classification_case(problem: Problem) {
    let table = MoveTable::new(&problem, PolicySpace::Mixed);
    let design = initial::initial_mpa(&problem, PolicySpace::Mixed).unwrap();
    let mut core = ftdes_sched::SchedScratch::default();
    let mut ckpts = PlacementCheckpoints::new();
    let schedule = problem
        .evaluate_recording(&design, &mut core, Some(&mut ckpts))
        .unwrap();
    let base_cost = schedule.cost();
    let cp = schedule.move_candidates(problem.graph(), 8);
    let mut window = Vec::new();
    table.window(&design, &cp, &mut window);
    assert!(!window.is_empty());

    let mut scratch = CostScratch::default();
    let mut exact_costs: Vec<ScheduleCost> = Vec::new();
    // Several bounds, from very tight to the base cost itself.
    let bounds = [
        ScheduleCost {
            violation: Time::ZERO,
            length: base_cost.length / 2,
        },
        ScheduleCost {
            violation: Time::ZERO,
            length: base_cost.length.saturating_sub(Time::from_ms(1)),
        },
        base_cost,
    ];
    for mv in &window {
        let mut cand = design.clone();
        cand.set_decision(mv.process, table.decision(*mv).clone());
        let exact = problem.evaluate_cost(&cand, &mut scratch).unwrap();
        exact_costs.push(exact);
        for &bound in &bounds {
            for resumed in [false, true] {
                let outcome = if resumed {
                    ftdes_sched::schedule_cost_resumed(
                        problem.graph(),
                        problem.arch(),
                        problem.dense_wcet(),
                        problem.fault_model(),
                        problem.bus(),
                        &cand,
                        mv.process,
                        ScheduleOptions::default(),
                        &mut scratch,
                        &ckpts,
                        Some(bound),
                    )
                    .unwrap()
                } else {
                    problem
                        .evaluate_cost_bounded(&cand, &mut scratch, Some(bound))
                        .unwrap()
                };
                match outcome {
                    CostOutcome::Exact(cost) => {
                        assert_eq!(cost, exact, "exact outcome must be the exact cost");
                        assert!(
                            exact <= bound,
                            "a within-bound candidate must complete exactly"
                        );
                    }
                    CostOutcome::LowerBound(lb) => {
                        assert!(
                            exact > bound,
                            "aborted candidate must truly exceed the bound"
                        );
                        assert!(lb > bound, "the abort certificate must exceed the bound");
                        assert!(lb <= exact, "a lower bound may never exceed the exact cost");
                    }
                }
            }
        }
    }
    // No misordering: selecting the minimum by (cost, index) over
    // bounded outcomes (lower bounds standing in for pruned
    // candidates) identifies the same winner as exact evaluation
    // whenever the winner is within the bound.
    for &bound in &bounds {
        let exact_min = exact_costs
            .iter()
            .enumerate()
            .min_by_key(|&(i, c)| (*c, i))
            .map(|(i, c)| (i, *c))
            .unwrap();
        if exact_min.1 <= bound {
            let bounded_min = window
                .iter()
                .enumerate()
                .map(|(i, mv)| {
                    let mut cand = design.clone();
                    cand.set_decision(mv.process, table.decision(*mv).clone());
                    let out = problem
                        .evaluate_cost_bounded(&cand, &mut scratch, Some(bound))
                        .unwrap();
                    (out.cost(), i)
                })
                .min()
                .unwrap();
            assert_eq!(
                (exact_min.1, exact_min.0),
                bounded_min,
                "bounded evaluation misordered the winner under bound {bound:?}"
            );
        }
    }
}

/// A communication-heavy problem (dense graph, expensive messages) —
/// the workload family where the bus-wait bound and the occupancy
/// index actually bite.
fn comm_problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let params = ftdes_gen::CommHeavyParams::dense(processes);
    let w = ftdes_gen::comm_heavy(&params, &arch, seed);
    let largest = w
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1)
        .max(1);
    let bus = BusConfig::initial(&arch, largest, params.byte_time()).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)),
        bus,
    )
}

#[test]
fn search_results_invariant_under_engines() {
    for problem in [
        problem(14, 3, 2, 2),
        problem(14, 3, 2, 8),
        checkpointed_problem(14, 3, 2, 8),
    ] {
        let run = |incremental: bool, bounded: bool| {
            let cfg = SearchConfig {
                goal: Goal::MinimizeLength,
                time_limit: None,
                max_tabu_iterations: 40,
                incremental,
                bounded,
                ..SearchConfig::default()
            };
            optimize(&problem, Strategy::Mxr, &cfg).unwrap()
        };
        let reference = run(false, false); // the PR 1 evaluation path
        for (incremental, bounded) in [(true, false), (false, true), (true, true)] {
            let out = run(incremental, bounded);
            assert_eq!(
                out.design, reference.design,
                "design changed under incremental={incremental} bounded={bounded}"
            );
            assert_eq!(out.schedule.cost(), reference.schedule.cost());
            assert_eq!(
                out.stats.tabu_iterations, reference.stats.tabu_iterations,
                "trajectory changed under incremental={incremental} bounded={bounded}"
            );
            assert_eq!(out.stats.greedy_steps, reference.stats.greedy_steps);
        }
    }
}

#[test]
fn search_results_invariant_under_comm_engine_knobs() {
    // The communication-aware engine's two knobs — the certified
    // bus-wait lower bound and the per-(node, slot) occupancy index —
    // are pure throughput knobs: the bound is admissible (it changes
    // *when* a loser is certified, never *which* candidate wins) and
    // both booking paths pick identical slot occurrences, so whole
    // searches must be bit-identical with either knob flipped. Checked
    // on the paper family and, more importantly, on the comm-heavy
    // family where the knobs actually do work.
    for base in [problem(14, 3, 2, 4), comm_problem(12, 4, 2, 7)] {
        let run = |p: &Problem| {
            let cfg = SearchConfig {
                goal: Goal::MinimizeLength,
                time_limit: None,
                max_tabu_iterations: 30,
                ..SearchConfig::default()
            };
            optimize(p, Strategy::Mxr, &cfg).unwrap()
        };
        let reference = run(&base);
        let variants = [
            base.clone().with_comm_lookahead(false),
            base.clone().with_flat_occupancy(),
            base.clone()
                .with_comm_lookahead(false)
                .with_flat_occupancy(),
        ];
        for (i, variant) in variants.iter().enumerate() {
            let out = run(variant);
            assert_eq!(out.design, reference.design, "variant {i}: design changed");
            assert_eq!(out.schedule.cost(), reference.schedule.cost());
            assert_eq!(
                out.stats.tabu_iterations, reference.stats.tabu_iterations,
                "variant {i}: trajectory changed"
            );
            assert_eq!(out.stats.greedy_steps, reference.stats.greedy_steps);
            // Note: `pruned`/`evaluations` counters are NOT asserted —
            // certificate values differ with the comm bound armed, so
            // the winner-bounded resolution pass may re-evaluate a
            // slightly different set of bounded candidates. The
            // trajectory (and hence everything above) is still
            // bit-identical because within-bound candidates always
            // complete exactly either way.
        }
    }
}

#[test]
fn bus_resumed_equals_full_for_slot_swaps() {
    // The checkpointed bus-opt probe: a slot-swap candidate resumed
    // from the recorded incumbent placement must classify exactly
    // like the from-scratch run under the swapped bus — for every
    // pair, unbounded and under a tight bound.
    for (problem, label) in [
        (problem(14, 4, 2, 6), "paper"),
        (comm_problem(12, 4, 2, 5), "comm"),
    ] {
        let design = initial::initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let mut core = ftdes_sched::SchedScratch::default();
        let mut ckpts = PlacementCheckpoints::new();
        let incumbent = problem
            .evaluate_with_bus_recording(problem.bus(), &design, &mut core, Some(&mut ckpts))
            .unwrap();
        let incumbent_cost = incumbent.cost();
        assert!(ckpts.is_valid());

        let mut scratch = CostScratch::default();
        let slots = problem.bus().slots_per_round();
        for a in 0..slots {
            for b in (a + 1)..slots {
                let cand = problem.bus().swap_slots(a, b);
                let full = problem
                    .evaluate_cost_with_bus_bounded(&cand, &design, &mut scratch, None)
                    .unwrap();
                let resumed = problem
                    .evaluate_cost_bus_swapped(&cand, (a, b), &mut scratch, &ckpts, None)
                    .unwrap();
                assert_eq!(
                    resumed, full,
                    "{label}: resumed bus probe diverged on swap ({a}, {b})"
                );
                let exact = match full {
                    CostOutcome::Exact(c) => c,
                    CostOutcome::LowerBound(_) => unreachable!("unbounded runs are exact"),
                };
                // Bounded probes: classification must agree with the
                // exact cost for both engines; certificates must be
                // admissible (they may differ in value — the two
                // engines abort at different placement positions).
                for bound in [incumbent_cost, exact] {
                    for resumed in [false, true] {
                        let outcome = if resumed {
                            problem
                                .evaluate_cost_bus_swapped(
                                    &cand,
                                    (a, b),
                                    &mut scratch,
                                    &ckpts,
                                    Some(bound),
                                )
                                .unwrap()
                        } else {
                            problem
                                .evaluate_cost_with_bus_bounded(
                                    &cand,
                                    &design,
                                    &mut scratch,
                                    Some(bound),
                                )
                                .unwrap()
                        };
                        match outcome {
                            CostOutcome::Exact(c) => {
                                assert_eq!(c, exact, "{label} swap ({a},{b})");
                                assert!(exact <= bound, "{label}: aborted too eagerly");
                            }
                            CostOutcome::LowerBound(lb) => {
                                assert!(exact > bound, "{label}: must complete within bound");
                                assert!(lb > bound && lb <= exact, "{label}: bad certificate");
                            }
                        }
                    }
                }
            }
        }
    }
}
