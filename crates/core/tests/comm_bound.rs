//! Admissibility of the certified bus-wait lower bound on random
//! communication-heavy instances ([`ftdes_gen::comm_heavy`]).
//!
//! The bound's whole soundness story rests on one property: the
//! certified floor **never exceeds the true scheduled cost** — a
//! within-bound candidate always completes exactly, and an abort
//! certificate is a genuine lower bound. This test walks random
//! designs of random dense instances and checks both directions
//! against the exact cost, with the bus-wait bound on and off (the
//! classification — exact vs pruned — must not depend on the bound
//! being armed).

use ftdes_core::moves::MoveTable;
use ftdes_core::{initial, PolicySpace, Problem};
use ftdes_gen::{comm_heavy, CommHeavyParams};
use ftdes_model::architecture::Architecture;
use ftdes_model::fault::FaultModel;
use ftdes_model::time::Time;
use ftdes_sched::{CostOutcome, CostScratch, ScheduleCost};
use ftdes_ttp::config::BusConfig;

/// A tiny deterministic PRNG (splitmix64) for move choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn comm_problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let params = CommHeavyParams::dense(processes);
    let w = comm_heavy(&params, &arch, seed);
    let largest = w
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1)
        .max(1);
    let bus = BusConfig::initial(&arch, largest, params.byte_time()).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)),
        bus,
    )
}

#[test]
fn bus_wait_bound_is_admissible_on_comm_heavy_instances() {
    for seed in 0..6u64 {
        let armed = comm_problem(13, 4, 2, seed);
        let disarmed = armed.clone().with_comm_lookahead(false);
        let table = MoveTable::new(&armed, PolicySpace::Mixed);
        let mut design = initial::initial_mpa(&armed, PolicySpace::Mixed).unwrap();
        let mut rng = Rng(seed ^ 0xc0ff_ee00);
        let mut scratch = CostScratch::default();
        let mut core = ftdes_sched::SchedScratch::default();
        let mut window = Vec::new();

        // A random walk of applied moves; at every step, every
        // candidate of the current window is checked for
        // admissibility under a spread of bounds.
        for _step in 0..5 {
            let schedule = armed.evaluate_with_bus_scratch(armed.bus(), &design, &mut core);
            let schedule = schedule.unwrap();
            let cp = schedule.move_candidates(armed.graph(), 6);
            table.window(&design, &cp, &mut window);
            if window.is_empty() {
                break;
            }
            for mv in &window {
                let mut cand = design.clone();
                cand.set_decision(mv.process, table.decision(*mv).clone());
                let exact = armed.evaluate_cost(&cand, &mut scratch).unwrap();

                // Bounds from generous (the exact cost itself: the
                // run must complete) to tight (just below: the run
                // must abort with an admissible certificate) to
                // hopeless (half the length: the certified floor —
                // including the armed entry check — still may not
                // overshoot the exact cost).
                let mut bounds = vec![exact];
                if !exact.length.is_zero() {
                    bounds.push(ScheduleCost {
                        violation: exact.violation,
                        length: exact.length.saturating_sub(Time::from_us(1)),
                    });
                    bounds.push(ScheduleCost {
                        violation: exact.violation,
                        length: exact.length / 2,
                    });
                }
                for &bound in &bounds {
                    let with = armed
                        .evaluate_cost_bounded(&cand, &mut scratch, Some(bound))
                        .unwrap();
                    let without = disarmed
                        .evaluate_cost_bounded(&cand, &mut scratch, Some(bound))
                        .unwrap();
                    for (outcome, label) in [(with, "armed"), (without, "disarmed")] {
                        match outcome {
                            CostOutcome::Exact(c) => {
                                assert_eq!(c, exact, "{label}: wrong exact cost");
                                assert!(
                                    exact <= bound,
                                    "{label}: seed {seed}: the bus-wait bound pruned a \
                                     within-bound candidate (exact {exact:?}, bound {bound:?})"
                                );
                            }
                            CostOutcome::LowerBound(lb) => {
                                assert!(exact > bound, "{label}: aborted a within-bound run");
                                assert!(lb > bound, "{label}: certificate within bound");
                                assert!(
                                    lb <= exact,
                                    "{label}: seed {seed}: inadmissible certificate \
                                     {lb:?} > exact {exact:?}"
                                );
                            }
                        }
                    }
                    // The bound is a pure throughput knob: armed and
                    // disarmed runs classify identically.
                    assert_eq!(
                        matches!(with, CostOutcome::Exact(_)),
                        matches!(without, CostOutcome::Exact(_)),
                        "seed {seed}: classification changed with the bus-wait bound"
                    );
                }
            }
            let mv = window[rng.below(window.len())];
            design.set_decision(mv.process, table.decision(mv).clone());
        }
    }
}
