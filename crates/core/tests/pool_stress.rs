//! Stress and failure-surfacing tests for the deterministic parallel
//! layer (`WorkerPool`, `try_par_map_init`).
//!
//! The pool's worst case is many *tiny* windows — each submission is
//! one mutex/condvar round-trip, so wake-up latency has to stay
//! correct (not just fast) under thread oversubscription. And since a
//! panicking evaluation closure must never strand the parked workers,
//! the pool has to surface the original panic on the submitting
//! thread and stay usable afterwards.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ftdes_core::parallel::{try_par_map_init, WorkerPool};

/// Many tiny windows on a heavily oversubscribed pool: far more
/// worker threads than the machine has cores forces constant
/// preemption inside the submit/park/wake protocol. Every window's
/// result must still be exactly input-ordered and complete.
#[test]
fn oversubscribed_pool_survives_many_tiny_windows() {
    let pool = WorkerPool::new(16);
    for round in 0..400_usize {
        let items: Vec<usize> = (0..3).map(|i| round * 10 + i).collect();
        let out = pool
            .try_map_init(&items, || (), |(), i, &v| Ok::<_, ()>(Some((i, v * 2))))
            .expect("tiny window maps cleanly");
        assert_eq!(out.len(), 3, "round {round}");
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(*slot, Some((i, (round * 10 + i) * 2)), "round {round}");
        }
    }
}

/// Alternating window sizes (1-item, large, empty) on one pool: the
/// epoch protocol must not confuse consecutive submissions of very
/// different shapes.
#[test]
fn mixed_window_sizes_share_one_pool() {
    let pool = WorkerPool::new(8);
    for round in 0..100_usize {
        let n = match round % 3 {
            0 => 1,
            1 => 257,
            _ => 0,
        };
        let items: Vec<usize> = (0..n).collect();
        let out = pool
            .try_map_init(&items, || (), |(), i, &v| Ok::<_, ()>(Some(i + v)))
            .expect("window maps cleanly");
        assert_eq!(out.len(), n);
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(*slot, Some(2 * i));
        }
    }
}

/// A panicking closure must surface its original message on the
/// submitting thread — not hang the submitter waiting for a worker
/// that unwound, and not abort the process.
#[test]
fn pool_surfaces_worker_panic_message() {
    let pool = WorkerPool::new(4);
    let items: Vec<usize> = (0..64).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = pool.try_map_init(
            &items,
            || (),
            |(), i, _| {
                assert!(i != 13, "unlucky candidate 13");
                Ok::<_, ()>(Some(i))
            },
        );
    }));
    let payload = result.expect_err("the panic propagates to the submitter");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .expect("panic payload is a message");
    assert!(
        message.contains("unlucky candidate 13"),
        "original message surfaces, got: {message}"
    );
}

/// After a panicking job the pool is still usable: the workers are
/// parked again (not dead, not deadlocked) and the next submission
/// completes with correct results.
#[test]
fn pool_usable_after_panic() {
    let pool = WorkerPool::new(4);
    let items: Vec<usize> = (0..64).collect();
    for round in 0..3 {
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.try_map_init(
                &items,
                || (),
                |(), i, _| {
                    assert!(i < 20, "round {round} boom at {i}");
                    Ok::<_, ()>(Some(i))
                },
            );
        }));
        assert!(panicked.is_err(), "round {round} panicked");
        let ok = pool
            .try_map_init(&items, || (), |(), i, &v| Ok::<_, usize>(Some(i + v)))
            .expect("pool recovered");
        assert_eq!(ok.len(), 64, "round {round}");
        assert_eq!(ok[63], Some(126), "round {round}");
    }
}

/// Seed-parallelism regression: `try_par_map_init` results are in
/// **input** order, never completion order. Items are delayed in
/// reverse proportion to their index (late items finish first), so a
/// completion-ordered implementation would reverse the vector.
#[test]
fn par_map_order_is_input_order_not_completion_order() {
    let items: Vec<usize> = (0..24).collect();
    let out = try_par_map_init(
        &items,
        8,
        || (),
        |(), i, &v| {
            // Index 0 sleeps longest, the tail returns immediately.
            std::thread::sleep(Duration::from_millis((24 - i) as u64));
            Ok::<_, ()>(Some((i, v)))
        },
    )
    .expect("delayed map completes");
    for (i, slot) in out.iter().enumerate() {
        assert_eq!(*slot, Some((i, i)), "slot {i} holds item {i}");
    }
}

/// Same regression on the persistent pool, with per-worker state
/// proving workers were actually concurrent (more than one state
/// initialization) while the result order stayed by input index.
#[test]
fn pool_order_is_input_order_under_delays() {
    let pool = WorkerPool::new(8);
    let inits = AtomicUsize::new(0);
    let items: Vec<usize> = (0..24).collect();
    let out = pool
        .try_map_init(
            &items,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i, &v| {
                std::thread::sleep(Duration::from_millis((24 - i) as u64));
                Ok::<_, ()>(Some((i, v)))
            },
        )
        .expect("delayed map completes");
    for (i, slot) in out.iter().enumerate() {
        assert_eq!(*slot, Some((i, i)), "slot {i} holds item {i}");
    }
    assert!(inits.load(Ordering::Relaxed) >= 1);
}
