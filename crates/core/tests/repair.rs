//! Property tests of the repair pipeline: whatever the delta and
//! whichever rung produced the design, the schedule carried in a
//! [`RepairOutcome`] must be **bit-identical** to a cold, cache-free
//! evaluation of that design on the post-delta problem. Warm-started
//! search is a performance device — it must never change what a
//! design *scores*.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use ftdes_core::cache::EvalCache;
use ftdes_core::config::SearchConfig;
use ftdes_core::problem::Problem;
use ftdes_core::repair::{repair_with_cache, RepairBudget};
use ftdes_core::strategy::Strategy;
use ftdes_gen::paper_workload;
use ftdes_model::architecture::Architecture;
use ftdes_model::delta::{DeltaOp, NewProcess, ProblemDelta};
use ftdes_model::fault::FaultModel;
use ftdes_model::ids::{NodeId, ProcessId};
use ftdes_model::time::Time;
use ftdes_ttp::config::BusConfig;

fn small_problem(processes: usize, nodes: usize, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let workload = paper_workload(processes, &arch, seed);
    let largest = workload
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1)
        .max(1);
    let bus = BusConfig::initial(&arch, largest, Time::from_us(2_500)).expect("non-empty arch");
    Problem::new(
        workload.graph,
        arch,
        workload.wcet,
        FaultModel::new(1, Time::from_ms(5)),
        bus,
    )
}

/// One of the delta shapes, chosen by `kind`, kept in-range for a
/// problem with `processes` processes on `nodes` nodes.
fn make_delta(kind: u8, processes: usize, nodes: usize, pct: u32, which: u32) -> ProblemDelta {
    let node = NodeId::new(which % nodes as u32);
    let process = ProcessId::new(which % processes as u32);
    let mut delta = ProblemDelta::new();
    match kind % 6 {
        0 => delta.push(DeltaOp::KillNode { node }),
        1 => delta.push(DeltaOp::RescaleWcet {
            process: None,
            percent: 100 + pct,
        }),
        2 => delta.push(DeltaOp::RescaleWcet {
            process: Some(process),
            percent: 100 + pct,
        }),
        3 => delta.push(DeltaOp::DegradeNode {
            node,
            percent: 100 + pct,
        }),
        4 => delta.push(DeltaOp::RemoveProcess { process }),
        _ => {
            let wcet = (0..nodes as u32)
                .map(|n| (NodeId::new(n), Time::from_ms(1 + u64::from(which % 3))))
                .collect();
            delta.push(DeltaOp::AddProcess(Box::new(NewProcess::named(
                "prop-added",
                wcet,
            ))));
        }
    }
    delta
}

fn cfg() -> SearchConfig {
    SearchConfig {
        max_tabu_iterations: 20,
        time_limit: Some(Duration::from_millis(150)),
        ..SearchConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Repaired-then-evaluated ≡ cold evaluation: the schedule the
    /// ladder hands back scores exactly like a from-nothing
    /// evaluation of the same design on the post-delta problem.
    #[test]
    fn repaired_design_scores_like_cold_evaluation(
        processes in 6usize..11,
        nodes in 3usize..5,
        seed in 0u64..500,
        kind in 0u8..6,
        pct in 5u32..60,
        which in 0u32..16,
    ) {
        let problem = small_problem(processes, nodes, seed);
        let cache = Arc::new(EvalCache::default());
        let intact = ftdes_core::optimize_with_cache(&problem, Strategy::Mxr, &cfg(), &cache)
            .expect("intact problem solves");

        let delta = make_delta(kind, processes, nodes, pct, which);
        let budget = RepairBudget::from_total(Duration::from_millis(60));
        // A delta can make the problem unsolvable (e.g. removing the
        // only process); the bit-identity property applies to repairs
        // that produce a design at all.
        let Ok(outcome) = repair_with_cache(
            &problem, &intact.design, &delta, &budget, &cfg(), &cache,
        ) else {
            continue;
        };

        // Cold evaluation: `Problem::evaluate` goes straight to the
        // list scheduler, touching no evaluation cache at all.
        let cold = outcome
            .problem
            .evaluate(&outcome.design)
            .expect("returned design evaluates on the post-delta problem");

        prop_assert_eq!(
            outcome.schedule.cost(),
            cold.cost(),
            "rung {} returned a schedule that disagrees with cold evaluation",
            outcome.rung
        );
        prop_assert_eq!(outcome.schedule.length(), cold.length());
    }
}
