//! Suffix-splice parity: the affected-cone spliced evaluation
//! (evaluation engine v3) must be **observationally identical** to
//! full from-scratch cost evaluation.
//!
//! * `spliced_equals_full_for_random_move_sequences`: for random
//!   problems (paper family and the communication-heavy family, where
//!   slot perturbation actually propagates), random walks of applied
//!   moves and every candidate move at every step, a spliced
//!   evaluation returns bit-identically the full `schedule_cost`
//!   result — and the engine must actually engage (a splice that
//!   always falls back would pass parity vacuously).
//! * `spliced_bounded_classifies_exactly`: a spliced bounded run
//!   completes exactly iff the exact cost is within the bound, and an
//!   aborted run's certified lower bound never exceeds the exact cost.
//! * `search_results_invariant_under_suffix_splice`: whole searches
//!   walk bit-identical trajectories with the engine on or off.

use ftdes_core::moves::MoveTable;
use ftdes_core::{initial, optimize, Goal, PolicySpace, Problem, SearchConfig, Strategy};
use ftdes_gen::paper_workload;
use ftdes_model::architecture::Architecture;
use ftdes_model::fault::FaultModel;
use ftdes_model::time::Time;
use ftdes_sched::{CostOutcome, CostScratch, PlacementCheckpoints, ScheduleCost};
use ftdes_ttp::config::BusConfig;

fn problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let w = paper_workload(processes, &arch, seed);
    let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)),
        bus,
    )
}

/// A paper-family problem whose fault model charges a checkpointing
/// overhead χ, with the checkpoint move axis open: the random walks
/// below then apply and evaluate checkpoint-count moves, and the
/// splice must stay bit-identical across recovery-profile changes
/// (the slack registrations the segments replay differ per
/// candidate).
fn checkpointed_problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let w = paper_workload(processes, &arch, seed);
    let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)).with_checkpoint_overhead(Time::from_ms(2)),
        bus,
    )
    .with_max_checkpoints(3)
}

/// A communication-heavy problem — dense graph, expensive messages —
/// where bookings overflow rounds and the slot-perturbation channel
/// of the cone sweep does real work.
fn comm_problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let params = ftdes_gen::CommHeavyParams::dense(processes);
    let w = ftdes_gen::comm_heavy(&params, &arch, seed);
    let largest = w
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1)
        .max(1);
    let bus = BusConfig::initial(&arch, largest, params.byte_time()).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)),
        bus,
    )
}

/// A tiny deterministic PRNG (splitmix64) for move-sequence choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

#[test]
fn spliced_equals_full_for_random_move_sequences() {
    let problems = [
        (problem(12, 3, 2, 1), "paper/1"),
        (problem(14, 4, 3, 5), "paper/5"),
        (problem(16, 2, 1, 11), "paper/11"),
        (problem(10, 4, 4, 13), "paper/13"),
        (comm_problem(12, 4, 2, 7), "comm/7"),
        (comm_problem(14, 3, 1, 15), "comm/15"),
        (checkpointed_problem(12, 3, 2, 17), "checkpointed/17"),
        (checkpointed_problem(14, 4, 3, 19), "checkpointed/19"),
    ];
    for (problem, label) in problems {
        let table = MoveTable::new(&problem, PolicySpace::Mixed);
        if problem.max_checkpoints() > 1 {
            // The extension must not be vacuous: the walks below must
            // actually contain checkpoint-count moves.
            let has_cp_moves = (0..problem.process_count()).any(|i| {
                ftdes_core::moves::candidate_decisions(
                    &problem,
                    PolicySpace::Mixed,
                    ftdes_model::ids::ProcessId::new(i as u32),
                )
                .iter()
                .any(|d| d.policy.checkpoints() > 1)
            });
            assert!(has_cp_moves, "{label}: no checkpoint moves in the table");
        }
        let mut design = initial::initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let mut rng = Rng(42);
        let mut scratch = CostScratch::default();
        let mut core = ftdes_sched::SchedScratch::default();
        let mut ckpts = PlacementCheckpoints::new();
        let mut window = Vec::new();
        let mut engaged = 0usize;
        let mut fallbacks = 0usize;

        // A random walk of applied moves; at every step, every
        // candidate move of the current window is checked for parity.
        for step in 0..8 {
            let schedule = problem
                .evaluate_recording(&design, &mut core, Some(&mut ckpts))
                .unwrap();
            let cp = schedule.move_candidates(problem.graph(), 8);
            table.window(&design, &cp, &mut window);
            if window.is_empty() {
                break;
            }
            for mv in &window {
                let mut cand = design.clone();
                cand.set_decision(mv.process, table.decision(*mv).clone());
                let full = problem.evaluate_cost(&cand, &mut scratch).unwrap();
                let spliced = ftdes_sched::schedule_cost_spliced(
                    problem.graph(),
                    problem.arch(),
                    problem.dense_wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &cand,
                    mv.process,
                    problem.schedule_options(),
                    &mut scratch,
                    &ckpts,
                    None,
                )
                .unwrap();
                match spliced {
                    Some(outcome) => {
                        engaged += 1;
                        assert_eq!(
                            outcome,
                            CostOutcome::Exact(full),
                            "{label} step {step}: spliced evaluation diverged for {mv:?}"
                        );
                    }
                    // Ready-order divergence: the engine must refuse,
                    // and schedule_cost_resumed falls back — verify
                    // the fallback agrees too.
                    None => fallbacks += 1,
                }
                // The production entry point (splice with fallback)
                // must agree as well.
                let resumed = ftdes_sched::schedule_cost_resumed(
                    problem.graph(),
                    problem.arch(),
                    problem.dense_wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &cand,
                    mv.process,
                    problem.schedule_options(),
                    &mut scratch,
                    &ckpts,
                    None,
                )
                .unwrap();
                assert_eq!(resumed, CostOutcome::Exact(full), "{label} step {step}");
            }
            let mv = window[rng.below(window.len())];
            design.set_decision(mv.process, table.decision(mv).clone());
        }
        assert!(
            engaged > fallbacks,
            "{label}: splice engaged only {engaged} times ({fallbacks} fallbacks) — \
             the independence proof is firing too rarely to matter"
        );
    }
}

#[test]
fn spliced_bounded_classifies_exactly() {
    for (problem, label) in [
        (problem(14, 3, 2, 3), "paper"),
        (comm_problem(12, 4, 2, 5), "comm"),
        (checkpointed_problem(14, 3, 2, 21), "checkpointed"),
    ] {
        let table = MoveTable::new(&problem, PolicySpace::Mixed);
        let design = initial::initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let mut core = ftdes_sched::SchedScratch::default();
        let mut ckpts = PlacementCheckpoints::new();
        let schedule = problem
            .evaluate_recording(&design, &mut core, Some(&mut ckpts))
            .unwrap();
        let base_cost = schedule.cost();
        let cp = schedule.move_candidates(problem.graph(), 8);
        let mut window = Vec::new();
        table.window(&design, &cp, &mut window);
        assert!(!window.is_empty());

        let mut scratch = CostScratch::default();
        let bounds = [
            ScheduleCost {
                violation: Time::ZERO,
                length: base_cost.length / 2,
            },
            ScheduleCost {
                violation: Time::ZERO,
                length: base_cost.length.saturating_sub(Time::from_ms(1)),
            },
            base_cost,
        ];
        for mv in &window {
            let mut cand = design.clone();
            cand.set_decision(mv.process, table.decision(*mv).clone());
            let exact = problem.evaluate_cost(&cand, &mut scratch).unwrap();
            for &bound in &bounds {
                let Some(outcome) = ftdes_sched::schedule_cost_spliced(
                    problem.graph(),
                    problem.arch(),
                    problem.dense_wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &cand,
                    mv.process,
                    problem.schedule_options(),
                    &mut scratch,
                    &ckpts,
                    Some(bound),
                )
                .unwrap() else {
                    continue; // order divergence: the fallback engine owns it
                };
                match outcome {
                    CostOutcome::Exact(cost) => {
                        assert_eq!(cost, exact, "{label}: exact outcome must be the exact cost");
                        assert!(
                            exact <= bound,
                            "{label}: a within-bound candidate must complete exactly"
                        );
                    }
                    CostOutcome::LowerBound(lb) => {
                        assert!(
                            exact > bound,
                            "{label}: aborted candidate must truly exceed the bound"
                        );
                        assert!(
                            lb > bound,
                            "{label}: the abort certificate must exceed the bound"
                        );
                        assert!(
                            lb <= exact,
                            "{label}: a lower bound may never exceed the exact cost"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn search_results_invariant_under_suffix_splice() {
    // The splice is a pure throughput knob: spliced costs are
    // bit-identical, and pruned candidates (whose certificate values
    // may differ) are always resolved exactly before they can decide
    // a selection — so whole searches must walk identical
    // trajectories with the engine on or off.
    for base in [
        problem(14, 3, 2, 4),
        comm_problem(12, 4, 2, 9),
        checkpointed_problem(14, 3, 2, 23),
    ] {
        let run = |p: &Problem| {
            let cfg = SearchConfig {
                goal: Goal::MinimizeLength,
                time_limit: None,
                max_tabu_iterations: 30,
                ..SearchConfig::default()
            };
            optimize(p, Strategy::Mxr, &cfg).unwrap()
        };
        let with_splice = run(&base);
        let without = run(&base.clone().with_suffix_splice(false));
        assert_eq!(
            with_splice.design, without.design,
            "design changed under the splice knob"
        );
        assert_eq!(with_splice.schedule.cost(), without.schedule.cost());
        assert_eq!(
            with_splice.stats.tabu_iterations, without.stats.tabu_iterations,
            "trajectory changed under the splice knob"
        );
        assert_eq!(with_splice.stats.greedy_steps, without.stats.greedy_steps);
        // Note: `pruned`/`evaluations` counters are NOT asserted —
        // splice certificates carry different (still certified)
        // values, so the winner-bounded resolution pass may re-check
        // a different set of bounded candidates.
    }
}
