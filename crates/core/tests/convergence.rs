//! Convergence quality: on instances small enough to enumerate every
//! design, the three-step strategy must find the true optimum (or
//! get very close), and the strategy dominance relations of the paper
//! must hold exactly.

use std::time::Duration;

use ftdes_core::{optimize, Goal, Problem, SearchConfig, Strategy};
use ftdes_model::architecture::Architecture;
use ftdes_model::design::{Design, ProcessDesign};
use ftdes_model::fault::FaultModel;
use ftdes_model::graph::{Message, ProcessGraph};
use ftdes_model::ids::{NodeId, ProcessId};
use ftdes_model::policy::FtPolicy;
use ftdes_model::time::Time;
use ftdes_model::wcet::WcetTable;
use ftdes_sched::ScheduleCost;
use ftdes_ttp::config::BusConfig;

/// Enumerates every decision for one process: all replication levels
/// with all ordered node selections (the primary choice matters).
fn all_decisions(problem: &Problem, p: ProcessId) -> Vec<ProcessDesign> {
    let fm = problem.fault_model();
    let eligible: Vec<NodeId> = problem.wcet().eligible_nodes(p).map(|(n, _)| n).collect();
    let mut out = Vec::new();
    for r in 1..=fm.max_replicas().min(eligible.len() as u32) {
        // Ordered selections of r nodes out of the eligible ones.
        let mut stack: Vec<Vec<NodeId>> = vec![Vec::new()];
        for _ in 0..r {
            let mut next = Vec::new();
            for partial in &stack {
                for &n in &eligible {
                    if !partial.contains(&n) {
                        let mut ext = partial.clone();
                        ext.push(n);
                        next.push(ext);
                    }
                }
            }
            stack = next;
        }
        for mapping in stack {
            out.push(ProcessDesign::new(FtPolicy::new(p, r, fm).unwrap(), mapping).unwrap());
        }
    }
    out
}

/// Brute-force optimal cost over the full design space.
fn brute_force_optimum(problem: &Problem) -> ScheduleCost {
    let n = problem.process_count();
    let per_process: Vec<Vec<ProcessDesign>> = (0..n)
        .map(|i| all_decisions(problem, ProcessId::new(i as u32)))
        .collect();
    let mut best: Option<ScheduleCost> = None;
    let mut indices = vec![0usize; n];
    loop {
        let design = Design::from_decisions(
            indices
                .iter()
                .enumerate()
                .map(|(p, &i)| per_process[p][i].clone())
                .collect(),
        );
        let cost = problem
            .evaluate(&design)
            .expect("enumerated designs schedule")
            .cost();
        best = Some(match best {
            Some(b) if b <= cost => b,
            _ => cost,
        });
        // Odometer increment.
        let mut digit = 0;
        loop {
            if digit == n {
                return best.expect("space is non-empty");
            }
            indices[digit] += 1;
            if indices[digit] < per_process[digit].len() {
                break;
            }
            indices[digit] = 0;
            digit += 1;
        }
    }
}

/// Fig. 4's diamond: four processes, two nodes, k = 1 — 36 ^ ... a
/// few thousand designs, enumerable in well under a second.
fn tiny_problem(seed: u64) -> Problem {
    let mut g = ProcessGraph::new(0.into());
    let ps: Vec<_> = g.add_processes(4);
    g.add_edge(ps[0], ps[1], Message::new(4)).unwrap();
    g.add_edge(ps[0], ps[2], Message::new(4)).unwrap();
    g.add_edge(ps[1], ps[3], Message::new(4)).unwrap();
    let mut wcet = WcetTable::new();
    for (i, &p) in ps.iter().enumerate() {
        let base = 30 + 10 * ((i as u64 + seed) % 4);
        wcet.set(p, NodeId::new(0), Time::from_ms(base));
        wcet.set(p, NodeId::new(1), Time::from_ms(base + 5 + seed % 7));
    }
    let arch = Architecture::with_node_count(2);
    let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
    Problem::new(g, arch, wcet, FaultModel::new(1, Time::from_ms(10)), bus)
}

fn converged_cfg() -> SearchConfig {
    SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: Some(Duration::from_secs(5)),
        max_tabu_iterations: 400,
        ..SearchConfig::default()
    }
}

#[test]
fn mxr_finds_the_brute_force_optimum_on_tiny_instances() {
    for seed in 0..4 {
        let problem = tiny_problem(seed);
        let optimum = brute_force_optimum(&problem);
        let mxr = optimize(&problem, Strategy::Mxr, &converged_cfg()).unwrap();
        assert_eq!(
            mxr.schedule.cost(),
            optimum,
            "seed {seed}: MXR {} vs optimum {}",
            mxr.length(),
            optimum.length
        );
    }
}

#[test]
fn converged_dominance_mxr_beats_restricted_spaces() {
    for seed in 0..4 {
        let problem = tiny_problem(seed);
        let cfg = converged_cfg();
        let mxr = optimize(&problem, Strategy::Mxr, &cfg).unwrap();
        let mx = optimize(&problem, Strategy::Mx, &cfg).unwrap();
        let mr = optimize(&problem, Strategy::Mr, &cfg).unwrap();
        let sfx = optimize(&problem, Strategy::Sfx, &cfg).unwrap();
        assert!(mxr.length() <= mx.length(), "seed {seed}: MXR vs MX");
        assert!(mxr.length() <= mr.length(), "seed {seed}: MXR vs MR");
        assert!(mxr.length() <= sfx.length(), "seed {seed}: MXR vs SFX");
    }
}
