//! Reconvergence-certificate parity: the timing-aware chain cuts of
//! evaluation engine v4 must be **observationally invisible** — a
//! spliced evaluation with the certificate enabled returns
//! bit-identically the full `schedule_cost` result, because every cut
//! is runtime-verified against the recording and a failed
//! verification voids the whole splice.
//!
//! The certificate is an opt-in (default off): every problem here is
//! built `.with_reconvergence(true)` so the recordings carry the
//! queue-depth tables the verifier needs and the cuts actually fire.
//!
//! * `reconv_spliced_equals_full_for_random_move_sequences`: random
//!   walks over the paper family and the communication-heavy family;
//!   every candidate at every step evaluates spliced ≡ resumed ≡
//!   full, and the certificate must actually cut chains (engagement
//!   floor via the firing counters) — parity with zero cuts would be
//!   vacuous.
//! * `reconv_bounded_classifies_exactly`: under the certificate, a
//!   bounded run's classification contract still holds — in
//!   particular the abort certificate's lower bound never exceeds the
//!   exact cost even while cut chains carry contingent (zeroed)
//!   completions. Bounds are swept across the exact base-cost
//!   boundary (the adversarial exact-gap-fill edge: a candidate whose
//!   length lands exactly on the bound must classify as within it).
//! * `reconv_parity_across_occupancy_backends`: all three occupancy
//!   backends agree bit-identically with the certificate on.
//! * `search_results_invariant_under_reconvergence`: whole searches
//!   walk bit-identical trajectories with the certificate on or off.

use ftdes_core::moves::MoveTable;
use ftdes_core::{initial, optimize, Goal, PolicySpace, Problem, SearchConfig, Strategy};
use ftdes_gen::paper_workload;
use ftdes_model::architecture::Architecture;
use ftdes_model::fault::FaultModel;
use ftdes_model::time::Time;
use ftdes_sched::incremental::metrics;
use ftdes_sched::{CostOutcome, CostScratch, OccupancyBackend, PlacementCheckpoints, ScheduleCost};
use ftdes_ttp::config::BusConfig;

fn problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let w = paper_workload(processes, &arch, seed);
    let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)),
        bus,
    )
    .with_reconvergence(true)
}

/// A communication-heavy problem — dense graph, expensive messages —
/// where bookings overflow rounds and the certificate's bus-slot
/// soundness condition (no rebooked in-flight arrivals crossing a
/// cut) is actually load-bearing.
fn comm_problem(processes: usize, nodes: usize, k: u32, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let params = ftdes_gen::CommHeavyParams::dense(processes);
    let w = ftdes_gen::comm_heavy(&params, &arch, seed);
    let largest = w
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1)
        .max(1);
    let bus = BusConfig::initial(&arch, largest, params.byte_time()).unwrap();
    Problem::new(
        w.graph,
        arch,
        w.wcet,
        FaultModel::new(k, Time::from_ms(5)),
        bus,
    )
    .with_reconvergence(true)
}

/// A tiny deterministic PRNG (splitmix64) for move-sequence choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

#[test]
fn reconv_spliced_equals_full_for_random_move_sequences() {
    metrics::enable();
    let (cut_before, fail_before) = metrics::reconv();
    let problems = [
        (problem(12, 3, 2, 1), "paper/1"),
        (problem(14, 4, 3, 5), "paper/5"),
        (problem(16, 3, 2, 11), "paper/11"),
        (problem(40, 4, 3, 0), "paper/gate"),
        (comm_problem(12, 4, 2, 7), "comm/7"),
        (comm_problem(14, 3, 1, 15), "comm/15"),
    ];
    for (problem, label) in problems {
        assert!(
            problem.schedule_options().reconvergence,
            "{label}: opt-in lost"
        );
        let table = MoveTable::new(&problem, PolicySpace::Mixed);
        let mut design = initial::initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let mut rng = Rng(42);
        let mut scratch = CostScratch::default();
        let mut core = ftdes_sched::SchedScratch::default();
        let mut ckpts = PlacementCheckpoints::new();
        let mut window = Vec::new();

        // A random walk of applied moves; at every step, every
        // candidate move of the current window is checked for parity.
        for step in 0..6 {
            let schedule = problem
                .evaluate_recording(&design, &mut core, Some(&mut ckpts))
                .unwrap();
            let cp = schedule.move_candidates(problem.graph(), 8);
            table.window(&design, &cp, &mut window);
            if window.is_empty() {
                break;
            }
            for mv in &window {
                let mut cand = design.clone();
                cand.set_decision(mv.process, table.decision(*mv).clone());
                let full = problem.evaluate_cost(&cand, &mut scratch).unwrap();
                let spliced = ftdes_sched::schedule_cost_spliced(
                    problem.graph(),
                    problem.arch(),
                    problem.dense_wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &cand,
                    mv.process,
                    problem.schedule_options(),
                    &mut scratch,
                    &ckpts,
                    None,
                )
                .unwrap();
                if let Some(outcome) = spliced {
                    assert_eq!(
                        outcome,
                        CostOutcome::Exact(full),
                        "{label} step {step}: reconv splice diverged for {mv:?}"
                    );
                }
                // The production entry point (splice, then verified-cut
                // failure fallback, then PR 2 replay) must agree too.
                let resumed = ftdes_sched::schedule_cost_resumed(
                    problem.graph(),
                    problem.arch(),
                    problem.dense_wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &cand,
                    mv.process,
                    problem.schedule_options(),
                    &mut scratch,
                    &ckpts,
                    None,
                )
                .unwrap();
                assert_eq!(resumed, CostOutcome::Exact(full), "{label} step {step}");
            }
            let mv = window[rng.below(window.len())];
            design.set_decision(mv.process, table.decision(mv).clone());
        }
    }
    // Engagement floor: parity above is vacuous unless the certificate
    // actually cut chains. (Counters are global and monotone, so
    // concurrent tests can only push the deltas up, never down.)
    let (cut_after, fail_after) = metrics::reconv();
    let cuts = cut_after - cut_before;
    assert!(
        cuts >= 100,
        "certificate cut only {cuts} chains across the suite — \
         the cut rule is firing too rarely to matter"
    );
    // The runtime-verification path must be exercised as well: a
    // verifier that never rejects is indistinguishable from no
    // verifier, and these dense workloads are known to produce
    // avail-overshoot rejections.
    assert!(
        fail_after > fail_before,
        "no cut ever failed verification — the verifier path is untested"
    );
}

#[test]
fn reconv_bounded_classifies_exactly() {
    for (problem, label) in [
        (problem(14, 3, 2, 3), "paper"),
        (comm_problem(12, 4, 2, 5), "comm"),
    ] {
        let table = MoveTable::new(&problem, PolicySpace::Mixed);
        let design = initial::initial_mpa(&problem, PolicySpace::Mixed).unwrap();
        let mut core = ftdes_sched::SchedScratch::default();
        let mut ckpts = PlacementCheckpoints::new();
        let schedule = problem
            .evaluate_recording(&design, &mut core, Some(&mut ckpts))
            .unwrap();
        let base_cost = schedule.cost();
        let cp = schedule.move_candidates(problem.graph(), 8);
        let mut window = Vec::new();
        table.window(&design, &cp, &mut window);
        assert!(!window.is_empty());

        let mut scratch = CostScratch::default();
        for mv in &window {
            let mut cand = design.clone();
            cand.set_decision(mv.process, table.decision(*mv).clone());
            let exact = problem.evaluate_cost(&cand, &mut scratch).unwrap();
            // Sweep bounds across the exact boundary, including the
            // candidate's own exact cost: the adversarial gap-fill
            // edge where the schedule lands precisely on the bound
            // and must still classify as within it.
            let bounds = [
                ScheduleCost {
                    violation: Time::ZERO,
                    length: base_cost.length / 2,
                },
                ScheduleCost {
                    violation: Time::ZERO,
                    length: base_cost.length.saturating_sub(Time::from_ms(1)),
                },
                base_cost,
                exact,
            ];
            for &bound in &bounds {
                let Some(outcome) = ftdes_sched::schedule_cost_spliced(
                    problem.graph(),
                    problem.arch(),
                    problem.dense_wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &cand,
                    mv.process,
                    problem.schedule_options(),
                    &mut scratch,
                    &ckpts,
                    Some(bound),
                )
                .unwrap() else {
                    continue; // order divergence: the fallback engine owns it
                };
                match outcome {
                    CostOutcome::Exact(cost) => {
                        assert_eq!(cost, exact, "{label}: exact outcome must be the exact cost");
                        assert!(
                            exact <= bound,
                            "{label}: a within-bound candidate must complete exactly"
                        );
                    }
                    CostOutcome::LowerBound(lb) => {
                        assert!(
                            exact > bound,
                            "{label}: aborted candidate must truly exceed the bound"
                        );
                        assert!(
                            lb > bound,
                            "{label}: the abort certificate must exceed the bound"
                        );
                        // The load-bearing soundness claim with cuts
                        // pending: contingent (zeroed) completions on
                        // cut chains must never inflate the certified
                        // floor past the true cost.
                        assert!(
                            lb <= exact,
                            "{label}: a lower bound may never exceed the exact cost"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn reconv_parity_across_occupancy_backends() {
    let backends = [
        OccupancyBackend::Bitmap,
        OccupancyBackend::Indexed,
        OccupancyBackend::Flat,
    ];
    for (make, label) in [
        (problem as fn(usize, usize, u32, u64) -> Problem, "paper"),
        (
            comm_problem as fn(usize, usize, u32, u64) -> Problem,
            "comm",
        ),
    ] {
        let mut per_backend: Vec<Vec<ScheduleCost>> = Vec::new();
        for backend in backends {
            let problem = make(14, 4, 2, 9).with_occupancy_backend(backend);
            let table = MoveTable::new(&problem, PolicySpace::Mixed);
            let design = initial::initial_mpa(&problem, PolicySpace::Mixed).unwrap();
            let mut core = ftdes_sched::SchedScratch::default();
            let mut ckpts = PlacementCheckpoints::new();
            let schedule = problem
                .evaluate_recording(&design, &mut core, Some(&mut ckpts))
                .unwrap();
            let cp = schedule.move_candidates(problem.graph(), 8);
            let mut window = Vec::new();
            table.window(&design, &cp, &mut window);
            assert!(!window.is_empty());
            let mut scratch = CostScratch::default();
            let mut costs = Vec::new();
            for mv in &window {
                let mut cand = design.clone();
                cand.set_decision(mv.process, table.decision(*mv).clone());
                let full = problem.evaluate_cost(&cand, &mut scratch).unwrap();
                let resumed = ftdes_sched::schedule_cost_resumed(
                    problem.graph(),
                    problem.arch(),
                    problem.dense_wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &cand,
                    mv.process,
                    problem.schedule_options(),
                    &mut scratch,
                    &ckpts,
                    None,
                )
                .unwrap();
                assert_eq!(
                    resumed,
                    CostOutcome::Exact(full),
                    "{label}/{backend:?}: reconv splice diverged from full"
                );
                costs.push(full);
            }
            per_backend.push(costs);
        }
        assert_eq!(
            per_backend[0], per_backend[1],
            "{label}: bitmap and indexed backends disagree under reconv"
        );
        assert_eq!(
            per_backend[0], per_backend[2],
            "{label}: bitmap and flat backends disagree under reconv"
        );
    }
}

#[test]
fn search_results_invariant_under_reconvergence() {
    // The certificate is a pure throughput knob: cuts are
    // runtime-verified, failed cuts fall back to the v3 cone, and
    // spliced costs stay bit-identical — so whole searches must walk
    // identical trajectories with the certificate on or off.
    for base in [problem(14, 3, 2, 4), comm_problem(12, 4, 2, 9)] {
        let run = |p: &Problem| {
            let cfg = SearchConfig {
                goal: Goal::MinimizeLength,
                time_limit: None,
                max_tabu_iterations: 25,
                ..SearchConfig::default()
            };
            optimize(p, Strategy::Mxr, &cfg).unwrap()
        };
        let with_reconv = run(&base);
        let without = run(&base.clone().with_reconvergence(false));
        assert_eq!(
            with_reconv.design, without.design,
            "design changed under the reconvergence knob"
        );
        assert_eq!(with_reconv.schedule.cost(), without.schedule.cost());
        assert_eq!(
            with_reconv.stats.tabu_iterations, without.stats.tabu_iterations,
            "trajectory changed under the reconvergence knob"
        );
        assert_eq!(with_reconv.stats.greedy_steps, without.stats.greedy_steps);
    }
}
