//! Property-based tests of the TDMA bus model.

use proptest::prelude::*;

use ftdes_model::architecture::Architecture;
use ftdes_model::ids::{EdgeId, NodeId};
use ftdes_model::time::Time;
use ftdes_ttp::{BusConfig, BusSchedule, MessageTag};

proptest! {
    /// A node's slot occurrences are periodic with the round length,
    /// and `next_slot_at` never returns an occurrence starting before
    /// the request.
    #[test]
    fn next_slot_is_earliest_feasible(
        nodes in 1usize..6,
        slot_bytes in 1u32..8,
        byte_us in 1u64..5_000,
        node_pick in 0usize..6,
        earliest_us in 0u64..1_000_000,
    ) {
        let arch = Architecture::with_node_count(nodes);
        let bus = BusConfig::initial(&arch, slot_bytes, Time::from_us(byte_us)).unwrap();
        let node = NodeId::new((node_pick % nodes) as u32);
        let earliest = Time::from_us(earliest_us);
        let (round, slot) = bus.next_slot_at(node, earliest);
        let start = bus.slot_start(round, slot);
        prop_assert!(start >= earliest, "slot starts before request");
        prop_assert_eq!(slot, bus.slot_of_node(node));
        // The previous occurrence (if any) must start strictly before.
        if round > 0 {
            prop_assert!(bus.slot_start(round - 1, slot) < earliest);
        }
        // Periodicity.
        prop_assert_eq!(
            bus.slot_start(round + 1, slot) - start,
            bus.round_length()
        );
    }

    /// Bookings never exceed frame capacity, never start before the
    /// request, and frames of the same slot never carry more bytes
    /// than the slot allows.
    #[test]
    fn bookings_respect_capacity_and_time(
        nodes in 1usize..5,
        slot_bytes in 1u32..6,
        requests in proptest::collection::vec(
            (0usize..5, 0u64..200_000, 1u32..6), 1..40),
    ) {
        let arch = Architecture::with_node_count(nodes);
        let bus = BusConfig::initial(&arch, slot_bytes, Time::from_us(1_000)).unwrap();
        let mut sched = BusSchedule::new(bus);
        for (i, (node_pick, earliest_us, size)) in requests.into_iter().enumerate() {
            let node = NodeId::new((node_pick % nodes) as u32);
            let earliest = Time::from_us(earliest_us);
            let tag = MessageTag::new(EdgeId::new(i as u32), 0);
            match sched.book(node, earliest, size, tag) {
                Ok(b) => {
                    prop_assert!(b.start >= earliest);
                    prop_assert!(b.arrival > b.start);
                    prop_assert_eq!(b.sender, node);
                }
                Err(_) => prop_assert!(size > slot_bytes, "only oversized messages fail"),
            }
        }
        // Per-frame byte accounting.
        for frame in sched.medl() {
            prop_assert!(frame.used_bytes <= slot_bytes);
        }
        // Utilisation is a fraction.
        let u = sched.utilisation();
        prop_assert!((0.0..=1.0).contains(&u));
    }

    /// Slot swapping is an involution and preserves round/slot
    /// timing structure.
    #[test]
    fn slot_swap_involution(
        nodes in 2usize..6,
        a in 0usize..6,
        b in 0usize..6,
    ) {
        let arch = Architecture::with_node_count(nodes);
        let bus = BusConfig::initial(&arch, 4, Time::from_us(500)).unwrap();
        let (a, b) = (a % nodes, b % nodes);
        let twice = bus.swap_slots(a, b).swap_slots(a, b);
        prop_assert_eq!(twice, bus.clone());
        let swapped = bus.swap_slots(a, b);
        prop_assert_eq!(swapped.round_length(), bus.round_length());
        prop_assert_eq!(swapped.slots_per_round(), bus.slots_per_round());
    }
}
