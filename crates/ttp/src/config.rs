//! Static TDMA bus-access configuration (paper §2.1, §5 step 1).
//!
//! Each node owns exactly one slot per TDMA round; a round is the
//! sequence of all slots; rounds repeat forever. The initial
//! configuration assigns slots in node order (`Si = Ni`) and sizes
//! every slot to the minimum allowed value — the transmission time of
//! the largest message of the application.

use serde::{Deserialize, Serialize};

use ftdes_model::architecture::Architecture;
use ftdes_model::ids::NodeId;
use ftdes_model::time::Time;

use crate::error::TtpError;

/// Transmission time of a single byte on the bus.
///
/// The paper abstracts the physical layer; the default of 2.5 ms per
/// byte reproduces the 10 ms slots of the paper's figures for 4-byte
/// messages.
pub const DEFAULT_BYTE_TIME: Time = Time::from_us(2_500);

/// The static bus-access configuration `B`: slot order and slot size.
///
/// # Examples
///
/// ```
/// use ftdes_model::architecture::Architecture;
/// use ftdes_model::time::Time;
/// use ftdes_ttp::config::BusConfig;
///
/// let arch = Architecture::with_node_count(2);
/// // Largest message: 4 bytes at 2.5 ms/byte -> 10 ms slots.
/// let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500))?;
/// assert_eq!(bus.slot_length(), Time::from_ms(10));
/// assert_eq!(bus.round_length(), Time::from_ms(20));
/// # Ok::<(), ftdes_ttp::error::TtpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Owner of each slot, in transmission order within a round.
    slot_order: Vec<NodeId>,
    /// Slot capacity in bytes (frame payload).
    slot_bytes: u32,
    /// Transmission time per byte.
    byte_time: Time,
    /// Reverse map node -> slot index.
    slot_of: Vec<usize>,
}

impl BusConfig {
    /// The initial configuration of the optimization strategy
    /// (paper Fig. 6 line 1): slots in node order, slot length fixed
    /// to the largest message of the application.
    ///
    /// # Errors
    ///
    /// Returns [`TtpError::EmptyArchitecture`] for zero nodes or
    /// [`TtpError::ZeroSlot`] when `largest_message_bytes` or
    /// `byte_time` is zero.
    pub fn initial(
        arch: &Architecture,
        largest_message_bytes: u32,
        byte_time: Time,
    ) -> Result<Self, TtpError> {
        let order: Vec<NodeId> = arch.node_ids().collect();
        Self::with_order(order, largest_message_bytes, byte_time)
    }

    /// A configuration with an explicit slot order (used by the bus
    /// access optimization).
    ///
    /// # Errors
    ///
    /// Returns [`TtpError::EmptyArchitecture`] when `slot_order` is
    /// empty, [`TtpError::DuplicateSlotOwner`] when a node owns two
    /// slots (a node can have only one slot per TDMA round), or
    /// [`TtpError::ZeroSlot`] on zero capacity or byte time.
    pub fn with_order(
        slot_order: Vec<NodeId>,
        slot_bytes: u32,
        byte_time: Time,
    ) -> Result<Self, TtpError> {
        if slot_order.is_empty() {
            return Err(TtpError::EmptyArchitecture);
        }
        if slot_bytes == 0 || byte_time.is_zero() {
            return Err(TtpError::ZeroSlot);
        }
        let max_index = slot_order
            .iter()
            .map(|n| n.index())
            .max()
            .expect("non-empty");
        let mut slot_of = vec![usize::MAX; max_index + 1];
        for (i, &n) in slot_order.iter().enumerate() {
            if slot_of[n.index()] != usize::MAX {
                return Err(TtpError::DuplicateSlotOwner { node: n });
            }
            slot_of[n.index()] = i;
        }
        if slot_of.contains(&usize::MAX) {
            // Some node id below the max owns no slot: in a TTP round
            // every node must transmit, otherwise it can never send.
            let node = NodeId::new(
                slot_of
                    .iter()
                    .position(|&s| s == usize::MAX)
                    .expect("checked") as u32,
            );
            return Err(TtpError::MissingSlotOwner { node });
        }
        Ok(BusConfig {
            slot_order,
            slot_bytes,
            byte_time,
            slot_of,
        })
    }

    /// Number of slots per round (= number of nodes).
    #[must_use]
    pub fn slots_per_round(&self) -> usize {
        self.slot_order.len()
    }

    /// The slot owners in transmission order.
    #[must_use]
    pub fn slot_order(&self) -> &[NodeId] {
        &self.slot_order
    }

    /// Frame capacity of a slot in bytes.
    #[must_use]
    pub fn slot_bytes(&self) -> u32 {
        self.slot_bytes
    }

    /// Per-byte transmission time.
    #[must_use]
    pub fn byte_time(&self) -> Time {
        self.byte_time
    }

    /// Duration of one slot.
    #[must_use]
    pub fn slot_length(&self) -> Time {
        self.byte_time * u64::from(self.slot_bytes)
    }

    /// Duration of one TDMA round.
    #[must_use]
    pub fn round_length(&self) -> Time {
        self.slot_length() * self.slot_order.len() as u64
    }

    /// The slot index owned by `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the configuration (construction
    /// guarantees every node of the architecture owns a slot).
    #[must_use]
    pub fn slot_of_node(&self, node: NodeId) -> usize {
        self.slot_of[node.index()]
    }

    /// Start instant of slot `slot` in round `round`.
    #[must_use]
    pub fn slot_start(&self, round: u64, slot: usize) -> Time {
        self.round_length() * round + self.slot_length() * slot as u64
    }

    /// End instant of slot `slot` in round `round` — the time by
    /// which the frame (and all messages packed in it) has been fully
    /// received by every node on the broadcast channel.
    #[must_use]
    pub fn slot_end(&self, round: u64, slot: usize) -> Time {
        self.slot_start(round, slot) + self.slot_length()
    }

    /// The earliest occurrence of `node`'s slot whose *start* is at
    /// or after `earliest`, returned as `(round, slot_index)`.
    ///
    /// A frame must be ready when its slot starts, hence the
    /// start-based comparison.
    #[must_use]
    pub fn next_slot_at(&self, node: NodeId, earliest: Time) -> (u64, usize) {
        let slot = self.slot_of_node(node);
        let round_len = self.round_length();
        let offset = self.slot_length() * slot as u64;
        // Find the smallest round r with r * round_len + offset >= earliest.
        let round = if earliest <= offset {
            0
        } else {
            (earliest - offset).div_ceil(round_len)
        };
        (round, slot)
    }

    /// Returns a copy with two slots swapped — the elementary move of
    /// the bus-access optimization.
    ///
    /// # Panics
    ///
    /// Panics if a slot index is out of range.
    #[must_use]
    pub fn swap_slots(&self, a: usize, b: usize) -> BusConfig {
        let mut order = self.slot_order.clone();
        order.swap(a, b);
        BusConfig::with_order(order, self.slot_bytes, self.byte_time)
            .expect("swap preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus2() -> BusConfig {
        let arch = Architecture::with_node_count(2);
        BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap()
    }

    #[test]
    fn paper_figure_slot_timing() {
        // Fig. 3: S1 then S2 (we use 0-based N0, N1), each 10 ms.
        let bus = bus2();
        assert_eq!(bus.slot_length(), Time::from_ms(10));
        assert_eq!(bus.round_length(), Time::from_ms(20));
        assert_eq!(bus.slot_start(0, 0), Time::ZERO);
        assert_eq!(bus.slot_start(0, 1), Time::from_ms(10));
        assert_eq!(bus.slot_start(1, 0), Time::from_ms(20));
        assert_eq!(bus.slot_end(1, 1), Time::from_ms(40));
    }

    #[test]
    fn next_slot_rounds_up() {
        let bus = bus2();
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        assert_eq!(bus.next_slot_at(n0, Time::ZERO), (0, 0));
        assert_eq!(bus.next_slot_at(n0, Time::from_ms(1)), (1, 0));
        assert_eq!(bus.next_slot_at(n1, Time::from_ms(10)), (0, 1));
        assert_eq!(bus.next_slot_at(n1, Time::from_ms(11)), (1, 1));
        assert_eq!(bus.next_slot_at(n1, Time::from_ms(30)), (1, 1));
        assert_eq!(bus.next_slot_at(n1, Time::from_ms(31)), (2, 1));
    }

    #[test]
    fn slot_of_node_respects_order() {
        let order = vec![NodeId::new(1), NodeId::new(0)];
        let bus = BusConfig::with_order(order, 4, Time::from_ms(1)).unwrap();
        assert_eq!(bus.slot_of_node(NodeId::new(1)), 0);
        assert_eq!(bus.slot_of_node(NodeId::new(0)), 1);
    }

    #[test]
    fn duplicate_owner_rejected() {
        let err = BusConfig::with_order(vec![NodeId::new(0), NodeId::new(0)], 4, Time::from_ms(1));
        assert!(matches!(err, Err(TtpError::DuplicateSlotOwner { .. })));
    }

    #[test]
    fn missing_owner_rejected() {
        // Node 0 missing while node 1 present.
        let err = BusConfig::with_order(vec![NodeId::new(1)], 4, Time::from_ms(1));
        assert!(matches!(err, Err(TtpError::MissingSlotOwner { .. })));
    }

    #[test]
    fn zero_slot_rejected() {
        let arch = Architecture::with_node_count(1);
        assert!(matches!(
            BusConfig::initial(&arch, 0, Time::from_ms(1)),
            Err(TtpError::ZeroSlot)
        ));
        assert!(matches!(
            BusConfig::initial(&arch, 4, Time::ZERO),
            Err(TtpError::ZeroSlot)
        ));
    }

    #[test]
    fn empty_arch_rejected() {
        let arch = Architecture::with_node_count(0);
        assert!(matches!(
            BusConfig::initial(&arch, 4, Time::from_ms(1)),
            Err(TtpError::EmptyArchitecture)
        ));
    }

    #[test]
    fn swap_slots_move() {
        let bus = bus2().swap_slots(0, 1);
        assert_eq!(bus.slot_order(), &[NodeId::new(1), NodeId::new(0)]);
        assert_eq!(bus.slot_of_node(NodeId::new(1)), 0);
    }
}
