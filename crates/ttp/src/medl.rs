//! Message scheduling and the message descriptor list (MEDL).
//!
//! The MEDL is the schedule table of every TTP controller: it lists
//! which frame (slot occurrence) carries which messages. This module
//! books messages into the earliest feasible slot occurrence of the
//! sender's node, packing several messages into one frame as long as
//! the slot capacity allows (paper §2.1: "in such a slot, a node can
//! send several messages packed in a frame").

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use ftdes_model::ids::{EdgeId, NodeId};
use ftdes_model::time::Time;

use crate::config::BusConfig;
use crate::error::TtpError;

/// Identifies one message instance: the producing edge plus the
/// replica number of the sender (each replica of a producer sends its
/// own copy, paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MessageTag {
    /// The data-dependency edge this message implements.
    pub edge: EdgeId,
    /// Sender replica index (0 = primary).
    pub sender_replica: u32,
}

impl MessageTag {
    /// Creates a tag.
    #[must_use]
    pub const fn new(edge: EdgeId, sender_replica: u32) -> Self {
        MessageTag {
            edge,
            sender_replica,
        }
    }
}

/// A message booked into a concrete slot occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BookedMessage {
    /// Identity of the message instance.
    pub tag: MessageTag,
    /// Payload size in bytes.
    pub size: u32,
    /// Transmitting node (owner of the slot).
    pub sender: NodeId,
    /// TDMA round of the transmission.
    pub round: u64,
    /// Slot index within the round.
    pub slot: usize,
    /// Start of the slot (frame must be ready by then).
    pub start: Time,
    /// End of the slot: the instant all receivers have the message.
    pub arrival: Time,
}

/// Occupancy and bookings of the bus over one schedule horizon.
///
/// # Examples
///
/// ```
/// use ftdes_model::architecture::Architecture;
/// use ftdes_model::time::Time;
/// use ftdes_ttp::config::BusConfig;
/// use ftdes_ttp::medl::{BusSchedule, MessageTag};
///
/// let arch = Architecture::with_node_count(2);
/// let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500))?;
/// let mut sched = BusSchedule::new(bus);
/// // Node N1 sends a 4-byte message ready at t = 0: booked in slot S1
/// // of round 0, arriving at 20 ms.
/// let booked = sched.book(1.into(), Time::ZERO, 4, MessageTag::new(0.into(), 0))?;
/// assert_eq!(booked.arrival, Time::from_ms(20));
/// # Ok::<(), ftdes_ttp::error::TtpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusSchedule {
    config: BusConfig,
    /// Used bytes per slot occurrence.
    occupancy: BTreeMap<(u64, usize), u32>,
    bookings: Vec<BookedMessage>,
}

impl BusSchedule {
    /// Creates an empty bus schedule over `config`.
    #[must_use]
    pub fn new(config: BusConfig) -> Self {
        BusSchedule {
            config,
            occupancy: BTreeMap::new(),
            bookings: Vec::new(),
        }
    }

    /// The underlying configuration.
    #[must_use]
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Reconstructs a bus schedule from already-placed bookings (the
    /// list scheduler books against its own reusable occupancy table
    /// and materializes the `BusSchedule` once per kept schedule).
    /// The occupancy accounting is rebuilt from the bookings.
    #[must_use]
    pub fn from_bookings(config: BusConfig, bookings: Vec<BookedMessage>) -> Self {
        let mut occupancy = BTreeMap::new();
        for b in &bookings {
            *occupancy.entry((b.round, b.slot)).or_insert(0) += b.size;
        }
        BusSchedule {
            config,
            occupancy,
            bookings,
        }
    }

    /// Books `size` bytes from `sender` into the earliest slot
    /// occurrence starting at or after `earliest` with spare frame
    /// capacity, and returns the booking.
    ///
    /// This is the `ScheduleMessage` primitive of the list scheduler
    /// (paper §5.1).
    ///
    /// # Errors
    ///
    /// Returns [`TtpError::MessageExceedsSlot`] when the message can
    /// never fit in a frame.
    pub fn book(
        &mut self,
        sender: NodeId,
        earliest: Time,
        size: u32,
        tag: MessageTag,
    ) -> Result<BookedMessage, TtpError> {
        if size > self.config.slot_bytes() {
            return Err(TtpError::MessageExceedsSlot {
                size,
                capacity: self.config.slot_bytes(),
            });
        }
        let (mut round, slot) = self.config.next_slot_at(sender, earliest);
        loop {
            let used = self.occupancy.get(&(round, slot)).copied().unwrap_or(0);
            if used + size <= self.config.slot_bytes() {
                let booked = BookedMessage {
                    tag,
                    size,
                    sender,
                    round,
                    slot,
                    start: self.config.slot_start(round, slot),
                    arrival: self.config.slot_end(round, slot),
                };
                self.occupancy.insert((round, slot), used + size);
                self.bookings.push(booked);
                return Ok(booked);
            }
            round += 1;
        }
    }

    /// All bookings in booking order.
    #[must_use]
    pub fn bookings(&self) -> &[BookedMessage] {
        &self.bookings
    }

    /// The number of TDMA rounds touched by at least one frame (the
    /// cycle length in rounds).
    #[must_use]
    pub fn rounds_used(&self) -> u64 {
        self.occupancy
            .keys()
            .map(|&(r, _)| r + 1)
            .max()
            .unwrap_or(0)
    }

    /// Bus utilisation: booked bytes over available bytes within the
    /// used rounds. Zero when nothing is booked.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        let used: u64 = self.occupancy.values().map(|&b| u64::from(b)).sum();
        let rounds = self.rounds_used();
        if rounds == 0 {
            return 0.0;
        }
        let capacity =
            rounds * self.config.slots_per_round() as u64 * u64::from(self.config.slot_bytes());
        used as f64 / capacity as f64
    }

    /// Renders the MEDL: one entry per occupied frame, in time order,
    /// with the packed message tags.
    #[must_use]
    pub fn medl(&self) -> Vec<MedlEntry> {
        let mut frames: BTreeMap<(u64, usize), MedlEntry> = BTreeMap::new();
        for b in &self.bookings {
            let entry = frames
                .entry((b.round, b.slot))
                .or_insert_with(|| MedlEntry {
                    round: b.round,
                    slot: b.slot,
                    sender: b.sender,
                    start: b.start,
                    end: b.arrival,
                    messages: Vec::new(),
                    used_bytes: 0,
                });
            entry.messages.push(b.tag);
            entry.used_bytes += b.size;
        }
        frames.into_values().collect()
    }
}

/// One frame of the MEDL: a slot occurrence with its packed messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MedlEntry {
    /// TDMA round.
    pub round: u64,
    /// Slot index within the round.
    pub slot: usize,
    /// Transmitting node.
    pub sender: NodeId,
    /// Frame start.
    pub start: Time,
    /// Frame end (message arrival).
    pub end: Time,
    /// Packed message tags in booking order.
    pub messages: Vec<MessageTag>,
    /// Total payload bytes used.
    pub used_bytes: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdes_model::architecture::Architecture;

    fn sched2() -> BusSchedule {
        let arch = Architecture::with_node_count(2);
        let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500)).unwrap();
        BusSchedule::new(bus)
    }

    fn tag(e: u32, r: u32) -> MessageTag {
        MessageTag::new(EdgeId::new(e), r)
    }

    #[test]
    fn books_earliest_feasible_slot() {
        let mut s = sched2();
        let b = s
            .book(NodeId::new(0), Time::from_ms(3), 4, tag(0, 0))
            .unwrap();
        assert_eq!((b.round, b.slot), (1, 0));
        assert_eq!(b.start, Time::from_ms(20));
        assert_eq!(b.arrival, Time::from_ms(30));
    }

    #[test]
    fn frame_packing_shares_slot() {
        let mut s = sched2();
        let a = s.book(NodeId::new(0), Time::ZERO, 2, tag(0, 0)).unwrap();
        let b = s.book(NodeId::new(0), Time::ZERO, 2, tag(1, 0)).unwrap();
        assert_eq!((a.round, a.slot), (0, 0));
        assert_eq!((b.round, b.slot), (0, 0), "2+2 bytes fit one 4-byte frame");
        let c = s.book(NodeId::new(0), Time::ZERO, 1, tag(2, 0)).unwrap();
        assert_eq!(c.round, 1, "full frame overflows to next round");
    }

    #[test]
    fn oversized_message_rejected() {
        let mut s = sched2();
        let err = s
            .book(NodeId::new(0), Time::ZERO, 5, tag(0, 0))
            .unwrap_err();
        assert!(matches!(err, TtpError::MessageExceedsSlot { .. }));
    }

    #[test]
    fn medl_groups_frames() {
        let mut s = sched2();
        s.book(NodeId::new(0), Time::ZERO, 2, tag(0, 0)).unwrap();
        s.book(NodeId::new(0), Time::ZERO, 2, tag(1, 0)).unwrap();
        s.book(NodeId::new(1), Time::ZERO, 4, tag(2, 0)).unwrap();
        let medl = s.medl();
        assert_eq!(medl.len(), 2);
        assert_eq!(medl[0].messages.len(), 2);
        assert_eq!(medl[0].used_bytes, 4);
        assert_eq!(medl[1].sender, NodeId::new(1));
        assert_eq!(s.rounds_used(), 1);
    }

    #[test]
    fn utilisation_accounting() {
        let mut s = sched2();
        assert_eq!(s.utilisation(), 0.0);
        s.book(NodeId::new(0), Time::ZERO, 4, tag(0, 0)).unwrap();
        // 4 bytes used of 8 available in round 0.
        assert!((s.utilisation() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bookings_preserved_in_order() {
        let mut s = sched2();
        s.book(NodeId::new(1), Time::ZERO, 1, tag(0, 0)).unwrap();
        s.book(NodeId::new(0), Time::ZERO, 1, tag(1, 1)).unwrap();
        let tags: Vec<_> = s.bookings().iter().map(|b| b.tag).collect();
        assert_eq!(tags, vec![tag(0, 0), tag(1, 1)]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use ftdes_model::architecture::Architecture;

    #[test]
    fn bookings_to_different_nodes_never_share_frames() {
        let arch = Architecture::with_node_count(3);
        let bus = BusConfig::initial(&arch, 4, Time::from_ms(1)).unwrap();
        let mut s = BusSchedule::new(bus);
        for n in 0..3u32 {
            s.book(
                NodeId::new(n),
                Time::ZERO,
                2,
                MessageTag::new(EdgeId::new(n), 0),
            )
            .unwrap();
        }
        for frame in s.medl() {
            // All messages of one frame must come from its sender's
            // slot (trivially: frames are keyed by slot).
            assert_eq!(frame.messages.len(), 1);
        }
        assert_eq!(s.medl().len(), 3);
    }

    #[test]
    fn heavy_congestion_spills_over_rounds() {
        let arch = Architecture::with_node_count(1);
        let bus = BusConfig::initial(&arch, 1, Time::from_ms(2)).unwrap();
        let mut s = BusSchedule::new(bus);
        for i in 0..5u32 {
            let b = s
                .book(
                    NodeId::new(0),
                    Time::ZERO,
                    1,
                    MessageTag::new(EdgeId::new(i), 0),
                )
                .unwrap();
            assert_eq!(b.round, u64::from(i), "one 1-byte frame per round");
        }
        assert_eq!(s.rounds_used(), 5);
        assert!((s.utilisation() - 1.0).abs() < 1e-9, "fully packed");
    }
}
