//! # ftdes-ttp
//!
//! A logical model of the time-triggered protocol (TTP) bus used by
//! the DATE 2005 fault-tolerance design-optimization paper
//! (Izosimov, Pop, Eles, Peng): static TDMA slots, rounds, frame
//! packing and the message descriptor list (MEDL).
//!
//! The model is valid for any TDMA bus that schedules messages
//! statically from a schedule table (the paper explicitly includes
//! SAFEbus): it exposes exactly the timing the scheduler needs —
//! *when is the next slot of node `Ni` after instant `t`, and does
//! the frame still have room?*
//!
//! # Examples
//!
//! ```
//! use ftdes_model::architecture::Architecture;
//! use ftdes_model::time::Time;
//! use ftdes_ttp::{BusConfig, BusSchedule, MessageTag};
//!
//! let arch = Architecture::with_node_count(4);
//! let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500))?;
//! let mut schedule = BusSchedule::new(bus);
//! let booked = schedule.book(2.into(), Time::from_ms(37), 3, MessageTag::new(0.into(), 0))?;
//! // N2 owns the third slot: first occurrence starting at/after 37 ms
//! // is in round 0 (slot start 20 ms < 37 ms, so round 1 at 60 ms).
//! assert_eq!(booked.start, Time::from_ms(60));
//! # Ok::<(), ftdes_ttp::error::TtpError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod error;
pub mod medl;

pub use config::{BusConfig, DEFAULT_BYTE_TIME};
pub use error::TtpError;
pub use medl::{BookedMessage, BusSchedule, MedlEntry, MessageTag};
