//! Error types for the TTP bus model.

use std::error::Error;
use std::fmt;

use ftdes_model::ids::NodeId;

/// Errors raised by bus configuration and message scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TtpError {
    /// The architecture has no nodes, so no TDMA round can exist.
    EmptyArchitecture,
    /// Slot capacity or byte time of zero.
    ZeroSlot,
    /// A node owns more than one slot in the round (the TTP allows
    /// only one slot per node per round).
    DuplicateSlotOwner {
        /// The offending node.
        node: NodeId,
    },
    /// A node of the architecture owns no slot and could never
    /// transmit.
    MissingSlotOwner {
        /// The slot-less node.
        node: NodeId,
    },
    /// A message does not fit in a frame even when alone (its size
    /// exceeds the slot capacity).
    MessageExceedsSlot {
        /// Message size in bytes.
        size: u32,
        /// Slot capacity in bytes.
        capacity: u32,
    },
}

impl fmt::Display for TtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TtpError::EmptyArchitecture => write!(f, "bus configuration needs at least one node"),
            TtpError::ZeroSlot => write!(f, "slot capacity and byte time must be non-zero"),
            TtpError::DuplicateSlotOwner { node } => {
                write!(f, "node {node} owns more than one slot in the TDMA round")
            }
            TtpError::MissingSlotOwner { node } => {
                write!(f, "node {node} owns no slot in the TDMA round")
            }
            TtpError::MessageExceedsSlot { size, capacity } => {
                write!(
                    f,
                    "message of {size} bytes exceeds slot capacity of {capacity} bytes"
                )
            }
        }
    }
}

impl Error for TtpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_meaningful() {
        let err = TtpError::MessageExceedsSlot {
            size: 8,
            capacity: 4,
        };
        assert!(err.to_string().contains("8 bytes"));
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TtpError>();
    }
}
