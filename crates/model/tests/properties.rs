//! Property-based tests of the model crate's invariants.

use proptest::prelude::*;

use ftdes_model::prelude::*;
use ftdes_model::time::lcm;

/// Random DAG built by only adding forward edges (i -> j with i < j).
fn arb_dag() -> impl Strategy<Value = ProcessGraph> {
    (
        2usize..20,
        proptest::collection::vec((0usize..400, 0usize..400, 1u32..5), 0..40),
    )
        .prop_map(|(n, raw_edges)| {
            let mut g = ProcessGraph::new(GraphId::new(0));
            let ps = g.add_processes(n);
            for (a, b, bytes) in raw_edges {
                let (a, b) = (a % n, b % n);
                if a < b {
                    let _ = g.add_edge(ps[a], ps[b], Message::new(bytes));
                }
            }
            g
        })
}

proptest! {
    /// Forward-edge graphs are always acyclic, and the topological
    /// order respects every edge.
    #[test]
    fn topological_order_is_consistent(g in arb_dag()) {
        let order = g.topological_order().expect("forward edges are acyclic");
        prop_assert_eq!(order.len(), g.process_count());
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.process_count()];
            for (i, &p) in order.iter().enumerate() { pos[p.index()] = i; }
            pos
        };
        for e in g.edges() {
            prop_assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    /// Sources have no predecessors; sinks no successors; depth is
    /// bounded by the vertex count.
    #[test]
    fn sources_sinks_depth(g in arb_dag()) {
        for s in g.sources() {
            prop_assert_eq!(g.incoming(s).len(), 0);
        }
        for s in g.sinks() {
            prop_assert_eq!(g.outgoing(s).len(), 0);
        }
        let depth = g.depth().unwrap();
        prop_assert!(depth >= 1 && depth <= g.process_count());
    }

    /// Merging duplicates each graph exactly hyperperiod/period times
    /// and offsets releases by whole periods.
    #[test]
    fn merge_counts_and_offsets(
        g in arb_dag(),
        period_ms in 1u64..50,
        factor in 1u64..5,
    ) {
        let period = Time::from_ms(period_ms);
        let other_period = Time::from_ms(period_ms * factor);
        let single = ProcessGraph::new(GraphId::new(1));
        let mut single = single;
        single.add_process();
        let mut app = Application::new();
        let n = g.process_count();
        let edges = g.edge_count();
        app.push(GraphSpec::new(g, period, period));
        app.push(GraphSpec::new(single, other_period, other_period));
        let merged = MergedApplication::merge(&app).unwrap();
        let hyper = merged.hyperperiod();
        let activations = (hyper / period) as usize;
        let other_activations = (hyper / other_period) as usize;
        prop_assert_eq!(
            merged.process_count(),
            n * activations + other_activations
        );
        prop_assert_eq!(
            merged.graph().edge_count(),
            edges * activations
        );
        for p in merged.graph().processes() {
            let o = merged.origin(p.id);
            if o.graph_index == 0 {
                let offset = period * u64::from(o.activation);
                prop_assert!(p.release >= offset);
                prop_assert!(p.deadline.unwrap() <= offset + period);
            }
        }
    }

    /// `lcm` is commutative, associative enough for our use, and a
    /// multiple of both arguments.
    #[test]
    fn lcm_properties(a in 1u64..1_000, b in 1u64..1_000) {
        let ta = Time::from_us(a);
        let tb = Time::from_us(b);
        let l = lcm(ta, tb);
        prop_assert_eq!(l, lcm(tb, ta));
        prop_assert_eq!(l.as_us() % a, 0);
        prop_assert_eq!(l.as_us() % b, 0);
        prop_assert!(l >= ta.max(tb));
    }

    /// Policy algebra: r + e = k + 1 for every admissible level, and
    /// the primary carries the whole budget.
    #[test]
    fn policy_budget_split(k in 0u32..12, level_seed in 0u32..12) {
        let fm = FaultModel::new(k, Time::from_ms(1));
        let r = 1 + level_seed % fm.max_replicas();
        let p = FtPolicy::new(ftdes_model::ids::ProcessId::new(0), r, &fm).unwrap();
        prop_assert_eq!(p.replicas() + p.reexecutions(), k + 1);
        let total: u32 = (0..r).map(|i| p.budget_of_instance(i)).sum();
        prop_assert_eq!(total, p.reexecutions());
        prop_assert_eq!(p.budget_of_instance(0), p.reexecutions());
    }

    /// Serde round-trip of the central model types.
    #[test]
    fn serde_round_trips(g in arb_dag(), k in 0u32..5) {
        let json = serde_json::to_string(&g).unwrap();
        let back: ProcessGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &g);

        let fm = FaultModel::new(k, Time::from_ms(3));
        let json = serde_json::to_string(&fm).unwrap();
        let back: FaultModel = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, fm);
    }
}
