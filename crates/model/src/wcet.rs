//! Worst-case execution time tables (paper §3).
//!
//! Each process `Pi` can potentially be mapped on a subset `NPi ⊆ N`
//! of the nodes; for each eligible node the worst-case execution time
//! `C_Pi^Nk` is known. Ineligible (process, node) pairs are the `X`
//! entries of the paper's tables (e.g. Fig. 5 where `P1` cannot run
//! on `N2`).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::architecture::Architecture;
use crate::error::ModelError;
use crate::ids::{NodeId, ProcessId};
use crate::time::Time;

/// The WCET table `C: (process, node) -> time`.
///
/// Sparse: missing entries mean the process cannot execute on that
/// node.
///
/// # Examples
///
/// ```
/// use ftdes_model::wcet::WcetTable;
/// use ftdes_model::time::Time;
///
/// // Paper Fig. 3: P1 runs in 40 ms on N1 and 50 ms on N2.
/// let mut wcet = WcetTable::new();
/// wcet.set(0.into(), 0.into(), Time::from_ms(40));
/// wcet.set(0.into(), 1.into(), Time::from_ms(50));
/// assert_eq!(wcet.get(0.into(), 0.into()), Some(Time::from_ms(40)));
/// assert_eq!(wcet.eligible_nodes(0.into()).count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WcetTable {
    entries: BTreeMap<(ProcessId, NodeId), Time>,
}

impl WcetTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the WCET of `process` on `node`, replacing any previous
    /// entry. Returns the previous value, if any.
    pub fn set(&mut self, process: ProcessId, node: NodeId, wcet: Time) -> Option<Time> {
        self.entries.insert((process, node), wcet)
    }

    /// Removes eligibility of `process` on `node`.
    pub fn clear(&mut self, process: ProcessId, node: NodeId) -> Option<Time> {
        self.entries.remove(&(process, node))
    }

    /// Returns the WCET of `process` on `node`, or `None` if the
    /// process cannot run there.
    #[must_use]
    pub fn get(&self, process: ProcessId, node: NodeId) -> Option<Time> {
        self.entries.get(&(process, node)).copied()
    }

    /// Returns `true` if `process` may execute on `node`.
    #[must_use]
    pub fn is_eligible(&self, process: ProcessId, node: NodeId) -> bool {
        self.entries.contains_key(&(process, node))
    }

    /// Iterates over the nodes `process` may execute on, with the
    /// corresponding WCETs, in node order.
    pub fn eligible_nodes(&self, process: ProcessId) -> impl Iterator<Item = (NodeId, Time)> + '_ {
        self.entries
            .range((process, NodeId::new(0))..=(process, NodeId::new(u32::MAX)))
            .map(|(&(_, n), &t)| (n, t))
    }

    /// Iterates over every `(process, node, wcet)` entry in key
    /// order — the whole-table view problem deltas (node kills,
    /// degradations, rescales) transform.
    pub fn entries(&self) -> impl Iterator<Item = (ProcessId, NodeId, Time)> + '_ {
        self.entries.iter().map(|(&(p, n), &t)| (p, n, t))
    }

    /// The average WCET of `process` over its eligible nodes — the
    /// node-independent estimate used by the partial-critical-path
    /// priority function.
    ///
    /// Returns `None` when the process is unmappable.
    #[must_use]
    pub fn average(&self, process: ProcessId) -> Option<Time> {
        let mut sum = Time::ZERO;
        let mut n = 0u64;
        for (_, t) in self.eligible_nodes(process) {
            sum += t;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n)
        }
    }

    /// The smallest WCET of `process` over its eligible nodes.
    #[must_use]
    pub fn best(&self, process: ProcessId) -> Option<(NodeId, Time)> {
        self.eligible_nodes(process).min_by_key(|&(_, t)| t)
    }

    /// Number of entries in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Checks that every process in `processes` has at least one
    /// eligible node and every referenced node exists.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unmappable`] or [`ModelError::UnknownNode`].
    pub fn validate(
        &self,
        processes: impl IntoIterator<Item = ProcessId>,
        arch: &Architecture,
    ) -> Result<(), ModelError> {
        for &(_, node) in self.entries.keys() {
            if !arch.contains(node) {
                return Err(ModelError::UnknownNode { node });
            }
        }
        for p in processes {
            if self.eligible_nodes(p).next().is_none() {
                return Err(ModelError::Unmappable { process: p });
            }
        }
        Ok(())
    }
}

impl FromIterator<(ProcessId, NodeId, Time)> for WcetTable {
    fn from_iter<I: IntoIterator<Item = (ProcessId, NodeId, Time)>>(iter: I) -> Self {
        let mut table = WcetTable::new();
        for (p, n, t) in iter {
            table.set(p, n, t);
        }
        table
    }
}

impl Extend<(ProcessId, NodeId, Time)> for WcetTable {
    fn extend<I: IntoIterator<Item = (ProcessId, NodeId, Time)>>(&mut self, iter: I) {
        for (p, n, t) in iter {
            self.set(p, n, t);
        }
    }
}

/// Read access to WCET entries — the interface the scheduler's
/// expansion hot path compiles against.
///
/// Implemented by the sparse [`WcetTable`] (the mutable, serializable
/// store) and by the dense [`DenseWcet`] matrix (the branch-free
/// front-end the optimizer queries thousands of times per candidate
/// evaluation).
pub trait WcetLookup {
    /// The WCET of `process` on `node`, or `None` when the process
    /// cannot run there.
    fn lookup(&self, process: ProcessId, node: NodeId) -> Option<Time>;
}

impl WcetLookup for WcetTable {
    fn lookup(&self, process: ProcessId, node: NodeId) -> Option<Time> {
        self.get(process, node)
    }
}

/// A dense `n_processes × n_nodes` WCET matrix.
///
/// [`WcetTable`] stores entries in a `BTreeMap` keyed by
/// `(ProcessId, NodeId)` — ideal for sparse mutation and ordered
/// iteration, but every lookup walks the tree. Design expansion asks
/// for one entry per replica instance on the optimizer's hot path, so
/// the search front-loads the table into this row-major matrix once
/// per problem: a lookup becomes one multiply-add and one load.
///
/// Entries outside the matrix dimensions (processes or nodes the
/// problem does not know) answer `None`, exactly like a missing
/// sparse entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseWcet {
    processes: usize,
    nodes: usize,
    cells: Vec<Option<Time>>,
}

impl DenseWcet {
    /// Densifies `table` over a `processes × nodes` grid.
    #[must_use]
    pub fn from_table(table: &WcetTable, processes: usize, nodes: usize) -> Self {
        let mut cells = vec![None; processes * nodes];
        for (&(p, n), &t) in &table.entries {
            if p.index() < processes && n.index() < nodes {
                cells[p.index() * nodes + n.index()] = Some(t);
            }
        }
        DenseWcet {
            processes,
            nodes,
            cells,
        }
    }

    /// The WCET of `process` on `node`, or `None` if ineligible or
    /// out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, process: ProcessId, node: NodeId) -> Option<Time> {
        if process.index() >= self.processes || node.index() >= self.nodes {
            return None;
        }
        self.cells[process.index() * self.nodes + node.index()]
    }
}

impl WcetLookup for DenseWcet {
    #[inline]
    fn lookup(&self, process: ProcessId, node: NodeId) -> Option<Time> {
        self.get(process, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_table() -> WcetTable {
        // Paper Fig. 5: P1 40/X, P2 60/60, P3 40/70, P4 X/70.
        let ms = Time::from_ms;
        [
            (ProcessId::new(0), NodeId::new(0), ms(40)),
            (ProcessId::new(1), NodeId::new(0), ms(60)),
            (ProcessId::new(1), NodeId::new(1), ms(60)),
            (ProcessId::new(2), NodeId::new(0), ms(40)),
            (ProcessId::new(2), NodeId::new(1), ms(70)),
            (ProcessId::new(3), NodeId::new(1), ms(70)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn sparse_eligibility() {
        let t = fig5_table();
        assert!(t.is_eligible(ProcessId::new(0), NodeId::new(0)));
        assert!(!t.is_eligible(ProcessId::new(0), NodeId::new(1)));
        assert!(!t.is_eligible(ProcessId::new(3), NodeId::new(0)));
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn eligible_nodes_in_node_order() {
        let t = fig5_table();
        let nodes: Vec<_> = t.eligible_nodes(ProcessId::new(2)).collect();
        assert_eq!(
            nodes,
            vec![
                (NodeId::new(0), Time::from_ms(40)),
                (NodeId::new(1), Time::from_ms(70))
            ]
        );
    }

    #[test]
    fn average_and_best() {
        let t = fig5_table();
        assert_eq!(t.average(ProcessId::new(2)), Some(Time::from_ms(55)));
        assert_eq!(
            t.best(ProcessId::new(2)),
            Some((NodeId::new(0), Time::from_ms(40)))
        );
        assert_eq!(t.average(ProcessId::new(9)), None);
    }

    #[test]
    fn validate_detects_unmappable() {
        let t = fig5_table();
        let arch = Architecture::with_node_count(2);
        let all = (0..4).map(ProcessId::new);
        assert!(t.validate(all, &arch).is_ok());
        let err = t.validate([ProcessId::new(4)], &arch).unwrap_err();
        assert!(matches!(err, ModelError::Unmappable { .. }));
    }

    #[test]
    fn validate_detects_unknown_node() {
        let t = fig5_table();
        let arch = Architecture::with_node_count(1); // N1 missing
        let err = t.validate([ProcessId::new(0)], &arch).unwrap_err();
        assert!(matches!(err, ModelError::UnknownNode { .. }));
    }

    #[test]
    fn dense_matches_sparse() {
        let t = fig5_table();
        let dense = DenseWcet::from_table(&t, 4, 2);
        for p in 0..5u32 {
            for n in 0..3u32 {
                assert_eq!(
                    dense.get(ProcessId::new(p), NodeId::new(n)),
                    t.get(ProcessId::new(p), NodeId::new(n)),
                    "P{p}/N{n} dense front-end diverged"
                );
                assert_eq!(
                    dense.lookup(ProcessId::new(p), NodeId::new(n)),
                    t.lookup(ProcessId::new(p), NodeId::new(n))
                );
            }
        }
    }

    #[test]
    fn dense_out_of_range_is_ineligible() {
        let t = fig5_table();
        // Densified over a grid smaller than the table: dropped
        // entries read as ineligible, never as stale values.
        let dense = DenseWcet::from_table(&t, 2, 1);
        assert_eq!(
            dense.get(ProcessId::new(1), NodeId::new(0)),
            t.get(ProcessId::new(1), NodeId::new(0))
        );
        assert_eq!(dense.get(ProcessId::new(1), NodeId::new(1)), None);
        assert_eq!(dense.get(ProcessId::new(3), NodeId::new(1)), None);
    }

    #[test]
    fn set_replaces() {
        let mut t = WcetTable::new();
        assert_eq!(
            t.set(ProcessId::new(0), NodeId::new(0), Time::from_ms(10)),
            None
        );
        assert_eq!(
            t.set(ProcessId::new(0), NodeId::new(0), Time::from_ms(20)),
            Some(Time::from_ms(10))
        );
        assert_eq!(
            t.clear(ProcessId::new(0), NodeId::new(0)),
            Some(Time::from_ms(20))
        );
        assert!(t.is_empty());
    }
}
