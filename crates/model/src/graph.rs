//! Directed acyclic process graphs (paper §3).
//!
//! An application is modelled as a set of directed, acyclic process
//! graphs `G(V, E)`. Each vertex is a process; an edge `eij` from `Pi`
//! to `Pj` means the output of `Pi` is an input of `Pj` and carries a
//! [`Message`] when the two endpoints end up on different nodes.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{EdgeId, GraphId, ProcessId};
use crate::time::Time;

/// A message carried by a data-dependency edge.
///
/// Only the size is modelled (paper §3: "the size of the messages is
/// given"); the transmission time is derived by the TTP bus model
/// from the size and the slot configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    /// Payload size in bytes (paper experiments: 1–4 bytes).
    pub size: u32,
}

impl Message {
    /// Creates a message of `size` bytes.
    #[must_use]
    pub const fn new(size: u32) -> Self {
        Message { size }
    }
}

/// A process (vertex) of a process graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Identifier, dense within the owning graph.
    pub id: ProcessId,
    /// Human-readable name; defaults to `P<i>`.
    pub name: String,
    /// Earliest release time relative to the graph activation
    /// (paper §3: "processes can have associated individual release
    /// times"). Zero for most processes.
    pub release: Time,
    /// Optional individual deadline relative to the graph activation.
    pub deadline: Option<Time>,
}

impl Process {
    /// Creates a process with default release (zero) and no
    /// individual deadline.
    #[must_use]
    pub fn new(id: ProcessId) -> Self {
        Process {
            id,
            name: format!("{id}"),
            release: Time::ZERO,
            deadline: None,
        }
    }

    /// Sets the name (builder style).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the release time (builder style).
    #[must_use]
    pub fn with_release(mut self, release: Time) -> Self {
        self.release = release;
        self
    }

    /// Sets an individual deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A data-dependency edge with its message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Identifier, dense within the owning graph.
    pub id: EdgeId,
    /// Producing process.
    pub from: ProcessId,
    /// Consuming process.
    pub to: ProcessId,
    /// The message exchanged if the endpoints are on different nodes.
    pub message: Message,
}

/// A directed acyclic process graph.
///
/// Construction is incremental ([`ProcessGraph::add_process`],
/// [`ProcessGraph::add_edge`]); [`ProcessGraph::validate`] checks the
/// structural invariants (acyclicity, no self-loops, no duplicate
/// edges).
///
/// # Examples
///
/// ```
/// use ftdes_model::graph::{Message, ProcessGraph};
///
/// // Application A2 of paper Fig. 3: P1 -> P2 -> P3.
/// let mut g = ProcessGraph::new(0.into());
/// let p1 = g.add_process();
/// let p2 = g.add_process();
/// let p3 = g.add_process();
/// g.add_edge(p1, p2, Message::new(4))?;
/// g.add_edge(p2, p3, Message::new(4))?;
/// g.validate()?;
/// assert_eq!(g.topological_order()?.len(), 3);
/// # Ok::<(), ftdes_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessGraph {
    id: GraphId,
    processes: Vec<Process>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per process (dense by process index).
    successors: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per process (dense by process index).
    predecessors: Vec<Vec<EdgeId>>,
}

impl ProcessGraph {
    /// Creates an empty graph with the given id.
    #[must_use]
    pub fn new(id: GraphId) -> Self {
        ProcessGraph {
            id,
            processes: Vec::new(),
            edges: Vec::new(),
            successors: Vec::new(),
            predecessors: Vec::new(),
        }
    }

    /// Returns the graph id.
    #[must_use]
    pub fn id(&self) -> GraphId {
        self.id
    }

    /// Adds a fresh process and returns its id.
    pub fn add_process(&mut self) -> ProcessId {
        let id = ProcessId::new(self.processes.len() as u32);
        self.processes.push(Process::new(id));
        self.successors.push(Vec::new());
        self.predecessors.push(Vec::new());
        id
    }

    /// Adds `n` fresh processes and returns their ids.
    pub fn add_processes(&mut self, n: usize) -> Vec<ProcessId> {
        (0..n).map(|_| self.add_process()).collect()
    }

    /// Adds a pre-built process description. The process id must be
    /// the next dense id.
    ///
    /// # Panics
    ///
    /// Panics if `process.id` is not the next dense index.
    pub fn push_process(&mut self, process: Process) -> ProcessId {
        assert_eq!(
            process.id.index(),
            self.processes.len(),
            "process ids must be dense and in insertion order"
        );
        let id = process.id;
        self.processes.push(process);
        self.successors.push(Vec::new());
        self.predecessors.push(Vec::new());
        id
    }

    /// Adds a data-dependency edge carrying `message`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownProcess`] for dangling endpoints,
    /// [`ModelError::SelfLoop`] if `from == to`, and
    /// [`ModelError::DuplicateEdge`] if the dependency already exists.
    pub fn add_edge(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        message: Message,
    ) -> Result<EdgeId, ModelError> {
        if from.index() >= self.processes.len() {
            return Err(ModelError::UnknownProcess { process: from });
        }
        if to.index() >= self.processes.len() {
            return Err(ModelError::UnknownProcess { process: to });
        }
        let id = EdgeId::new(self.edges.len() as u32);
        if from == to {
            return Err(ModelError::SelfLoop {
                edge: id,
                process: from,
            });
        }
        if self.successors[from.index()]
            .iter()
            .any(|&e| self.edges[e.index()].to == to)
        {
            return Err(ModelError::DuplicateEdge { from, to });
        }
        self.edges.push(Edge {
            id,
            from,
            to,
            message,
        });
        self.successors[from.index()].push(id);
        self.predecessors[to.index()].push(id);
        Ok(id)
    }

    /// Number of processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All processes in id order.
    #[must_use]
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// All edges in id order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Looks up a process.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    #[must_use]
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.index()]
    }

    /// Mutable access to a process (to set release/deadline/name).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn process_mut(&mut self, id: ProcessId) -> &mut Process {
        &mut self.processes[id.index()]
    }

    /// Looks up an edge.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Outgoing edges of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` does not belong to this graph.
    #[must_use]
    pub fn outgoing(&self, p: ProcessId) -> &[EdgeId] {
        &self.successors[p.index()]
    }

    /// Incoming edges of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` does not belong to this graph.
    #[must_use]
    pub fn incoming(&self, p: ProcessId) -> &[EdgeId] {
        &self.predecessors[p.index()]
    }

    /// Direct successors of `p` (deduplicated is unnecessary: the
    /// graph rejects duplicate edges).
    pub fn successors_of(&self, p: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        self.successors[p.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].to)
    }

    /// Direct predecessors of `p`.
    pub fn predecessors_of(&self, p: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        self.predecessors[p.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].from)
    }

    /// Processes without predecessors (graph sources).
    #[must_use]
    pub fn sources(&self) -> Vec<ProcessId> {
        self.processes
            .iter()
            .filter(|p| self.predecessors[p.id.index()].is_empty())
            .map(|p| p.id)
            .collect()
    }

    /// Processes without successors (graph sinks).
    #[must_use]
    pub fn sinks(&self) -> Vec<ProcessId> {
        self.processes
            .iter()
            .filter(|p| self.successors[p.id.index()].is_empty())
            .map(|p| p.id)
            .collect()
    }

    /// Computes a topological order of the processes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicGraph`] if the graph contains a
    /// cycle.
    pub fn topological_order(&self) -> Result<Vec<ProcessId>, ModelError> {
        let mut order = Vec::new();
        let mut in_deg = Vec::new();
        self.topological_order_into(&mut order, &mut in_deg)?;
        Ok(order)
    }

    /// [`ProcessGraph::topological_order`] writing into caller-owned
    /// buffers (`order` receives the result, `in_deg` is working
    /// memory) — schedulers on hot paths reuse them across calls.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicGraph`] if the graph contains a
    /// cycle.
    pub fn topological_order_into(
        &self,
        order: &mut Vec<ProcessId>,
        in_deg: &mut Vec<usize>,
    ) -> Result<(), ModelError> {
        let n = self.processes.len();
        in_deg.clear();
        in_deg.extend((0..n).map(|i| self.predecessors[i].len()));
        // `order` doubles as the BFS queue: processed entries stay.
        order.clear();
        order.extend(
            (0..n)
                .filter(|&i| in_deg[i] == 0)
                .map(|i| ProcessId::new(i as u32)),
        );
        let mut head = 0;
        while head < order.len() {
            let p = order[head];
            head += 1;
            for e in &self.successors[p.index()] {
                let s = self.edges[e.index()].to;
                in_deg[s.index()] -= 1;
                if in_deg[s.index()] == 0 {
                    order.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(())
        } else {
            Err(ModelError::CyclicGraph { graph: self.id })
        }
    }

    /// Validates the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicGraph`] on cycles and
    /// [`ModelError::Empty`] on a graph without processes. Self-loops
    /// and duplicate edges are already rejected at insertion.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.processes.is_empty() {
            return Err(ModelError::Empty { what: "processes" });
        }
        self.topological_order().map(|_| ())
    }

    /// Returns `true` when the graph is *polar*: exactly one source
    /// and one sink (the paper's graphs are polar; the algorithms do
    /// not require it).
    #[must_use]
    pub fn is_polar(&self) -> bool {
        self.sources().len() == 1 && self.sinks().len() == 1
    }

    /// Returns the length (vertex count) of the longest path.
    ///
    /// Useful for characterising generated workloads.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicGraph`] if the graph is cyclic.
    pub fn depth(&self) -> Result<usize, ModelError> {
        let order = self.topological_order()?;
        let mut level = vec![1usize; self.processes.len()];
        for &p in &order {
            for s in self.successors_of(p).collect::<Vec<_>>() {
                level[s.index()] = level[s.index()].max(level[p.index()] + 1);
            }
        }
        Ok(level.into_iter().max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> ProcessGraph {
        // P0 -> P1, P0 -> P2, P1 -> P3, P2 -> P3 (paper Fig. 4 shape).
        let mut g = ProcessGraph::new(GraphId::new(0));
        let p: Vec<_> = g.add_processes(4);
        g.add_edge(p[0], p[1], Message::new(1)).unwrap();
        g.add_edge(p[0], p[2], Message::new(2)).unwrap();
        g.add_edge(p[1], p[3], Message::new(1)).unwrap();
        g.add_edge(p[2], p[3], Message::new(1)).unwrap();
        g
    }

    #[test]
    fn build_and_query_diamond() {
        let g = diamond();
        assert_eq!(g.process_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![ProcessId::new(0)]);
        assert_eq!(g.sinks(), vec![ProcessId::new(3)]);
        assert!(g.is_polar());
        assert_eq!(g.depth().unwrap(), 3);
        let succ: Vec<_> = g.successors_of(ProcessId::new(0)).collect();
        assert_eq!(succ, vec![ProcessId::new(1), ProcessId::new(2)]);
        let pred: Vec<_> = g.predecessors_of(ProcessId::new(3)).collect();
        assert_eq!(pred, vec![ProcessId::new(1), ProcessId::new(2)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order().unwrap();
        let pos = |p: ProcessId| order.iter().position(|&q| q == p).unwrap();
        for e in g.edges() {
            assert!(pos(e.from) < pos(e.to), "edge {} violated", e.id);
        }
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = ProcessGraph::new(GraphId::new(0));
        let p = g.add_process();
        let err = g.add_edge(p, p, Message::new(1)).unwrap_err();
        assert!(matches!(err, ModelError::SelfLoop { .. }));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = ProcessGraph::new(GraphId::new(0));
        let a = g.add_process();
        let b = g.add_process();
        g.add_edge(a, b, Message::new(1)).unwrap();
        let err = g.add_edge(a, b, Message::new(2)).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateEdge { .. }));
    }

    #[test]
    fn dangling_endpoint_rejected() {
        let mut g = ProcessGraph::new(GraphId::new(0));
        let a = g.add_process();
        let err = g
            .add_edge(a, ProcessId::new(9), Message::new(1))
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownProcess { .. }));
    }

    #[test]
    fn cycle_detected() {
        // Build a cycle by constructing edges through the public API:
        // a -> b, b -> c, c -> a.
        let mut g = ProcessGraph::new(GraphId::new(0));
        let a = g.add_process();
        let b = g.add_process();
        let c = g.add_process();
        g.add_edge(a, b, Message::new(1)).unwrap();
        g.add_edge(b, c, Message::new(1)).unwrap();
        g.add_edge(c, a, Message::new(1)).unwrap();
        assert!(matches!(g.validate(), Err(ModelError::CyclicGraph { .. })));
    }

    #[test]
    fn empty_graph_invalid() {
        let g = ProcessGraph::new(GraphId::new(0));
        assert!(matches!(g.validate(), Err(ModelError::Empty { .. })));
    }

    #[test]
    fn process_builder_setters() {
        let p = Process::new(ProcessId::new(0))
            .with_name("brake")
            .with_release(Time::from_ms(5))
            .with_deadline(Time::from_ms(100));
        assert_eq!(p.name, "brake");
        assert_eq!(p.release, Time::from_ms(5));
        assert_eq!(p.deadline, Some(Time::from_ms(100)));
    }

    #[test]
    fn non_polar_detected() {
        let mut g = ProcessGraph::new(GraphId::new(0));
        g.add_processes(2); // two isolated processes: two sources, two sinks
        assert!(!g.is_polar());
    }
}
