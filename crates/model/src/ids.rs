//! Strongly-typed identifiers for model entities.
//!
//! Newtypes ([`ProcessId`], [`NodeId`], [`GraphId`], [`EdgeId`])
//! prevent the classic index-confusion bugs when the optimizer juggles
//! processes, nodes and graphs at once (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index (useful for dense `Vec` storage).
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[must_use]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifies a process (a vertex `Pi` of a process graph).
    ///
    /// Process ids are dense per [`crate::application::Application`]:
    /// after graph merging all processes of the merged graph Γ are
    /// numbered `0..n`.
    ProcessId,
    "P"
);

id_type!(
    /// Identifies a computation node `Ni` of the architecture.
    NodeId,
    "N"
);

id_type!(
    /// Identifies one process graph `Gi` within an application.
    GraphId,
    "G"
);

id_type!(
    /// Identifies a data-dependency edge (and its message) `eij`.
    EdgeId,
    "m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(ProcessId::new(1).to_string(), "P1");
        assert_eq!(NodeId::new(2).to_string(), "N2");
        assert_eq!(GraphId::new(0).to_string(), "G0");
        assert_eq!(EdgeId::new(3).to_string(), "m3");
    }

    #[test]
    fn round_trips_index() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.raw(), 7);
        assert_eq!(ProcessId::from(7u32), p);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(0) < NodeId::new(1));
    }
}
