//! Transient fault model (paper §2.1).
//!
//! At most `k` transient faults may occur anywhere in the system
//! during one operation cycle of the application — several faults may
//! hit different processors simultaneously, and several faults may
//! hit the *same* processor (even the same process repeatedly). Each
//! fault costs a worst-case detection/recovery overhead `µ` from
//! detection until normal operation resumes, and is confined to a
//! single process.

use serde::{Deserialize, Serialize};

use crate::time::Time;

/// The transient fault hypothesis `(k, µ)`.
///
/// # Examples
///
/// ```
/// use ftdes_model::fault::FaultModel;
/// use ftdes_model::time::Time;
///
/// // The cruise-controller experiment: k = 2 faults of µ = 2 ms.
/// let fm = FaultModel::new(2, Time::from_ms(2));
/// assert_eq!(fm.k(), 2);
/// // A process tolerating all faults by pure replication needs k + 1
/// // replicas (Fig. 2b).
/// assert_eq!(fm.max_replicas(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultModel {
    k: u32,
    mu: Time,
}

impl FaultModel {
    /// Creates a fault model tolerating `k` transient faults of
    /// worst-case duration `mu` each.
    #[must_use]
    pub const fn new(k: u32, mu: Time) -> Self {
        FaultModel { k, mu }
    }

    /// A fault model with no faults — used to derive the non-fault-
    /// tolerant (NFT) reference implementation of the experiments.
    #[must_use]
    pub const fn none() -> Self {
        FaultModel {
            k: 0,
            mu: Time::ZERO,
        }
    }

    /// The maximum number of transient faults per operation cycle.
    #[must_use]
    pub const fn k(&self) -> u32 {
        self.k
    }

    /// The worst-case fault duration µ (detection + recovery switch).
    #[must_use]
    pub const fn mu(&self) -> Time {
        self.mu
    }

    /// Returns `true` if no fault tolerance is required.
    #[must_use]
    pub const fn is_fault_free(&self) -> bool {
        self.k == 0
    }

    /// The number of replicas needed to tolerate all `k` faults by
    /// space redundancy alone (paper Fig. 2b): `k + 1`.
    #[must_use]
    pub const fn max_replicas(&self) -> u32 {
        self.k + 1
    }

    /// Worst-case time to run a process of WCET `c` with `e`
    /// re-execution attempts all used (paper Fig. 2a): the initial
    /// run plus `e` times (µ + c).
    #[must_use]
    pub fn worst_case_reexecution(&self, c: Time, e: u32) -> Time {
        c + (self.mu + c) * u64::from(e)
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_worst_case() {
        // C1 = 30 ms, k = 2, µ = 10 ms => P1, P1/2, P1/3 finish at 110 ms.
        let fm = FaultModel::new(2, Time::from_ms(10));
        assert_eq!(
            fm.worst_case_reexecution(Time::from_ms(30), 2),
            Time::from_ms(110)
        );
    }

    #[test]
    fn none_is_fault_free() {
        let fm = FaultModel::none();
        assert!(fm.is_fault_free());
        assert_eq!(fm.max_replicas(), 1);
        assert_eq!(fm, FaultModel::default());
        assert_eq!(
            fm.worst_case_reexecution(Time::from_ms(30), 0),
            Time::from_ms(30)
        );
    }

    #[test]
    fn accessors() {
        let fm = FaultModel::new(3, Time::from_ms(5));
        assert_eq!(fm.k(), 3);
        assert_eq!(fm.mu(), Time::from_ms(5));
        assert!(!fm.is_fault_free());
    }
}
