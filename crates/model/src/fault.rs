//! Transient fault model (paper §2.1, checkpointing per the TVLSI
//! follow-up).
//!
//! At most `k` transient faults may occur anywhere in the system
//! during one operation cycle of the application — several faults may
//! hit different processors simultaneously, and several faults may
//! hit the *same* processor (even the same process repeatedly). Each
//! fault costs a worst-case detection/recovery overhead `µ` from
//! detection until normal operation resumes, and is confined to a
//! single process.
//!
//! # Checkpointing (`χ`)
//!
//! The paper family's follow-up (Pop/Izosimov/Eles/Peng, TVLSI 2009)
//! adds **checkpointing with rollback recovery** as the third
//! fault-tolerance technique beside re-execution and replication. A
//! process may save its state at `n − 1` evenly spaced checkpoints,
//! splitting its execution into `n` segments; each save costs the
//! checkpointing overhead `χ`. A fault then rolls the process back to
//! the latest save and re-runs only the failed segment:
//!
//! * fault-free execution grows to `C + χ·(n − 1)`
//!   ([`FaultModel::checkpointed_exec`]),
//! * the worst-case marginal cost of one fault drops from `C + µ` to
//!   `⌈C/n⌉ + χ + µ` ([`FaultModel::worst_case_recovery`] plus `µ`):
//!   the longest segment is re-run and its ending checkpoint
//!   re-established.
//!
//! With `n = 1` (no checkpoints) both formulas collapse to the
//! paper's original re-execution accounting, and `χ` defaults to zero
//! so existing `(k, µ)` models behave bit-identically.

use serde::{Deserialize, Serialize};

use crate::time::Time;

/// The transient fault hypothesis `(k, µ, χ)`.
///
/// # Examples
///
/// ```
/// use ftdes_model::fault::FaultModel;
/// use ftdes_model::time::Time;
///
/// // The cruise-controller experiment: k = 2 faults of µ = 2 ms.
/// let fm = FaultModel::new(2, Time::from_ms(2));
/// assert_eq!(fm.k(), 2);
/// // A process tolerating all faults by pure replication needs k + 1
/// // replicas (Fig. 2b).
/// assert_eq!(fm.max_replicas(), 3);
/// // Checkpointing: with χ = 1 ms, a 30 ms process split into 3
/// // segments recovers a fault in 10 + 1 ms instead of 30 ms.
/// let fm = fm.with_checkpoint_overhead(Time::from_ms(1));
/// assert_eq!(fm.worst_case_recovery(Time::from_ms(30), 3), Time::from_ms(11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultModel {
    k: u32,
    mu: Time,
    /// Checkpointing overhead χ (cost of saving one checkpoint).
    chi: Time,
}

impl FaultModel {
    /// Creates a fault model tolerating `k` transient faults of
    /// worst-case duration `mu` each. The checkpointing overhead `χ`
    /// defaults to zero; set it with
    /// [`FaultModel::with_checkpoint_overhead`].
    #[must_use]
    pub const fn new(k: u32, mu: Time) -> Self {
        FaultModel {
            k,
            mu,
            chi: Time::ZERO,
        }
    }

    /// A fault model with no faults — used to derive the non-fault-
    /// tolerant (NFT) reference implementation of the experiments.
    #[must_use]
    pub const fn none() -> Self {
        FaultModel {
            k: 0,
            mu: Time::ZERO,
            chi: Time::ZERO,
        }
    }

    /// Sets the checkpointing overhead `χ` (builder style).
    #[must_use]
    pub const fn with_checkpoint_overhead(mut self, chi: Time) -> Self {
        self.chi = chi;
        self
    }

    /// The maximum number of transient faults per operation cycle.
    #[must_use]
    pub const fn k(&self) -> u32 {
        self.k
    }

    /// The worst-case fault duration µ (detection + recovery switch).
    #[must_use]
    pub const fn mu(&self) -> Time {
        self.mu
    }

    /// The checkpointing overhead χ (one state save).
    #[must_use]
    pub const fn chi(&self) -> Time {
        self.chi
    }

    /// Returns `true` if no fault tolerance is required.
    #[must_use]
    pub const fn is_fault_free(&self) -> bool {
        self.k == 0
    }

    /// The number of replicas needed to tolerate all `k` faults by
    /// space redundancy alone (paper Fig. 2b): `k + 1`.
    #[must_use]
    pub const fn max_replicas(&self) -> u32 {
        self.k + 1
    }

    /// Worst-case time to run a process of WCET `c` with `e`
    /// re-execution attempts all used (paper Fig. 2a): the initial
    /// run plus `e` times (µ + c).
    #[must_use]
    pub fn worst_case_reexecution(&self, c: Time, e: u32) -> Time {
        c + (self.mu + c) * u64::from(e)
    }

    /// Fault-free execution time of a process of WCET `c` split into
    /// `n` checkpointed segments: the `n − 1` interior state saves
    /// cost `χ` each. `n ≤ 1` means no checkpointing (plain `c`).
    #[must_use]
    pub fn checkpointed_exec(&self, c: Time, n: u32) -> Time {
        if n <= 1 {
            return c;
        }
        c + self.chi * u64::from(n - 1)
    }

    /// The worst-case per-fault rollback cost (excluding `µ`) of a
    /// process of WCET `c` with `n` checkpointed segments: the
    /// longest segment (`⌈c/n⌉`) is re-run and its ending checkpoint
    /// re-established (`+ χ`, only when checkpoints exist at all).
    /// For `n ≤ 1` this is the full re-execution `c` of the paper's
    /// original model.
    ///
    /// This value dominates [`FaultModel::segment_rerun`] over every
    /// segment, which is what makes the scheduler's analytic bounds
    /// sound against the simulator's segment-level rollback replay.
    #[must_use]
    pub fn worst_case_recovery(&self, c: Time, n: u32) -> Time {
        if n <= 1 {
            return c;
        }
        Time::from_us(c.as_us().div_ceil(u64::from(n))) + self.chi
    }

    /// Length of segment `s` (0-based) of a process of WCET `c` split
    /// into `n` segments: `c` is divided as evenly as possible, the
    /// first `c mod n` segments getting the extra microsecond.
    #[must_use]
    pub fn segment_length(c: Time, n: u32, s: u32) -> Time {
        let n = u64::from(n.max(1));
        let s = u64::from(s).min(n - 1);
        let base = c.as_us() / n;
        let extra = u64::from(s < c.as_us() % n);
        Time::from_us(base + extra)
    }

    /// The realized rollback cost (excluding `µ`) of a fault striking
    /// segment `s` of a process of WCET `c` with `n` segments: the
    /// segment is re-run, and interior segments (`s < n − 1`)
    /// additionally re-establish their ending checkpoint (`+ χ`).
    /// Always `≤` [`FaultModel::worst_case_recovery`]`(c, n)`.
    #[must_use]
    pub fn segment_rerun(&self, c: Time, n: u32, s: u32) -> Time {
        if n <= 1 {
            return c;
        }
        let s = s.min(n - 1);
        let save = if s < n - 1 { self.chi } else { Time::ZERO };
        Self::segment_length(c, n, s) + save
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_worst_case() {
        // C1 = 30 ms, k = 2, µ = 10 ms => P1, P1/2, P1/3 finish at 110 ms.
        let fm = FaultModel::new(2, Time::from_ms(10));
        assert_eq!(
            fm.worst_case_reexecution(Time::from_ms(30), 2),
            Time::from_ms(110)
        );
    }

    #[test]
    fn none_is_fault_free() {
        let fm = FaultModel::none();
        assert!(fm.is_fault_free());
        assert_eq!(fm.max_replicas(), 1);
        assert_eq!(fm, FaultModel::default());
        assert_eq!(
            fm.worst_case_reexecution(Time::from_ms(30), 0),
            Time::from_ms(30)
        );
    }

    #[test]
    fn accessors() {
        let fm = FaultModel::new(3, Time::from_ms(5));
        assert_eq!(fm.k(), 3);
        assert_eq!(fm.mu(), Time::from_ms(5));
        assert_eq!(fm.chi(), Time::ZERO);
        assert!(!fm.is_fault_free());
        let cp = fm.with_checkpoint_overhead(Time::from_ms(1));
        assert_eq!(cp.chi(), Time::from_ms(1));
        assert_eq!((cp.k(), cp.mu()), (fm.k(), fm.mu()));
    }

    #[test]
    fn checkpointed_exec_adds_interior_saves() {
        let fm = FaultModel::new(2, Time::from_ms(10)).with_checkpoint_overhead(Time::from_ms(1));
        let c = Time::from_ms(30);
        assert_eq!(fm.checkpointed_exec(c, 1), c, "n = 1: no overhead");
        assert_eq!(fm.checkpointed_exec(c, 3), Time::from_ms(32));
        // χ = 0 keeps the execution time regardless of n.
        let free = FaultModel::new(2, Time::from_ms(10));
        assert_eq!(free.checkpointed_exec(c, 5), c);
    }

    #[test]
    fn recovery_shrinks_with_segments() {
        let fm = FaultModel::new(2, Time::from_ms(10)).with_checkpoint_overhead(Time::from_ms(1));
        let c = Time::from_ms(30);
        assert_eq!(fm.worst_case_recovery(c, 1), c, "n = 1: full re-run");
        assert_eq!(fm.worst_case_recovery(c, 3), Time::from_ms(11));
        // Indivisible WCETs round the segment up: ⌈31000/3⌉ + 1000.
        assert_eq!(
            fm.worst_case_recovery(Time::from_us(31_000), 3),
            Time::from_us(11_334)
        );
    }

    #[test]
    fn segment_lengths_partition_the_wcet() {
        let fm = FaultModel::new(1, Time::from_ms(5)).with_checkpoint_overhead(Time::from_us(100));
        let c = Time::from_us(31_000);
        for n in 1..=5u32 {
            let total: u64 = (0..n)
                .map(|s| FaultModel::segment_length(c, n, s).as_us())
                .sum();
            assert_eq!(total, c.as_us(), "n = {n}: segments partition C");
            for s in 0..n {
                assert!(
                    fm.segment_rerun(c, n, s) <= fm.worst_case_recovery(c, n),
                    "n = {n}, s = {s}: realized rollback exceeds the worst case"
                );
            }
        }
    }

    #[test]
    fn last_segment_rerun_skips_the_save() {
        let fm = FaultModel::new(1, Time::from_ms(5)).with_checkpoint_overhead(Time::from_ms(2));
        let c = Time::from_ms(30);
        // Interior segment: 10 + 2; final segment: 10 alone.
        assert_eq!(fm.segment_rerun(c, 3, 0), Time::from_ms(12));
        assert_eq!(fm.segment_rerun(c, 3, 2), Time::from_ms(10));
        // n = 1: the whole process, no save.
        assert_eq!(fm.segment_rerun(c, 1, 0), c);
    }
}
