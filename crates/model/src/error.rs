//! Error types for model construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::{EdgeId, GraphId, NodeId, ProcessId};

/// Errors raised while building or validating the application /
/// architecture model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A process graph contains a dependency cycle, violating the
    /// acyclicity requirement of the application model (paper §3).
    CyclicGraph {
        /// Graph that contains the cycle.
        graph: GraphId,
    },
    /// An edge references a process that does not exist in the graph.
    UnknownProcess {
        /// The dangling process reference.
        process: ProcessId,
    },
    /// A mapping or WCET entry references an unknown node.
    UnknownNode {
        /// The dangling node reference.
        node: NodeId,
    },
    /// An edge references itself (self-loop) which cannot model a
    /// data dependency.
    SelfLoop {
        /// The offending edge.
        edge: EdgeId,
        /// The process with the self-dependency.
        process: ProcessId,
    },
    /// Duplicate edge between the same pair of processes.
    DuplicateEdge {
        /// Source process.
        from: ProcessId,
        /// Destination process.
        to: ProcessId,
    },
    /// A process has no worst-case execution time on any node, making
    /// it impossible to map.
    Unmappable {
        /// The process without any eligible node.
        process: ProcessId,
    },
    /// A deadline exceeds the period of its graph, violating
    /// `DGi <= TGi` (paper §3).
    DeadlineExceedsPeriod {
        /// The offending graph.
        graph: GraphId,
    },
    /// A fault-tolerance policy is inconsistent with the fault model
    /// (e.g. more replicas than `k + 1`, or replicas on fewer distinct
    /// nodes than the replication level).
    InvalidPolicy {
        /// The process whose policy is invalid.
        process: ProcessId,
        /// Human-readable reason.
        reason: String,
    },
    /// A message is larger than the configured maximum frame size.
    MessageTooLarge {
        /// The offending edge / message.
        edge: EdgeId,
        /// The message size in bytes.
        size: u32,
        /// The maximum allowed size in bytes.
        max: u32,
    },
    /// The model is empty where content is required (no processes, no
    /// nodes, ...).
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// A [`crate::delta::ProblemDelta`] op is malformed (zero scale
    /// percent, arithmetic overflow, ...).
    InvalidDelta {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CyclicGraph { graph } => {
                write!(f, "process graph {graph} contains a dependency cycle")
            }
            ModelError::UnknownProcess { process } => {
                write!(f, "reference to unknown process {process}")
            }
            ModelError::UnknownNode { node } => write!(f, "reference to unknown node {node}"),
            ModelError::SelfLoop { edge, process } => {
                write!(f, "edge {edge} is a self-loop on process {process}")
            }
            ModelError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge from {from} to {to}")
            }
            ModelError::Unmappable { process } => {
                write!(f, "process {process} has no eligible node (empty WCET row)")
            }
            ModelError::DeadlineExceedsPeriod { graph } => {
                write!(f, "deadline of graph {graph} exceeds its period")
            }
            ModelError::InvalidPolicy { process, reason } => {
                write!(f, "invalid fault-tolerance policy for {process}: {reason}")
            }
            ModelError::MessageTooLarge { edge, size, max } => {
                write!(
                    f,
                    "message {edge} of {size} bytes exceeds maximum frame size {max}"
                )
            }
            ModelError::Empty { what } => write!(f, "model has no {what}"),
            ModelError::InvalidDelta { reason } => {
                write!(f, "invalid problem delta: {reason}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_punctuation() {
        let err = ModelError::CyclicGraph {
            graph: GraphId::new(0),
        };
        let msg = err.to_string();
        assert!(msg.starts_with("process graph"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }
}
