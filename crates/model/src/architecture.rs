//! Hardware architecture model (paper §2.1).
//!
//! The architecture is a set of nodes sharing a broadcast TTP bus.
//! Each node consists of a CPU and a communication controller; only
//! the identity and count of nodes matter to the optimization — the
//! timing behaviour of the bus lives in the `ftdes-ttp` crate and the
//! per-node execution speed is captured by the WCET table.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::NodeId;

/// A computation node of the distributed architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier, dense within the architecture.
    pub id: NodeId,
    /// Human-readable name (e.g. `"ETM"`, `"ABS"`, `"TCM"` for the
    /// cruise-controller example).
    pub name: String,
}

/// The set of nodes `N` connected by the TTP bus.
///
/// # Examples
///
/// ```
/// use ftdes_model::architecture::Architecture;
///
/// let arch = Architecture::with_node_count(4);
/// assert_eq!(arch.node_count(), 4);
/// assert_eq!(arch.node(1.into()).name, "N1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Architecture {
    nodes: Vec<Node>,
}

impl Architecture {
    /// Creates an architecture of `n` anonymous nodes named `N0..`.
    #[must_use]
    pub fn with_node_count(n: usize) -> Self {
        Architecture {
            nodes: (0..n)
                .map(|i| {
                    let id = NodeId::new(i as u32);
                    Node {
                        id,
                        name: format!("{id}"),
                    }
                })
                .collect(),
        }
    }

    /// Creates an architecture from named nodes (in slot order).
    #[must_use]
    pub fn with_names<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        Architecture {
            nodes: names
                .into_iter()
                .enumerate()
                .map(|(i, name)| Node {
                    id: NodeId::new(i as u32),
                    name: name.into(),
                })
                .collect(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes in id order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterates over node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId::new(i as u32))
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Validates the architecture (non-empty).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] if there are no nodes.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.nodes.is_empty() {
            return Err(ModelError::Empty { what: "nodes" });
        }
        Ok(())
    }

    /// Returns `true` if `id` refers to a node of this architecture.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_names() {
        let arch = Architecture::with_node_count(3);
        assert_eq!(arch.node(NodeId::new(0)).name, "N0");
        assert_eq!(arch.node(NodeId::new(2)).name, "N2");
        assert_eq!(arch.node_ids().count(), 3);
    }

    #[test]
    fn named_nodes_keep_order() {
        let arch = Architecture::with_names(["ETM", "ABS", "TCM"]);
        assert_eq!(arch.node_count(), 3);
        assert_eq!(arch.node(NodeId::new(1)).name, "ABS");
        assert!(arch.contains(NodeId::new(2)));
        assert!(!arch.contains(NodeId::new(3)));
    }

    #[test]
    fn empty_is_invalid() {
        let arch = Architecture::with_node_count(0);
        assert!(matches!(arch.validate(), Err(ModelError::Empty { .. })));
    }
}
