//! Merging an application into a single graph Γ (paper §5.1).
//!
//! Before list scheduling, all process graphs are merged into one
//! graph with a period equal to the LCM of the constituent periods:
//! a graph of period `T` is instantiated `H / T` times within the
//! hyper-period `H`, the `a`-th activation being released at `a · T`
//! and due at `a · T + D`.
//!
//! After merging, releases and deadlines are absolute offsets within
//! the hyper-period attached to the merged processes; downstream
//! crates (scheduler, optimizer) only ever see the merged graph.

use serde::{Deserialize, Serialize};

use crate::application::Application;
use crate::error::ModelError;
use crate::graph::ProcessGraph;
use crate::ids::{GraphId, ProcessId};
use crate::time::Time;
use crate::wcet::WcetTable;

/// Where a merged process came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessOrigin {
    /// Index of the graph spec within the application.
    pub graph_index: usize,
    /// Activation number within the hyper-period (0-based).
    pub activation: u32,
    /// Process id local to the original graph.
    pub local: ProcessId,
}

/// The merged application graph Γ with origin bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedApplication {
    graph: ProcessGraph,
    hyperperiod: Time,
    origins: Vec<ProcessOrigin>,
}

impl MergedApplication {
    /// Merges `app` into a single graph.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`Application::validate`].
    pub fn merge(app: &Application) -> Result<Self, ModelError> {
        app.validate()?;
        let hyperperiod = app.hyperperiod();
        let mut graph = ProcessGraph::new(GraphId::new(u32::MAX));
        let mut origins = Vec::new();

        for (graph_index, spec) in app.specs().iter().enumerate() {
            let activations = hyperperiod / spec.period;
            for activation in 0..activations {
                let offset = spec.period * activation;
                // Map local ids to fresh global ids for this activation.
                let mut global = Vec::with_capacity(spec.graph.process_count());
                for local in spec.graph.processes() {
                    let gid = graph.add_process();
                    origins.push(ProcessOrigin {
                        graph_index,
                        activation: activation as u32,
                        local: local.id,
                    });
                    let p = graph.process_mut(gid);
                    p.name = if activations > 1 {
                        format!("{}@{}", local.name, activation)
                    } else {
                        local.name.clone()
                    };
                    p.release = offset + local.release;
                    // The graph deadline applies to every process of the
                    // activation; an individual deadline tightens it.
                    let graph_dl = offset + spec.deadline;
                    p.deadline = Some(match local.deadline {
                        Some(d) => graph_dl.min(offset + d),
                        None => graph_dl,
                    });
                    global.push(gid);
                }
                for edge in spec.graph.edges() {
                    graph
                        .add_edge(
                            global[edge.from.index()],
                            global[edge.to.index()],
                            edge.message,
                        )
                        .expect("merged edge cannot duplicate or dangle");
                }
            }
        }
        Ok(MergedApplication {
            graph,
            hyperperiod,
            origins,
        })
    }

    /// The merged graph Γ.
    #[must_use]
    pub fn graph(&self) -> &ProcessGraph {
        &self.graph
    }

    /// The hyper-period (LCM of all constituent periods).
    #[must_use]
    pub fn hyperperiod(&self) -> Time {
        self.hyperperiod
    }

    /// The origin of a merged process.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a process of the merged graph.
    #[must_use]
    pub fn origin(&self, p: ProcessId) -> ProcessOrigin {
        self.origins[p.index()]
    }

    /// Number of processes in Γ.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.graph.process_count()
    }

    /// Builds the merged WCET table from per-graph tables (indexed by
    /// graph spec position): every activation of a process inherits
    /// the WCETs of its template.
    ///
    /// # Panics
    ///
    /// Panics if `tables` has fewer entries than the application has
    /// graphs.
    #[must_use]
    pub fn remap_wcet(&self, tables: &[WcetTable]) -> WcetTable {
        let mut merged = WcetTable::new();
        for (idx, origin) in self.origins.iter().enumerate() {
            let global = ProcessId::new(idx as u32);
            for (node, c) in tables[origin.graph_index].eligible_nodes(origin.local) {
                merged.set(global, node, c);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::GraphSpec;
    use crate::graph::Message;
    use crate::ids::NodeId;

    fn chain(id: u32, n: usize) -> ProcessGraph {
        let mut g = ProcessGraph::new(GraphId::new(id));
        let ps = g.add_processes(n);
        for w in ps.windows(2) {
            g.add_edge(w[0], w[1], Message::new(1)).unwrap();
        }
        g
    }

    #[test]
    fn single_graph_merge_is_identity_shaped() {
        let app = Application::single(chain(0, 3), Time::from_ms(100), Time::from_ms(90));
        let merged = MergedApplication::merge(&app).unwrap();
        assert_eq!(merged.process_count(), 3);
        assert_eq!(merged.graph().edge_count(), 2);
        assert_eq!(merged.hyperperiod(), Time::from_ms(100));
        assert_eq!(
            merged.graph().process(ProcessId::new(0)).deadline,
            Some(Time::from_ms(90))
        );
    }

    #[test]
    fn multi_period_duplicates_activations() {
        let mut app = Application::new();
        app.push(GraphSpec::new(
            chain(0, 2),
            Time::from_ms(20),
            Time::from_ms(15),
        ));
        app.push(GraphSpec::new(
            chain(1, 3),
            Time::from_ms(40),
            Time::from_ms(40),
        ));
        let merged = MergedApplication::merge(&app).unwrap();
        // Hyper-period 40: first graph twice (2x2 processes), second once (3).
        assert_eq!(merged.hyperperiod(), Time::from_ms(40));
        assert_eq!(merged.process_count(), 2 * 2 + 3);
        assert_eq!(merged.graph().edge_count(), 2 + 2);

        // Second activation of the first graph released at 20 ms and due 35 ms.
        let p = merged
            .graph()
            .processes()
            .iter()
            .find(|p| {
                let o = merged.origin(p.id);
                o.graph_index == 0 && o.activation == 1 && o.local == ProcessId::new(0)
            })
            .unwrap();
        assert_eq!(p.release, Time::from_ms(20));
        assert_eq!(p.deadline, Some(Time::from_ms(35)));
        assert!(p.name.contains("@1"));
    }

    #[test]
    fn individual_deadline_tightens_graph_deadline() {
        let mut g = chain(0, 2);
        let first = ProcessId::new(0);
        g.process_mut(first).deadline = Some(Time::from_ms(10));
        let app = Application::single(g, Time::from_ms(100), Time::from_ms(90));
        let merged = MergedApplication::merge(&app).unwrap();
        assert_eq!(
            merged.graph().process(first).deadline,
            Some(Time::from_ms(10))
        );
    }

    #[test]
    fn remap_wcet_copies_per_activation() {
        let mut app = Application::new();
        app.push(GraphSpec::new(
            chain(0, 1),
            Time::from_ms(10),
            Time::from_ms(10),
        ));
        app.push(GraphSpec::new(
            chain(1, 1),
            Time::from_ms(20),
            Time::from_ms(20),
        ));
        let merged = MergedApplication::merge(&app).unwrap();
        // Graph 0 activates twice, graph 1 once: 3 merged processes.
        let t0: WcetTable = [(ProcessId::new(0), NodeId::new(0), Time::from_ms(5))]
            .into_iter()
            .collect();
        let t1: WcetTable = [(ProcessId::new(0), NodeId::new(0), Time::from_ms(7))]
            .into_iter()
            .collect();
        let merged_wcet = merged.remap_wcet(&[t0, t1]);
        assert_eq!(merged_wcet.len(), 3);
        // Find the graph-1 process and check it got 7 ms.
        let g1p = (0..3)
            .map(ProcessId::new)
            .find(|&p| merged.origin(p).graph_index == 1)
            .unwrap();
        assert_eq!(merged_wcet.get(g1p, NodeId::new(0)), Some(Time::from_ms(7)));
    }

    #[test]
    fn merge_rejects_invalid_application() {
        let app = Application::new();
        assert!(MergedApplication::merge(&app).is_err());
    }
}
