//! Applications: sets of periodic process graphs (paper §3).
//!
//! All processes and messages of a graph `Gi` share the graph period
//! `TGi`; a deadline `DGi ≤ TGi` is imposed on the graph. Graphs with
//! different periods are combined by [`crate::merge`] into a single
//! merged graph Γ covering the hyper-period (LCM of all periods).

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::graph::ProcessGraph;
use crate::time::Time;

/// One process graph together with its period and deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// The process graph `Gi`.
    pub graph: ProcessGraph,
    /// Activation period `TGi`.
    pub period: Time,
    /// Relative deadline `DGi ≤ TGi` on every activation.
    pub deadline: Time,
}

impl GraphSpec {
    /// Creates a spec; validity (`deadline ≤ period`) is checked by
    /// [`Application::validate`].
    #[must_use]
    pub fn new(graph: ProcessGraph, period: Time, deadline: Time) -> Self {
        GraphSpec {
            graph,
            period,
            deadline,
        }
    }
}

/// An application `A`: a set of periodic process graphs.
///
/// # Examples
///
/// ```
/// use ftdes_model::application::Application;
/// use ftdes_model::graph::{Message, ProcessGraph};
/// use ftdes_model::time::Time;
///
/// let mut g = ProcessGraph::new(0.into());
/// let a = g.add_process();
/// let b = g.add_process();
/// g.add_edge(a, b, Message::new(2))?;
/// let app = Application::single(g, Time::from_ms(200), Time::from_ms(160));
/// app.validate()?;
/// assert_eq!(app.process_count(), 2);
/// # Ok::<(), ftdes_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    specs: Vec<GraphSpec>,
}

impl Application {
    /// Creates an empty application.
    #[must_use]
    pub fn new() -> Self {
        Application { specs: Vec::new() }
    }

    /// Convenience constructor for the common single-graph case used
    /// throughout the paper's experiments.
    #[must_use]
    pub fn single(graph: ProcessGraph, period: Time, deadline: Time) -> Self {
        Application {
            specs: vec![GraphSpec::new(graph, period, deadline)],
        }
    }

    /// Adds a graph with its period and deadline.
    pub fn push(&mut self, spec: GraphSpec) {
        self.specs.push(spec);
    }

    /// The graph specs in insertion order.
    #[must_use]
    pub fn specs(&self) -> &[GraphSpec] {
        &self.specs
    }

    /// Total number of processes over all graphs (one activation each).
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.specs.iter().map(|s| s.graph.process_count()).sum()
    }

    /// The hyper-period: LCM of all graph periods.
    ///
    /// # Panics
    ///
    /// Panics if the application is empty or a period is zero; call
    /// [`Application::validate`] first.
    #[must_use]
    pub fn hyperperiod(&self) -> Time {
        self.specs
            .iter()
            .map(|s| s.period)
            .reduce(crate::time::lcm)
            .expect("hyperperiod of empty application")
    }

    /// Validates every graph and the period/deadline relations.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found: empty application,
    /// cyclic graphs, or `DGi > TGi`.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.specs.is_empty() {
            return Err(ModelError::Empty {
                what: "process graphs",
            });
        }
        for spec in &self.specs {
            spec.graph.validate()?;
            if spec.deadline > spec.period {
                return Err(ModelError::DeadlineExceedsPeriod {
                    graph: spec.graph.id(),
                });
            }
            if spec.period.is_zero() {
                return Err(ModelError::Empty {
                    what: "period (zero)",
                });
            }
        }
        Ok(())
    }
}

impl Default for Application {
    fn default() -> Self {
        Application::new()
    }
}

impl FromIterator<GraphSpec> for Application {
    fn from_iter<I: IntoIterator<Item = GraphSpec>>(iter: I) -> Self {
        Application {
            specs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Message;
    use crate::ids::GraphId;

    fn chain(id: u32, n: usize) -> ProcessGraph {
        let mut g = ProcessGraph::new(GraphId::new(id));
        let ps = g.add_processes(n);
        for w in ps.windows(2) {
            g.add_edge(w[0], w[1], Message::new(1)).unwrap();
        }
        g
    }

    #[test]
    fn single_graph_app() {
        let app = Application::single(chain(0, 3), Time::from_ms(100), Time::from_ms(80));
        assert!(app.validate().is_ok());
        assert_eq!(app.process_count(), 3);
        assert_eq!(app.hyperperiod(), Time::from_ms(100));
    }

    #[test]
    fn hyperperiod_is_lcm() {
        let mut app = Application::new();
        app.push(GraphSpec::new(
            chain(0, 2),
            Time::from_ms(20),
            Time::from_ms(20),
        ));
        app.push(GraphSpec::new(
            chain(1, 2),
            Time::from_ms(30),
            Time::from_ms(25),
        ));
        assert!(app.validate().is_ok());
        assert_eq!(app.hyperperiod(), Time::from_ms(60));
    }

    #[test]
    fn deadline_beyond_period_rejected() {
        let app = Application::single(chain(0, 2), Time::from_ms(50), Time::from_ms(60));
        assert!(matches!(
            app.validate(),
            Err(ModelError::DeadlineExceedsPeriod { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            Application::new().validate(),
            Err(ModelError::Empty { .. })
        ));
    }

    #[test]
    fn collect_from_specs() {
        let app: Application = vec![
            GraphSpec::new(chain(0, 1), Time::from_ms(10), Time::from_ms(10)),
            GraphSpec::new(chain(1, 2), Time::from_ms(10), Time::from_ms(9)),
        ]
        .into_iter()
        .collect();
        assert_eq!(app.process_count(), 3);
    }
}
