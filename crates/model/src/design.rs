//! System configurations ψ = ⟨F, M⟩ (paper §4).
//!
//! A [`Design`] fixes, for every process of the merged graph, the
//! fault-tolerance policy `F` and the mapping `M` of each replica to
//! a node. The schedule table `S` (the third component of ψ) is
//! derived from a design by the `ftdes-sched` crate.

use serde::{Deserialize, Serialize};

use crate::architecture::Architecture;
use crate::error::ModelError;
use crate::fault::FaultModel;
use crate::ids::{NodeId, ProcessId};
use crate::policy::{FtPolicy, MappingConstraint, PolicyConstraint};
use crate::wcet::WcetTable;

/// Policy and replica placement for one process.
///
/// `mapping[0]` is the *primary* replica, which carries the whole
/// re-execution budget; all replica nodes must be pairwise distinct
/// (active replication is space redundancy).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessDesign {
    /// The fault-tolerance technique mix.
    pub policy: FtPolicy,
    /// One node per replica; length equals `policy.replicas()`.
    pub mapping: Vec<NodeId>,
}

impl ProcessDesign {
    /// Creates a design entry after checking that the mapping length
    /// matches the replication level and the nodes are distinct.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPolicy`] on arity mismatch or
    /// duplicated replica nodes.
    pub fn new(policy: FtPolicy, mapping: Vec<NodeId>) -> Result<Self, ModelError> {
        if mapping.len() != policy.replicas() as usize {
            return Err(ModelError::InvalidPolicy {
                process: ProcessId::new(0),
                reason: format!(
                    "mapping lists {} nodes for replication level {}",
                    mapping.len(),
                    policy.replicas()
                ),
            });
        }
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != mapping.len() {
            return Err(ModelError::InvalidPolicy {
                process: ProcessId::new(0),
                reason: "replicas must be mapped on distinct nodes".into(),
            });
        }
        Ok(ProcessDesign { policy, mapping })
    }

    /// The node of the primary replica.
    #[must_use]
    pub fn primary_node(&self) -> NodeId {
        self.mapping[0]
    }

    /// The replication level (number of instances).
    #[must_use]
    pub fn replicas(&self) -> u32 {
        self.policy.replicas()
    }
}

/// Designer-imposed constraints: the sets `PX`, `PR` (policy fixed)
/// and `PM` (mapping fixed) of paper §4.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DesignConstraints {
    policy: Vec<PolicyConstraint>,
    mapping: Vec<MappingConstraint>,
}

impl DesignConstraints {
    /// No constraints for `n` processes (all processes in `P+` and `P*`).
    #[must_use]
    pub fn free(n: usize) -> Self {
        DesignConstraints {
            policy: vec![PolicyConstraint::Free; n],
            mapping: vec![MappingConstraint::Free; n],
        }
    }

    /// Fixes the policy constraint of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set_policy(&mut self, p: ProcessId, c: PolicyConstraint) {
        self.policy[p.index()] = c;
    }

    /// Fixes the mapping constraint of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set_mapping(&mut self, p: ProcessId, c: MappingConstraint) {
        self.mapping[p.index()] = c;
    }

    /// The policy constraint of `p` ([`PolicyConstraint::Free`] when
    /// the table is shorter than the process id, which happens for
    /// default-constructed constraints).
    #[must_use]
    pub fn policy(&self, p: ProcessId) -> PolicyConstraint {
        self.policy.get(p.index()).copied().unwrap_or_default()
    }

    /// The mapping constraint of `p`.
    #[must_use]
    pub fn mapping(&self, p: ProcessId) -> MappingConstraint {
        self.mapping.get(p.index()).cloned().unwrap_or_default()
    }
}

/// A complete design: one [`ProcessDesign`] per merged process.
///
/// # Examples
///
/// ```
/// use ftdes_model::design::{Design, ProcessDesign};
/// use ftdes_model::fault::FaultModel;
/// use ftdes_model::policy::FtPolicy;
/// use ftdes_model::time::Time;
///
/// let fm = FaultModel::new(1, Time::from_ms(10));
/// // One process, re-executed on node 0.
/// let d = Design::from_decisions(vec![ProcessDesign::new(
///     FtPolicy::reexecution(&fm),
///     vec![0.into()],
/// )?]);
/// assert_eq!(d.process_count(), 1);
/// assert_eq!(d.decision(0.into()).primary_node(), 0.into());
/// # Ok::<(), ftdes_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    decisions: Vec<ProcessDesign>,
}

impl Design {
    /// Builds a design from per-process decisions (indexed by merged
    /// process id).
    #[must_use]
    pub fn from_decisions(decisions: Vec<ProcessDesign>) -> Self {
        Design { decisions }
    }

    /// Number of processes covered.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.decisions.len()
    }

    /// The decision for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn decision(&self, p: ProcessId) -> &ProcessDesign {
        &self.decisions[p.index()]
    }

    /// Replaces the decision for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set_decision(&mut self, p: ProcessId, d: ProcessDesign) {
        self.decisions[p.index()] = d;
    }

    /// Replaces the decision for process `p`, returning the previous
    /// one — the apply/undo primitive of in-place neighbourhood
    /// evaluation (no full-design clone per candidate).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn replace_decision(&mut self, p: ProcessId, d: ProcessDesign) -> ProcessDesign {
        std::mem::replace(&mut self.decisions[p.index()], d)
    }

    /// Swaps the decision for process `p` with `other` in place — the
    /// allocation-free apply/undo primitive of window evaluation
    /// (call once to apply a candidate decision held in a reusable
    /// buffer, once more to restore).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn swap_decision(&mut self, p: ProcessId, other: &mut ProcessDesign) {
        std::mem::swap(&mut self.decisions[p.index()], other);
    }

    /// Iterates over `(process, decision)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &ProcessDesign)> {
        self.decisions
            .iter()
            .enumerate()
            .map(|(i, d)| (ProcessId::new(i as u32), d))
    }

    /// Validates the design against the architecture, WCET
    /// eligibility, fault model and designer constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violation: unknown node, ineligible replica
    /// placement, policy level out of range, or constraint breach.
    pub fn validate(
        &self,
        arch: &Architecture,
        wcet: &WcetTable,
        fm: &FaultModel,
        constraints: &DesignConstraints,
    ) -> Result<(), ModelError> {
        for (p, d) in self.iter() {
            if d.policy.replicas() == 0 || d.policy.replicas() > fm.max_replicas() {
                return Err(ModelError::InvalidPolicy {
                    process: p,
                    reason: format!("replication level {} out of range", d.policy.replicas()),
                });
            }
            if d.mapping.len() != d.policy.replicas() as usize {
                return Err(ModelError::InvalidPolicy {
                    process: p,
                    reason: "mapping arity mismatch".into(),
                });
            }
            if d.policy.checkpoints() == 0 {
                return Err(ModelError::InvalidPolicy {
                    process: p,
                    reason: "checkpoint count must be at least 1".into(),
                });
            }
            if d.policy.checkpoints() > 1 && d.policy.reexecutions() == 0 {
                return Err(ModelError::InvalidPolicy {
                    process: p,
                    reason: format!(
                        "checkpoint count {} needs a re-execution budget to recover with",
                        d.policy.checkpoints()
                    ),
                });
            }
            for &n in &d.mapping {
                if !arch.contains(n) {
                    return Err(ModelError::UnknownNode { node: n });
                }
                if !wcet.is_eligible(p, n) {
                    return Err(ModelError::InvalidPolicy {
                        process: p,
                        reason: format!("replica mapped on ineligible node {n}"),
                    });
                }
            }
            if !constraints.policy(p).allows(d.policy, fm) {
                return Err(ModelError::InvalidPolicy {
                    process: p,
                    reason: "designer policy constraint violated".into(),
                });
            }
            if !constraints.mapping(p).allows(d.primary_node()) {
                return Err(ModelError::InvalidPolicy {
                    process: p,
                    reason: "designer mapping constraint violated".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn fm1() -> FaultModel {
        FaultModel::new(1, Time::from_ms(10))
    }

    fn simple_wcet() -> WcetTable {
        [
            (ProcessId::new(0), NodeId::new(0), Time::from_ms(10)),
            (ProcessId::new(0), NodeId::new(1), Time::from_ms(12)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn process_design_arity_checked() {
        let fm = fm1();
        let err = ProcessDesign::new(FtPolicy::replication(&fm), vec![NodeId::new(0)]);
        assert!(err.is_err());
        let ok = ProcessDesign::new(
            FtPolicy::replication(&fm),
            vec![NodeId::new(0), NodeId::new(1)],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn duplicate_replica_nodes_rejected() {
        let fm = fm1();
        let err = ProcessDesign::new(
            FtPolicy::replication(&fm),
            vec![NodeId::new(0), NodeId::new(0)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn validate_full_design() {
        let fm = fm1();
        let arch = Architecture::with_node_count(2);
        let wcet = simple_wcet();
        let constraints = DesignConstraints::free(1);
        let d = Design::from_decisions(vec![ProcessDesign::new(
            FtPolicy::replication(&fm),
            vec![NodeId::new(0), NodeId::new(1)],
        )
        .unwrap()]);
        assert!(d.validate(&arch, &wcet, &fm, &constraints).is_ok());
    }

    #[test]
    fn validate_rejects_ineligible_node() {
        let fm = fm1();
        let arch = Architecture::with_node_count(3);
        let wcet = simple_wcet(); // node 2 not eligible
        let constraints = DesignConstraints::free(1);
        let d = Design::from_decisions(vec![ProcessDesign::new(
            FtPolicy::reexecution(&fm),
            vec![NodeId::new(2)],
        )
        .unwrap()]);
        assert!(d.validate(&arch, &wcet, &fm, &constraints).is_err());
    }

    #[test]
    fn validate_rejects_constraint_breach() {
        let fm = fm1();
        let arch = Architecture::with_node_count(2);
        let wcet = simple_wcet();
        let mut constraints = DesignConstraints::free(1);
        constraints.set_policy(ProcessId::new(0), PolicyConstraint::Replication);
        let d = Design::from_decisions(vec![ProcessDesign::new(
            FtPolicy::reexecution(&fm),
            vec![NodeId::new(0)],
        )
        .unwrap()]);
        let err = d.validate(&arch, &wcet, &fm, &constraints).unwrap_err();
        assert!(matches!(err, ModelError::InvalidPolicy { .. }));

        constraints.set_policy(ProcessId::new(0), PolicyConstraint::Free);
        constraints.set_mapping(ProcessId::new(0), MappingConstraint::Fixed(NodeId::new(1)));
        let err = d.validate(&arch, &wcet, &fm, &constraints).unwrap_err();
        assert!(matches!(err, ModelError::InvalidPolicy { .. }));
    }

    #[test]
    fn constraints_default_to_free() {
        let c = DesignConstraints::default();
        assert_eq!(c.policy(ProcessId::new(5)), PolicyConstraint::Free);
        assert_eq!(c.mapping(ProcessId::new(5)), MappingConstraint::Free);
    }

    #[test]
    fn iter_yields_dense_ids() {
        let fm = fm1();
        let d = Design::from_decisions(vec![
            ProcessDesign::new(FtPolicy::reexecution(&fm), vec![NodeId::new(0)]).unwrap(),
            ProcessDesign::new(FtPolicy::reexecution(&fm), vec![NodeId::new(1)]).unwrap(),
        ]);
        let ids: Vec<_> = d.iter().map(|(p, _)| p).collect();
        assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1)]);
    }
}
