//! # ftdes-model
//!
//! Application, architecture and fault models for the design
//! optimization of fault-tolerant distributed embedded systems,
//! following Izosimov, Pop, Eles & Peng, *“Design Optimization of
//! Time- and Cost-Constrained Fault-Tolerant Distributed Embedded
//! Systems”*, DATE 2005.
//!
//! The crate provides the vocabulary shared by the scheduler
//! (`ftdes-sched`), the TTP bus model (`ftdes-ttp`), the fault
//! simulator (`ftdes-faultsim`) and the optimizer (`ftdes-core`):
//!
//! * [`graph::ProcessGraph`] — directed acyclic process graphs with
//!   messages on the edges (paper §3),
//! * [`application::Application`] and [`merge::MergedApplication`] —
//!   periodic graph sets merged over the hyper-period (paper §5.1),
//! * [`architecture::Architecture`] and [`wcet::WcetTable`] — the
//!   node set and per-node worst-case execution times,
//! * [`fault::FaultModel`] — the `(k, µ, χ)` transient-fault
//!   hypothesis (paper §2.1; `χ` is the checkpointing overhead of the
//!   TVLSI follow-up),
//! * [`policy::FtPolicy`] — re-execution / replication /
//!   checkpointing mixes (paper §2.2, Fig. 2), and
//!   [`policy::RecoveryProfile`] — the derived per-instance recovery
//!   accounting every downstream consumer (scheduler, bounds, fault
//!   simulator) reads,
//! * [`design::Design`] — a full system configuration ψ = ⟨F, M⟩
//!   (paper §4).
//!
//! # Examples
//!
//! Build the two-process application of the paper's Fig. 3 and a
//! design that re-executes everything on node `N1`:
//!
//! ```
//! use ftdes_model::prelude::*;
//!
//! let mut g = ProcessGraph::new(0.into());
//! let p1 = g.add_process();
//! let p2 = g.add_process();
//! g.add_edge(p1, p2, Message::new(4))?;
//!
//! let app = Application::single(g, Time::from_ms(200), Time::from_ms(160));
//! let merged = MergedApplication::merge(&app)?;
//!
//! let fm = FaultModel::new(1, Time::from_ms(10));
//! let design = Design::from_decisions(
//!     (0..merged.process_count())
//!         .map(|_| ProcessDesign::new(FtPolicy::reexecution(&fm), vec![0.into()]))
//!         .collect::<Result<_, _>>()?,
//! );
//! assert_eq!(design.process_count(), 2);
//! # Ok::<(), ftdes_model::error::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod application;
pub mod architecture;
pub mod delta;
pub mod design;
pub mod error;
pub mod fault;
pub mod graph;
pub mod ids;
pub mod merge;
pub mod policy;
pub mod time;
pub mod wcet;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::application::{Application, GraphSpec};
    pub use crate::architecture::{Architecture, Node};
    pub use crate::delta::{
        AppliedDelta, CompatibilityReport, DeltaOp, DirtyDecision, DirtyReason, NewProcess,
        ProblemDelta,
    };
    pub use crate::design::{Design, DesignConstraints, ProcessDesign};
    pub use crate::error::ModelError;
    pub use crate::fault::FaultModel;
    pub use crate::graph::{Edge, Message, Process, ProcessGraph};
    pub use crate::ids::{EdgeId, GraphId, NodeId, ProcessId};
    pub use crate::merge::MergedApplication;
    pub use crate::policy::{FtPolicy, MappingConstraint, PolicyConstraint, RecoveryProfile};
    pub use crate::time::Time;
    pub use crate::wcet::WcetTable;
}
