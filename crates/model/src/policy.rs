//! Fault-tolerance policies and their algebra (paper §2.2, §4;
//! checkpointing per the TVLSI follow-up).
//!
//! For every process the designer (or the optimizer) picks a
//! combination of *active replication*, *re-execution* and
//! *checkpointing with rollback recovery*. We encode the combination
//! by the replication level `r` (number of replicas,
//! `1 ≤ r ≤ k + 1`) and the checkpoint count `n` (execution segments
//! of the re-executable primary, `n ≥ 1`); the remaining fault budget
//! `e = k + 1 − r` is covered by re-executions (rollbacks when
//! `n > 1`). The cases map to:
//!
//! * `r = 1, n = 1` — pure re-execution (`e = k` re-execution slots),
//! * `r = 1, n > 1` — checkpointed re-execution: a fault rolls the
//!   primary back to its latest checkpoint and re-runs only the
//!   failed segment,
//! * `r = k + 1` — pure replication (no re-execution, no
//!   checkpoints),
//! * `1 < r < k + 1` — re-executed replicas (Fig. 2c), optionally
//!   checkpointed.
//!
//! In the scheduler the whole re-execution budget is carried by the
//! *primary* (first) replica; the remaining replicas are pure. This
//! matches Fig. 2c, where `P1/1` is re-executed while `P1/2` is not.
//! Checkpoints therefore also live on the primary alone — a replica
//! without a budget never rolls back, so its checkpoints would buy
//! nothing and the algebra rejects them (`n > 1` requires `e > 0`).
//!
//! # The recovery-profile seam
//!
//! Every consumer of recovery time — the scheduler's shared-slack
//! knapsack, the bounded-run lookahead, the splice recording and the
//! fault simulator — reads one [`RecoveryProfile`] per instance
//! (derived once at design expansion by
//! [`FtPolicy::recovery_profile`]) instead of re-deriving `C + µ`
//! from raw WCETs. That keeps the recovery-time accounting
//! polymorphic over the technique mix at a single point.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::fault::FaultModel;
use crate::ids::{NodeId, ProcessId};
use crate::time::Time;

/// The fault-tolerance technique mix chosen for one process.
///
/// # Examples
///
/// ```
/// use ftdes_model::policy::FtPolicy;
/// use ftdes_model::fault::FaultModel;
/// use ftdes_model::ids::ProcessId;
/// use ftdes_model::time::Time;
///
/// let fm = FaultModel::new(2, Time::from_ms(10));
/// let p = ProcessId::new(7);
/// let combined = FtPolicy::new(p, 2, &fm)?; // Fig. 2c: two replicas
/// assert_eq!(combined.replicas(), 2);
/// assert_eq!(combined.reexecutions(), 1); // primary re-executed once
/// // Checkpoint the primary: rollbacks re-run one of 3 segments.
/// let cp = combined.with_checkpoints(p, 3, &fm)?;
/// assert_eq!(cp.checkpoints(), 3);
/// # Ok::<(), ftdes_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FtPolicy {
    /// Replication level `r` (total number of instances).
    replicas: u32,
    /// Re-execution budget `e = k + 1 - r`.
    reexecutions: u32,
    /// Checkpoint count `n` of the primary: the number of execution
    /// segments a rollback recovers at. `1` = no checkpointing.
    checkpoints: u32,
}

/// The recovery profile of one replica instance: the derived,
/// technique-independent view of its time accounting. See the module
/// docs for who consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RecoveryProfile {
    /// Fault-free execution time on the node, including interior
    /// checkpoint saves: `C + χ·(n − 1)`.
    pub exec: Time,
    /// Worst-case per-fault rollback/re-run cost, excluding the
    /// detection overhead `µ`: `C` without checkpoints, `⌈C/n⌉ + χ`
    /// with them.
    pub recovery: Time,
}

impl FtPolicy {
    /// Creates the policy of `process` with `replicas` instances
    /// under fault model `fm`; the re-execution budget is derived as
    /// `k + 1 - replicas` and no checkpoints are taken.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPolicy`] naming `process` when
    /// `replicas` is zero or exceeds `k + 1`.
    pub fn new(process: ProcessId, replicas: u32, fm: &FaultModel) -> Result<Self, ModelError> {
        if replicas == 0 || replicas > fm.max_replicas() {
            return Err(ModelError::InvalidPolicy {
                process,
                reason: format!(
                    "replication level {replicas} outside 1..={}",
                    fm.max_replicas()
                ),
            });
        }
        Ok(FtPolicy {
            replicas,
            reexecutions: fm.max_replicas() - replicas,
            checkpoints: 1,
        })
    }

    /// Creates the policy of `process` with `replicas` instances and
    /// `checkpoints` segments on the primary.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPolicy`] naming `process` when the
    /// replication level is out of range or the checkpoint count is
    /// invalid (zero, or `> 1` without a re-execution budget to roll
    /// back with).
    pub fn checkpointed(
        process: ProcessId,
        replicas: u32,
        checkpoints: u32,
        fm: &FaultModel,
    ) -> Result<Self, ModelError> {
        FtPolicy::new(process, replicas, fm)?.with_checkpoints(process, checkpoints, fm)
    }

    /// Returns this policy with the checkpoint count replaced.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPolicy`] naming `process` when
    /// `checkpoints` is zero, or `> 1` while the policy has no
    /// re-execution budget (a pure replica never rolls back, so its
    /// checkpoints would be dead weight — the algebra keeps such
    /// policies unrepresentable).
    pub fn with_checkpoints(
        mut self,
        process: ProcessId,
        checkpoints: u32,
        _fm: &FaultModel,
    ) -> Result<Self, ModelError> {
        if checkpoints == 0 {
            return Err(ModelError::InvalidPolicy {
                process,
                reason: "checkpoint count must be at least 1".into(),
            });
        }
        if checkpoints > 1 && self.reexecutions == 0 {
            return Err(ModelError::InvalidPolicy {
                process,
                reason: format!(
                    "checkpoint count {checkpoints} without a re-execution budget to recover with"
                ),
            });
        }
        self.checkpoints = checkpoints;
        Ok(self)
    }

    /// Pure re-execution: one instance, `k` re-execution slots, no
    /// checkpoints.
    #[must_use]
    pub fn reexecution(fm: &FaultModel) -> Self {
        FtPolicy {
            replicas: 1,
            reexecutions: fm.k(),
            checkpoints: 1,
        }
    }

    /// Checkpointed re-execution: one instance, `k` rollback slots,
    /// `n` segments (clamped to at least 1; clamped to 1 when the
    /// fault model is fault-free, since there is no budget to recover
    /// with).
    #[must_use]
    pub fn checkpointed_reexecution(fm: &FaultModel, n: u32) -> Self {
        FtPolicy {
            replicas: 1,
            reexecutions: fm.k(),
            checkpoints: if fm.k() == 0 { 1 } else { n.max(1) },
        }
    }

    /// Pure active replication: `k + 1` instances.
    #[must_use]
    pub fn replication(fm: &FaultModel) -> Self {
        FtPolicy {
            replicas: fm.max_replicas(),
            reexecutions: 0,
            checkpoints: 1,
        }
    }

    /// The replication level `r`.
    #[must_use]
    pub const fn replicas(&self) -> u32 {
        self.replicas
    }

    /// The re-execution budget `e` (carried by the primary replica).
    #[must_use]
    pub const fn reexecutions(&self) -> u32 {
        self.reexecutions
    }

    /// The checkpoint count `n` (segments of the primary; 1 = no
    /// checkpointing).
    #[must_use]
    pub const fn checkpoints(&self) -> u32 {
        self.checkpoints
    }

    /// Re-execution budget of replica number `instance` (0-based):
    /// the primary carries the whole budget, other replicas none.
    #[must_use]
    pub const fn budget_of_instance(&self, instance: u32) -> u32 {
        if instance == 0 {
            self.reexecutions
        } else {
            0
        }
    }

    /// Checkpoint count of replica number `instance`: the primary
    /// carries the checkpoints (it owns the rollback budget), pure
    /// replicas run unsegmented.
    #[must_use]
    pub const fn checkpoints_of_instance(&self, instance: u32) -> u32 {
        if instance == 0 {
            self.checkpoints
        } else {
            1
        }
    }

    /// The [`RecoveryProfile`] of replica number `instance` with raw
    /// WCET `wcet` under `fm` — **the** seam every recovery-time
    /// consumer derives its accounting from.
    #[must_use]
    pub fn recovery_profile(&self, instance: u32, wcet: Time, fm: &FaultModel) -> RecoveryProfile {
        let n = self.checkpoints_of_instance(instance);
        if self.budget_of_instance(instance) == 0 || n <= 1 {
            return RecoveryProfile {
                exec: wcet,
                recovery: wcet,
            };
        }
        RecoveryProfile {
            exec: fm.checkpointed_exec(wcet, n),
            recovery: fm.worst_case_recovery(wcet, n),
        }
    }

    /// Total number of executions the adversary must defeat:
    /// `r + e = k + 1`.
    #[must_use]
    pub const fn total_executions(&self) -> u32 {
        self.replicas + self.reexecutions
    }

    /// Returns `true` for pure re-execution (`r = 1`).
    #[must_use]
    pub const fn is_pure_reexecution(&self) -> bool {
        self.replicas == 1
    }

    /// Returns `true` for pure replication (`e = 0`).
    #[must_use]
    pub const fn is_pure_replication(&self) -> bool {
        self.reexecutions == 0
    }

    /// Returns `true` when the primary takes checkpoints (`n > 1`).
    #[must_use]
    pub const fn is_checkpointed(&self) -> bool {
        self.checkpoints > 1
    }
}

/// Designer-imposed restriction on the policy of a process (paper §4:
/// the sets `PR`, `PX` and the free set `P+`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PolicyConstraint {
    /// The optimizer may choose any policy (the set `P+`).
    #[default]
    Free,
    /// The designer fixed re-execution for this process (set `PX`).
    /// Checkpointed re-execution (`r = 1, n > 1`) still qualifies —
    /// the constraint forbids space redundancy, not rollbacks.
    Reexecution,
    /// The designer fixed full replication for this process (set `PR`).
    Replication,
}

impl PolicyConstraint {
    /// Returns `true` when `policy` satisfies this constraint under
    /// fault model `fm`.
    #[must_use]
    pub fn allows(&self, policy: FtPolicy, fm: &FaultModel) -> bool {
        match self {
            PolicyConstraint::Free => true,
            PolicyConstraint::Reexecution => policy.replicas() == 1,
            PolicyConstraint::Replication => policy.replicas() == fm.max_replicas(),
        }
    }
}

/// Designer-imposed restriction on the mapping of a process
/// (paper §4: the set `PM` of already-mapped processes, e.g. those
/// that must sit next to their sensors/actuators).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MappingConstraint {
    /// The optimizer may map the process on any eligible node
    /// (the set `P*`).
    #[default]
    Free,
    /// The primary instance must reside on the given node.
    Fixed(NodeId),
}

impl MappingConstraint {
    /// Returns `true` when mapping the primary on `node` satisfies
    /// this constraint.
    #[must_use]
    pub fn allows(&self, node: NodeId) -> bool {
        match self {
            MappingConstraint::Free => true,
            MappingConstraint::Fixed(n) => *n == node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm2() -> FaultModel {
        FaultModel::new(2, Time::from_ms(10))
    }

    fn pid() -> ProcessId {
        ProcessId::new(3)
    }

    #[test]
    fn policy_algebra_r_plus_e() {
        let fm = fm2();
        for r in 1..=fm.max_replicas() {
            let p = FtPolicy::new(pid(), r, &fm).unwrap();
            assert_eq!(p.total_executions(), fm.k() + 1);
            assert_eq!(p.checkpoints(), 1, "new() takes no checkpoints");
        }
    }

    #[test]
    fn pure_constructors() {
        let fm = fm2();
        let rex = FtPolicy::reexecution(&fm);
        assert!(rex.is_pure_reexecution());
        assert_eq!(rex.reexecutions(), 2);
        let rep = FtPolicy::replication(&fm);
        assert!(rep.is_pure_replication());
        assert_eq!(rep.replicas(), 3);
        let cp = FtPolicy::checkpointed_reexecution(&fm, 4);
        assert!(cp.is_pure_reexecution() && cp.is_checkpointed());
        assert_eq!(cp.checkpoints(), 4);
    }

    #[test]
    fn fig2c_combined() {
        // k = 2 tolerated with two replicas and one re-execution.
        let p = FtPolicy::new(pid(), 2, &fm2()).unwrap();
        assert_eq!(p.replicas(), 2);
        assert_eq!(p.reexecutions(), 1);
        assert!(!p.is_pure_reexecution());
        assert!(!p.is_pure_replication());
    }

    #[test]
    fn budget_on_primary_only() {
        let p = FtPolicy::checkpointed(pid(), 2, 3, &fm2()).unwrap();
        assert_eq!(p.budget_of_instance(0), 1);
        assert_eq!(p.budget_of_instance(1), 0);
        assert_eq!(p.checkpoints_of_instance(0), 3);
        assert_eq!(p.checkpoints_of_instance(1), 1, "pure replicas unsegmented");
    }

    #[test]
    fn invalid_levels_rejected_with_real_process_id() {
        let fm = fm2();
        for bad in [0, 4] {
            let err = FtPolicy::new(pid(), bad, &fm).unwrap_err();
            match err {
                ModelError::InvalidPolicy { process, .. } => assert_eq!(process, pid()),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn checkpoints_require_a_budget() {
        let fm = fm2();
        // Pure replication has no budget: n > 1 is unrepresentable.
        let rep = FtPolicy::replication(&fm);
        let err = rep.with_checkpoints(pid(), 2, &fm).unwrap_err();
        assert!(matches!(err, ModelError::InvalidPolicy { process, .. } if process == pid()));
        // n = 1 is always fine, n = 0 never.
        assert!(rep.with_checkpoints(pid(), 1, &fm).is_ok());
        assert!(rep.with_checkpoints(pid(), 0, &fm).is_err());
        // A budgeted mix takes checkpoints.
        let mix = FtPolicy::checkpointed(pid(), 2, 3, &fm).unwrap();
        assert_eq!(mix.checkpoints(), 3);
        // The fault-free model clamps the convenience constructor.
        assert_eq!(
            FtPolicy::checkpointed_reexecution(&FaultModel::none(), 5).checkpoints(),
            1
        );
    }

    #[test]
    fn recovery_profile_derivation() {
        let fm = fm2().with_checkpoint_overhead(Time::from_ms(1));
        let c = Time::from_ms(30);
        let plain = FtPolicy::reexecution(&fm).recovery_profile(0, c, &fm);
        assert_eq!((plain.exec, plain.recovery), (c, c));
        let cp = FtPolicy::checkpointed_reexecution(&fm, 3);
        let primary = cp.recovery_profile(0, c, &fm);
        assert_eq!(primary.exec, Time::from_ms(32));
        assert_eq!(primary.recovery, Time::from_ms(11));
        // A pure replica of a checkpointed mix keeps the raw WCET.
        let mix = FtPolicy::checkpointed(pid(), 2, 3, &fm).unwrap();
        let replica = mix.recovery_profile(1, c, &fm);
        assert_eq!((replica.exec, replica.recovery), (c, c));
    }

    #[test]
    fn fault_free_model_single_policy() {
        let fm = FaultModel::none();
        let p = FtPolicy::new(pid(), 1, &fm).unwrap();
        assert_eq!(p.replicas(), 1);
        assert_eq!(p.reexecutions(), 0);
        assert!(p.is_pure_reexecution() && p.is_pure_replication());
    }

    #[test]
    fn constraints_filter_policies() {
        let fm = fm2();
        let rex = FtPolicy::reexecution(&fm);
        let cp_rex = FtPolicy::checkpointed_reexecution(&fm, 3);
        let rep = FtPolicy::replication(&fm);
        let mix = FtPolicy::new(pid(), 2, &fm).unwrap();
        assert!(PolicyConstraint::Free.allows(rex, &fm));
        assert!(PolicyConstraint::Free.allows(mix, &fm));
        assert!(PolicyConstraint::Reexecution.allows(rex, &fm));
        assert!(
            PolicyConstraint::Reexecution.allows(cp_rex, &fm),
            "PX forbids replication, not rollbacks"
        );
        assert!(!PolicyConstraint::Reexecution.allows(mix, &fm));
        assert!(PolicyConstraint::Replication.allows(rep, &fm));
        assert!(!PolicyConstraint::Replication.allows(mix, &fm));
    }

    #[test]
    fn mapping_constraint() {
        let free = MappingConstraint::Free;
        let fixed = MappingConstraint::Fixed(NodeId::new(1));
        assert!(free.allows(NodeId::new(0)));
        assert!(fixed.allows(NodeId::new(1)));
        assert!(!fixed.allows(NodeId::new(0)));
    }
}
