//! Fault-tolerance policies and their algebra (paper §2.2, §4).
//!
//! For every process the designer (or the optimizer) picks a
//! combination of *active replication* and *re-execution*. We encode
//! the combination by the replication level `r` (number of replicas,
//! `1 ≤ r ≤ k + 1`); the remaining fault budget `e = k + 1 − r` is
//! covered by re-executions. The three cases of paper Fig. 2 map to:
//!
//! * `r = 1` — pure re-execution (`e = k` re-execution slots),
//! * `r = k + 1` — pure replication (no re-execution),
//! * `1 < r < k + 1` — re-executed replicas (Fig. 2c).
//!
//! In the scheduler the whole re-execution budget is carried by the
//! *primary* (first) replica; the remaining replicas are pure. This
//! matches Fig. 2c, where `P1/1` is re-executed while `P1/2` is not.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::fault::FaultModel;
use crate::ids::{NodeId, ProcessId};

/// The fault-tolerance technique mix chosen for one process.
///
/// # Examples
///
/// ```
/// use ftdes_model::policy::FtPolicy;
/// use ftdes_model::fault::FaultModel;
/// use ftdes_model::time::Time;
///
/// let fm = FaultModel::new(2, Time::from_ms(10));
/// let combined = FtPolicy::new(2, &fm)?; // Fig. 2c: two replicas
/// assert_eq!(combined.replicas(), 2);
/// assert_eq!(combined.reexecutions(), 1); // primary re-executed once
/// # Ok::<(), ftdes_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FtPolicy {
    /// Replication level `r` (total number of instances).
    replicas: u32,
    /// Re-execution budget `e = k + 1 - r`.
    reexecutions: u32,
}

impl FtPolicy {
    /// Creates the policy with `replicas` instances under fault model
    /// `fm`; the re-execution budget is derived as `k + 1 - replicas`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPolicy`] when `replicas` is zero
    /// or exceeds `k + 1`. (The anonymous [`ProcessId`] 0 is reported
    /// since the policy is not yet attached to a process.)
    pub fn new(replicas: u32, fm: &FaultModel) -> Result<Self, ModelError> {
        if replicas == 0 || replicas > fm.max_replicas() {
            return Err(ModelError::InvalidPolicy {
                process: ProcessId::new(0),
                reason: format!(
                    "replication level {replicas} outside 1..={}",
                    fm.max_replicas()
                ),
            });
        }
        Ok(FtPolicy {
            replicas,
            reexecutions: fm.max_replicas() - replicas,
        })
    }

    /// Pure re-execution: one instance, `k` re-execution slots.
    #[must_use]
    pub fn reexecution(fm: &FaultModel) -> Self {
        FtPolicy {
            replicas: 1,
            reexecutions: fm.k(),
        }
    }

    /// Pure active replication: `k + 1` instances.
    #[must_use]
    pub fn replication(fm: &FaultModel) -> Self {
        FtPolicy {
            replicas: fm.max_replicas(),
            reexecutions: 0,
        }
    }

    /// The replication level `r`.
    #[must_use]
    pub const fn replicas(&self) -> u32 {
        self.replicas
    }

    /// The re-execution budget `e` (carried by the primary replica).
    #[must_use]
    pub const fn reexecutions(&self) -> u32 {
        self.reexecutions
    }

    /// Re-execution budget of replica number `instance` (0-based):
    /// the primary carries the whole budget, other replicas none.
    #[must_use]
    pub const fn budget_of_instance(&self, instance: u32) -> u32 {
        if instance == 0 {
            self.reexecutions
        } else {
            0
        }
    }

    /// Total number of executions the adversary must defeat:
    /// `r + e = k + 1`.
    #[must_use]
    pub const fn total_executions(&self) -> u32 {
        self.replicas + self.reexecutions
    }

    /// Returns `true` for pure re-execution (`r = 1`).
    #[must_use]
    pub const fn is_pure_reexecution(&self) -> bool {
        self.replicas == 1
    }

    /// Returns `true` for pure replication (`e = 0`).
    #[must_use]
    pub const fn is_pure_replication(&self) -> bool {
        self.reexecutions == 0
    }
}

/// Designer-imposed restriction on the policy of a process (paper §4:
/// the sets `PR`, `PX` and the free set `P+`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PolicyConstraint {
    /// The optimizer may choose any policy (the set `P+`).
    #[default]
    Free,
    /// The designer fixed re-execution for this process (set `PX`).
    Reexecution,
    /// The designer fixed full replication for this process (set `PR`).
    Replication,
}

impl PolicyConstraint {
    /// Returns `true` when `policy` satisfies this constraint under
    /// fault model `fm`.
    #[must_use]
    pub fn allows(&self, policy: FtPolicy, fm: &FaultModel) -> bool {
        match self {
            PolicyConstraint::Free => true,
            PolicyConstraint::Reexecution => policy.replicas() == 1,
            PolicyConstraint::Replication => policy.replicas() == fm.max_replicas(),
        }
    }
}

/// Designer-imposed restriction on the mapping of a process
/// (paper §4: the set `PM` of already-mapped processes, e.g. those
/// that must sit next to their sensors/actuators).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MappingConstraint {
    /// The optimizer may map the process on any eligible node
    /// (the set `P*`).
    #[default]
    Free,
    /// The primary instance must reside on the given node.
    Fixed(NodeId),
}

impl MappingConstraint {
    /// Returns `true` when mapping the primary on `node` satisfies
    /// this constraint.
    #[must_use]
    pub fn allows(&self, node: NodeId) -> bool {
        match self {
            MappingConstraint::Free => true,
            MappingConstraint::Fixed(n) => *n == node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn fm2() -> FaultModel {
        FaultModel::new(2, Time::from_ms(10))
    }

    #[test]
    fn policy_algebra_r_plus_e() {
        let fm = fm2();
        for r in 1..=fm.max_replicas() {
            let p = FtPolicy::new(r, &fm).unwrap();
            assert_eq!(p.total_executions(), fm.k() + 1);
        }
    }

    #[test]
    fn pure_constructors() {
        let fm = fm2();
        let rex = FtPolicy::reexecution(&fm);
        assert!(rex.is_pure_reexecution());
        assert_eq!(rex.reexecutions(), 2);
        let rep = FtPolicy::replication(&fm);
        assert!(rep.is_pure_replication());
        assert_eq!(rep.replicas(), 3);
    }

    #[test]
    fn fig2c_combined() {
        // k = 2 tolerated with two replicas and one re-execution.
        let p = FtPolicy::new(2, &fm2()).unwrap();
        assert_eq!(p.replicas(), 2);
        assert_eq!(p.reexecutions(), 1);
        assert!(!p.is_pure_reexecution());
        assert!(!p.is_pure_replication());
    }

    #[test]
    fn budget_on_primary_only() {
        let p = FtPolicy::new(2, &fm2()).unwrap();
        assert_eq!(p.budget_of_instance(0), 1);
        assert_eq!(p.budget_of_instance(1), 0);
    }

    #[test]
    fn invalid_levels_rejected() {
        let fm = fm2();
        assert!(FtPolicy::new(0, &fm).is_err());
        assert!(FtPolicy::new(4, &fm).is_err());
    }

    #[test]
    fn fault_free_model_single_policy() {
        let fm = FaultModel::none();
        let p = FtPolicy::new(1, &fm).unwrap();
        assert_eq!(p.replicas(), 1);
        assert_eq!(p.reexecutions(), 0);
        assert!(p.is_pure_reexecution() && p.is_pure_replication());
    }

    #[test]
    fn constraints_filter_policies() {
        let fm = fm2();
        let rex = FtPolicy::reexecution(&fm);
        let rep = FtPolicy::replication(&fm);
        let mix = FtPolicy::new(2, &fm).unwrap();
        assert!(PolicyConstraint::Free.allows(rex, &fm));
        assert!(PolicyConstraint::Free.allows(mix, &fm));
        assert!(PolicyConstraint::Reexecution.allows(rex, &fm));
        assert!(!PolicyConstraint::Reexecution.allows(mix, &fm));
        assert!(PolicyConstraint::Replication.allows(rep, &fm));
        assert!(!PolicyConstraint::Replication.allows(mix, &fm));
    }

    #[test]
    fn mapping_constraint() {
        let free = MappingConstraint::Free;
        let fixed = MappingConstraint::Fixed(NodeId::new(1));
        assert!(free.allows(NodeId::new(0)));
        assert!(fixed.allows(NodeId::new(1)));
        assert!(!fixed.allows(NodeId::new(0)));
    }
}
