//! Discrete time values used throughout the framework.
//!
//! All schedule computations are performed on integer microseconds to
//! keep the static schedules exactly reproducible (no floating-point
//! drift between the optimizer's cost evaluation and the validator).
//! The paper quotes every quantity in milliseconds, so [`Time::from_ms`]
//! and [`Time::as_ms`] are the idiomatic entry points.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in time or a duration, in integer microseconds.
///
/// `Time` is used both for instants (schedule start times) and for
/// durations (worst-case execution times, fault recovery overhead µ);
/// the arithmetic is the same and the paper does not distinguish them
/// either.
///
/// # Examples
///
/// ```
/// use ftdes_model::time::Time;
///
/// let c1 = Time::from_ms(30);
/// let mu = Time::from_ms(10);
/// // Worst-case finish of a process re-executed twice (Fig. 2a):
/// let wc = c1 + (c1 + mu) * 2;
/// assert_eq!(wc.as_ms(), 110);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);

    /// The maximum representable time, used as "never" / +∞ sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from integer microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        Time(us)
    }

    /// Creates a time from integer milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms * 1000` overflows `u64` (i.e. absurdly large
    /// inputs only).
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000)
    }

    /// Returns the value in whole microseconds.
    #[must_use]
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Returns the value in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in fractional milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Returns the larger of two times.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns `true` if this is the zero time.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division rounding up: the number of whole `unit`s
    /// needed to cover `self`.
    ///
    /// Used for TDMA round arithmetic (how many rounds until a given
    /// instant).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    #[must_use]
    pub fn div_ceil(self, unit: Time) -> u64 {
        assert!(!unit.is_zero(), "division by zero time");
        self.0.div_ceil(unit.0)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = u64;
    fn div(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// Computes the least common multiple of two times.
///
/// Used to derive the hyper-period of an application with processes
/// of different periods (paper §3).
///
/// # Panics
///
/// Panics if either argument is zero.
#[must_use]
pub fn lcm(a: Time, b: Time) -> Time {
    assert!(!a.is_zero() && !b.is_zero(), "lcm of zero period");
    Time(a.0 / gcd_u64(a.0, b.0) * b.0)
}

fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_round_trip() {
        let t = Time::from_ms(42);
        assert_eq!(t.as_ms(), 42);
        assert_eq!(t.as_us(), 42_000);
    }

    #[test]
    fn display_prefers_ms() {
        assert_eq!(Time::from_ms(5).to_string(), "5ms");
        assert_eq!(Time::from_us(1500).to_string(), "1500us");
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ms(10);
        let b = Time::from_ms(3);
        assert_eq!((a + b).as_ms(), 13);
        assert_eq!((a - b).as_ms(), 7);
        assert_eq!((a * 3).as_ms(), 30);
        assert_eq!(a / b, 3);
        assert_eq!((a % b).as_ms(), 1);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Time::from_ms(1).saturating_sub(Time::from_ms(5)),
            Time::ZERO
        );
    }

    #[test]
    fn min_max() {
        let a = Time::from_ms(1);
        let b = Time::from_ms(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn div_ceil_covers() {
        assert_eq!(Time::from_ms(25).div_ceil(Time::from_ms(10)), 3);
        assert_eq!(Time::from_ms(30).div_ceil(Time::from_ms(10)), 3);
        assert_eq!(Time::ZERO.div_ceil(Time::from_ms(10)), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_ceil_zero_unit_panics() {
        let _ = Time::from_ms(1).div_ceil(Time::ZERO);
    }

    #[test]
    fn lcm_of_periods() {
        assert_eq!(lcm(Time::from_ms(20), Time::from_ms(30)), Time::from_ms(60));
        assert_eq!(lcm(Time::from_ms(7), Time::from_ms(7)), Time::from_ms(7));
    }

    #[test]
    fn sum_iterator() {
        let total: Time = [1u64, 2, 3].iter().map(|&ms| Time::from_ms(ms)).sum();
        assert_eq!(total, Time::from_ms(6));
    }

    #[test]
    fn fig2_worst_case_reexecution() {
        // Paper Fig. 2a: C1 = 30 ms, k = 2, µ = 10 ms. The worst-case
        // scenario executes P1 three times with two detection overheads:
        // 30 + (10 + 30) + (10 + 30) = 110 ms.
        let c1 = Time::from_ms(30);
        let mu = Time::from_ms(10);
        let wc = c1 + (mu + c1) * 2;
        assert_eq!(wc, Time::from_ms(110));
    }
}
