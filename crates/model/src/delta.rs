//! Problem deltas: structural change applied to a deployed problem.
//!
//! The paper designs fault-tolerant schedules offline, but a deployed
//! system degrades online: a node fails permanently, a WCET estimate
//! is revised upward after field measurements, a process is added or
//! retired. A [`ProblemDelta`] is a small algebra of such changes.
//! Applying it to the model parts of a problem yields an
//! [`AppliedDelta`]: the post-delta graph and WCET table, the process
//! id remapping (process ids are dense, so removals shift ids), and a
//! record of what the delta touched. From that record and the
//! previous design, [`AppliedDelta::compatibility`] derives a
//! [`CompatibilityReport`]: which decisions of the old design survive
//! untouched and which are *dirty* — referencing a dead node, losing
//! a neighbor to a removal, or sitting on a degraded/rescaled WCET
//! entry — and therefore worth re-optimizing during repair.
//!
//! Two modelling choices keep a delta compatible with the TTP bus:
//!
//! * **Killed nodes stay in the architecture.** A TTP round assigns
//!   every node one slot; removing the node would renumber slots and
//!   invalidate the MEDL of every deployed node. A killed node
//!   instead loses all its WCET entries — no process is eligible
//!   there, so no design can ever map onto it — and its TDMA slot
//!   simply goes unused, exactly as on the physical bus where a dead
//!   node falls silent in its slot.
//! * **Process ids stay dense.** `RemoveProcess` rebuilds the graph
//!   with ids above the removed process shifted down by one;
//!   [`AppliedDelta::map_process`] and [`AppliedDelta::origin_of`]
//!   translate between the pre- and post-delta id spaces.

use std::collections::BTreeSet;
use std::fmt;

use crate::architecture::Architecture;
use crate::design::Design;
use crate::error::ModelError;
use crate::fault::FaultModel;
use crate::graph::{Message, ProcessGraph};
use crate::ids::{NodeId, ProcessId};
use crate::time::Time;
use crate::wcet::WcetTable;

/// Specification of a process introduced by [`DeltaOp::AddProcess`].
///
/// Edge endpoints reference **pre-delta** process ids; they are
/// resolved through the running remap when the op applies, so a
/// composite delta may remove one process and wire a replacement to
/// the survivors in the same application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewProcess {
    /// Human-readable name of the new process.
    pub name: String,
    /// Earliest start time.
    pub release: Time,
    /// Optional deadline.
    pub deadline: Option<Time>,
    /// WCET per eligible node. Entries on killed nodes are dropped;
    /// at least one live entry must remain.
    pub wcet: Vec<(NodeId, Time)>,
    /// Incoming data dependencies `(sender, message)`, senders in
    /// pre-delta ids.
    pub inputs: Vec<(ProcessId, Message)>,
    /// Outgoing data dependencies `(receiver, message)`, receivers in
    /// pre-delta ids.
    pub outputs: Vec<(ProcessId, Message)>,
}

impl NewProcess {
    /// A new process with the given name, WCET entries and no edges.
    #[must_use]
    pub fn named<S: Into<String>>(name: S, wcet: Vec<(NodeId, Time)>) -> Self {
        NewProcess {
            name: name.into(),
            release: Time::ZERO,
            deadline: None,
            wcet,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }
}

/// One elementary change of a [`ProblemDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// A node fails permanently: all its WCET entries are removed, so
    /// no process is eligible there anymore. The node keeps its TDMA
    /// slot (which goes unused) — see the module docs.
    KillNode {
        /// The failed node.
        node: NodeId,
    },
    /// A node slows down (e.g. thermal throttling): every WCET entry
    /// on it is scaled to `percent`% (rounding up).
    DegradeNode {
        /// The degraded node.
        node: NodeId,
        /// New WCET in percent of the old (`150` = 1.5× slower;
        /// values below 100 model a speedup). Must be non-zero.
        percent: u32,
    },
    /// WCET revision: entries of one process (or of every process)
    /// are scaled to `percent`% on all nodes (rounding up).
    RescaleWcet {
        /// The revised process, in pre-delta ids; `None` rescales the
        /// whole table.
        process: Option<ProcessId>,
        /// New WCET in percent of the old. Must be non-zero.
        percent: u32,
    },
    /// A process is added to the application.
    AddProcess(Box<NewProcess>),
    /// A process is retired. Its edges are dropped (recorded in the
    /// [`AppliedDelta`]) and ids above it shift down by one.
    RemoveProcess {
        /// The retired process, in pre-delta ids.
        process: ProcessId,
    },
}

impl fmt::Display for DeltaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaOp::KillNode { node } => write!(f, "kill-node {node}"),
            DeltaOp::DegradeNode { node, percent } => {
                write!(f, "degrade-node {node} to {percent}%")
            }
            DeltaOp::RescaleWcet {
                process: Some(p),
                percent,
            } => write!(f, "rescale-wcet {p} to {percent}%"),
            DeltaOp::RescaleWcet {
                process: None,
                percent,
            } => write!(f, "rescale-wcet to {percent}%"),
            DeltaOp::AddProcess(spec) => write!(f, "add-process {}", spec.name),
            DeltaOp::RemoveProcess { process } => write!(f, "remove-process {process}"),
        }
    }
}

/// An ordered sequence of [`DeltaOp`]s applied atomically: either
/// every op applies and the result validates, or the whole delta is
/// rejected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProblemDelta {
    ops: Vec<DeltaOp>,
}

impl ProblemDelta {
    /// The empty delta (applying it is the identity).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-op delta killing `node`.
    #[must_use]
    pub fn kill_node(node: NodeId) -> Self {
        ProblemDelta::new().and(DeltaOp::KillNode { node })
    }

    /// A single-op delta degrading `node` to `percent`% speed.
    #[must_use]
    pub fn degrade_node(node: NodeId, percent: u32) -> Self {
        ProblemDelta::new().and(DeltaOp::DegradeNode { node, percent })
    }

    /// A single-op delta rescaling the whole WCET table.
    #[must_use]
    pub fn rescale_wcet(percent: u32) -> Self {
        ProblemDelta::new().and(DeltaOp::RescaleWcet {
            process: None,
            percent,
        })
    }

    /// A single-op delta removing `process`.
    #[must_use]
    pub fn remove_process(process: ProcessId) -> Self {
        ProblemDelta::new().and(DeltaOp::RemoveProcess { process })
    }

    /// A single-op delta adding a process.
    #[must_use]
    pub fn add_process(spec: NewProcess) -> Self {
        ProblemDelta::new().and(DeltaOp::AddProcess(Box::new(spec)))
    }

    /// Appends `op` (builder style).
    #[must_use]
    pub fn and(mut self, op: DeltaOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Appends `op` in place.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// The ops in application order.
    #[must_use]
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Returns `true` for the identity delta.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the delta to the model parts of a problem.
    ///
    /// The architecture is read-only context (killed nodes stay, see
    /// the module docs); graph and WCET table are rebuilt.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownNode`] / [`ModelError::UnknownProcess`]
    ///   when an op references a node or process the (running) model
    ///   does not have,
    /// * [`ModelError::InvalidDelta`] for malformed ops (zero scale
    ///   percent, WCET overflow, adding an edge that already exists),
    /// * [`ModelError::Unmappable`] when the post-delta table leaves
    ///   a process with no eligible node — the platform degraded
    ///   beyond what a repair can absorb,
    /// * [`ModelError::CyclicGraph`] when added edges close a cycle.
    pub fn apply(
        &self,
        graph: &ProcessGraph,
        arch: &Architecture,
        wcet: &WcetTable,
    ) -> Result<AppliedDelta, ModelError> {
        let mut state = DeltaState::seed(graph, wcet);
        for op in &self.ops {
            state.apply_op(op, arch)?;
        }
        state.finish(arch)
    }
}

impl fmt::Display for ProblemDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return write!(f, "(identity)");
        }
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// An edge dropped by the delta (an endpoint was removed). Endpoints
/// are post-delta ids; `None` marks the removed endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DroppedEdge {
    /// Sender, `None` if the sender itself was removed.
    pub from: Option<ProcessId>,
    /// Receiver, `None` if the receiver itself was removed.
    pub to: Option<ProcessId>,
}

/// The result of applying a [`ProblemDelta`]: post-delta model parts
/// plus the bookkeeping repair needs to translate the old design and
/// decide what to re-optimize.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The post-delta process graph (dense ids).
    pub graph: ProcessGraph,
    /// The post-delta WCET table.
    pub wcet: WcetTable,
    /// Pre-delta id -> post-delta id (`None` = removed).
    remap: Vec<Option<ProcessId>>,
    /// Post-delta id -> pre-delta id (`None` = added by the delta).
    origin: Vec<Option<ProcessId>>,
    /// Processes the delta added, in post-delta ids.
    added: Vec<ProcessId>,
    /// Permanently failed nodes.
    killed_nodes: Vec<NodeId>,
    /// Slowed-down nodes.
    degraded_nodes: Vec<NodeId>,
    /// Processes whose WCET entries were rescaled, post-delta ids.
    rescaled: Vec<ProcessId>,
    /// Survivors that lost a neighbor (removed process or dropped
    /// edge), post-delta ids.
    orphaned: Vec<ProcessId>,
    /// Edges dropped by process removals.
    dropped_edges: Vec<DroppedEdge>,
}

impl AppliedDelta {
    /// Translates a pre-delta process id; `None` if the delta removed
    /// the process.
    #[must_use]
    pub fn map_process(&self, old: ProcessId) -> Option<ProcessId> {
        self.remap.get(old.index()).copied().flatten()
    }

    /// The pre-delta id of post-delta process `new`; `None` if the
    /// delta added it.
    #[must_use]
    pub fn origin_of(&self, new: ProcessId) -> Option<ProcessId> {
        self.origin.get(new.index()).copied().flatten()
    }

    /// Processes added by the delta, in post-delta ids.
    #[must_use]
    pub fn added_processes(&self) -> &[ProcessId] {
        &self.added
    }

    /// Nodes that failed permanently.
    #[must_use]
    pub fn killed_nodes(&self) -> &[NodeId] {
        &self.killed_nodes
    }

    /// Nodes whose WCETs were scaled.
    #[must_use]
    pub fn degraded_nodes(&self) -> &[NodeId] {
        &self.degraded_nodes
    }

    /// Edges dropped because an endpoint was removed.
    #[must_use]
    pub fn dropped_edges(&self) -> &[DroppedEdge] {
        &self.dropped_edges
    }

    /// Classifies every decision of the pre-delta design against the
    /// post-delta model: which survive as-is and which are dirty
    /// (and why). `prev` must have one decision per **pre-delta**
    /// process.
    #[must_use]
    pub fn compatibility(&self, prev: &Design, fm: &FaultModel) -> CompatibilityReport {
        let mut dirty = Vec::new();
        let mut clean = Vec::new();
        let rescaled: BTreeSet<ProcessId> = self.rescaled.iter().copied().collect();
        let orphaned: BTreeSet<ProcessId> = self.orphaned.iter().copied().collect();
        let killed: BTreeSet<NodeId> = self.killed_nodes.iter().copied().collect();
        let degraded: BTreeSet<NodeId> = self.degraded_nodes.iter().copied().collect();
        for q_index in 0..self.graph.process_count() {
            let q = ProcessId::new(q_index as u32);
            let mut reasons = Vec::new();
            match self.origin_of(q) {
                None => reasons.push(DirtyReason::Added),
                Some(p) => {
                    let d = prev.decision(p);
                    for &node in &d.mapping {
                        if killed.contains(&node) {
                            reasons.push(DirtyReason::DeadNodeReference { node });
                        } else if !self.wcet.is_eligible(q, node) {
                            reasons.push(DirtyReason::IneligibleMapping { node });
                        } else if degraded.contains(&node) {
                            reasons.push(DirtyReason::DegradedNode { node });
                        }
                    }
                    if d.policy.replicas() > fm.max_replicas() {
                        reasons.push(DirtyReason::PolicyOutOfRange);
                    }
                    if rescaled.contains(&q) {
                        reasons.push(DirtyReason::RescaledWcet);
                    }
                    if orphaned.contains(&q) {
                        reasons.push(DirtyReason::LostNeighbor);
                    }
                }
            }
            if reasons.is_empty() {
                clean.push(q);
            } else {
                dirty.push(DirtyDecision {
                    process: q,
                    reasons,
                });
            }
        }
        let removed = self
            .remap
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_none())
            .map(|(i, _)| ProcessId::new(i as u32))
            .collect();
        CompatibilityReport {
            dirty,
            clean,
            removed,
            dropped_edges: self.dropped_edges.clone(),
        }
    }
}

/// Why a decision of the previous design cannot be trusted on the
/// post-delta problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtyReason {
    /// A replica was mapped on a node that failed permanently.
    DeadNodeReference {
        /// The dead node.
        node: NodeId,
    },
    /// A replica was mapped on a node where the process is no longer
    /// eligible (for a reason other than a recorded kill).
    IneligibleMapping {
        /// The ineligible node.
        node: NodeId,
    },
    /// A replica sits on a node whose WCETs were rescaled — the
    /// decision still validates, but its placement may now be poor.
    DegradedNode {
        /// The degraded node.
        node: NodeId,
    },
    /// The process's own WCET entries were rescaled.
    RescaledWcet,
    /// A predecessor or successor was removed (or an edge dropped),
    /// changing the communication pattern around this process.
    LostNeighbor,
    /// The replication level exceeds the fault model's maximum.
    PolicyOutOfRange,
    /// The process was added by the delta and has no prior decision.
    Added,
}

impl fmt::Display for DirtyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirtyReason::DeadNodeReference { node } => write!(f, "replica on dead node {node}"),
            DirtyReason::IneligibleMapping { node } => {
                write!(f, "replica on ineligible node {node}")
            }
            DirtyReason::DegradedNode { node } => write!(f, "replica on degraded node {node}"),
            DirtyReason::RescaledWcet => write!(f, "WCET rescaled"),
            DirtyReason::LostNeighbor => write!(f, "neighbor removed"),
            DirtyReason::PolicyOutOfRange => write!(f, "replication level out of range"),
            DirtyReason::Added => write!(f, "added by delta"),
        }
    }
}

/// One dirty decision and every reason it was flagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyDecision {
    /// The process, in post-delta ids.
    pub process: ProcessId,
    /// All reasons, in detection order.
    pub reasons: Vec<DirtyReason>,
}

/// Which decisions of the previous design survive the delta — the
/// input that lets repair search locally instead of globally.
#[derive(Debug, Clone, Default)]
pub struct CompatibilityReport {
    dirty: Vec<DirtyDecision>,
    clean: Vec<ProcessId>,
    removed: Vec<ProcessId>,
    dropped_edges: Vec<DroppedEdge>,
}

impl CompatibilityReport {
    /// Decisions that need revisiting, with reasons.
    #[must_use]
    pub fn dirty(&self) -> &[DirtyDecision] {
        &self.dirty
    }

    /// Post-delta ids of the dirty decisions, in id order.
    pub fn dirty_processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.dirty.iter().map(|d| d.process)
    }

    /// Decisions that survive untouched (post-delta ids).
    #[must_use]
    pub fn clean(&self) -> &[ProcessId] {
        &self.clean
    }

    /// Processes the delta removed (pre-delta ids).
    #[must_use]
    pub fn removed(&self) -> &[ProcessId] {
        &self.removed
    }

    /// Edges dropped by removals.
    #[must_use]
    pub fn dropped_edges(&self) -> &[DroppedEdge] {
        &self.dropped_edges
    }

    /// Returns `true` when every surviving decision is clean and
    /// nothing was added — the previous design carries over verbatim.
    #[must_use]
    pub fn fully_compatible(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Fraction of post-delta processes whose decision survives, in
    /// `0.0..=1.0` (1.0 on an empty problem).
    #[must_use]
    pub fn survival_ratio(&self) -> f64 {
        let total = self.dirty.len() + self.clean.len();
        if total == 0 {
            1.0
        } else {
            self.clean.len() as f64 / total as f64
        }
    }
}

/// Scales `t` to `percent`%, rounding up (a pessimistic WCET stays
/// pessimistic).
///
/// # Errors
///
/// [`ModelError::InvalidDelta`] on overflow.
fn scale_time(t: Time, percent: u32) -> Result<Time, ModelError> {
    let scaled = t
        .as_us()
        .checked_mul(u64::from(percent))
        .ok_or(ModelError::InvalidDelta {
            reason: "WCET scale overflows",
        })?;
    Ok(Time::from_us(scaled.div_ceil(100)))
}

/// The running state of a delta application: current graph + WCET
/// plus all bookkeeping in *current* ids, remapped on every removal.
struct DeltaState {
    graph: ProcessGraph,
    wcet: WcetTable,
    /// Pre-delta id -> current id.
    remap: Vec<Option<ProcessId>>,
    /// Current-id bookkeeping.
    added: Vec<ProcessId>,
    rescaled: BTreeSet<ProcessId>,
    orphaned: BTreeSet<ProcessId>,
    dropped_edges: Vec<(Option<ProcessId>, Option<ProcessId>)>,
    killed_nodes: Vec<NodeId>,
    degraded_nodes: Vec<NodeId>,
}

impl DeltaState {
    fn seed(graph: &ProcessGraph, wcet: &WcetTable) -> Self {
        DeltaState {
            graph: graph.clone(),
            wcet: wcet.clone(),
            remap: (0..graph.process_count())
                .map(|i| Some(ProcessId::new(i as u32)))
                .collect(),
            added: Vec::new(),
            rescaled: BTreeSet::new(),
            orphaned: BTreeSet::new(),
            dropped_edges: Vec::new(),
            killed_nodes: Vec::new(),
            degraded_nodes: Vec::new(),
        }
    }

    /// Resolves a pre-delta id against the running remap.
    fn resolve(&self, p: ProcessId) -> Result<ProcessId, ModelError> {
        self.remap
            .get(p.index())
            .copied()
            .flatten()
            .ok_or(ModelError::UnknownProcess { process: p })
    }

    fn check_node(&self, arch: &Architecture, node: NodeId) -> Result<(), ModelError> {
        if arch.contains(node) {
            Ok(())
        } else {
            Err(ModelError::UnknownNode { node })
        }
    }

    fn apply_op(&mut self, op: &DeltaOp, arch: &Architecture) -> Result<(), ModelError> {
        match op {
            DeltaOp::KillNode { node } => {
                self.check_node(arch, *node)?;
                let doomed: Vec<(ProcessId, NodeId)> = self
                    .wcet
                    .entries()
                    .filter(|&(_, n, _)| n == *node)
                    .map(|(p, n, _)| (p, n))
                    .collect();
                for (p, n) in doomed {
                    self.wcet.clear(p, n);
                }
                if !self.killed_nodes.contains(node) {
                    self.killed_nodes.push(*node);
                }
                Ok(())
            }
            DeltaOp::DegradeNode { node, percent } => {
                self.check_node(arch, *node)?;
                if *percent == 0 {
                    return Err(ModelError::InvalidDelta {
                        reason: "degrade percent must be non-zero",
                    });
                }
                let column: Vec<(ProcessId, Time)> = self
                    .wcet
                    .entries()
                    .filter(|&(_, n, _)| n == *node)
                    .map(|(p, _, t)| (p, t))
                    .collect();
                for (p, t) in column {
                    self.wcet.set(p, *node, scale_time(t, *percent)?);
                }
                if !self.degraded_nodes.contains(node) {
                    self.degraded_nodes.push(*node);
                }
                Ok(())
            }
            DeltaOp::RescaleWcet { process, percent } => {
                if *percent == 0 {
                    return Err(ModelError::InvalidDelta {
                        reason: "rescale percent must be non-zero",
                    });
                }
                let target = process.map(|p| self.resolve(p)).transpose()?;
                let entries: Vec<(ProcessId, NodeId, Time)> = self
                    .wcet
                    .entries()
                    .filter(|&(p, _, _)| target.is_none() || target == Some(p))
                    .collect();
                if let Some(t) = target {
                    if entries.is_empty() {
                        return Err(ModelError::Unmappable { process: t });
                    }
                    self.rescaled.insert(t);
                } else {
                    let all: Vec<ProcessId> = (0..self.graph.process_count())
                        .map(|i| ProcessId::new(i as u32))
                        .collect();
                    self.rescaled.extend(all);
                }
                for (p, n, t) in entries {
                    self.wcet.set(p, n, scale_time(t, *percent)?);
                }
                Ok(())
            }
            DeltaOp::AddProcess(spec) => self.add_process(spec, arch),
            DeltaOp::RemoveProcess { process } => {
                let cur = self.resolve(*process)?;
                self.remove_process(cur);
                Ok(())
            }
        }
    }

    fn add_process(&mut self, spec: &NewProcess, arch: &Architecture) -> Result<(), ModelError> {
        // Resolve edge endpoints *before* mutating anything, so a
        // failed op leaves no partial state behind it in the error
        // message (the whole delta is rejected anyway).
        let mut inputs = Vec::with_capacity(spec.inputs.len());
        for &(from, message) in &spec.inputs {
            inputs.push((self.resolve(from)?, message));
        }
        let mut outputs = Vec::with_capacity(spec.outputs.len());
        for &(to, message) in &spec.outputs {
            outputs.push((self.resolve(to)?, message));
        }
        for &(node, _) in &spec.wcet {
            self.check_node(arch, node)?;
        }
        let live: Vec<(NodeId, Time)> = spec
            .wcet
            .iter()
            .copied()
            .filter(|(n, _)| !self.killed_nodes.contains(n))
            .collect();

        let q = self.graph.add_process();
        if live.is_empty() {
            return Err(ModelError::Unmappable { process: q });
        }
        {
            let proc = self.graph.process_mut(q);
            proc.name.clone_from(&spec.name);
            proc.release = spec.release;
            proc.deadline = spec.deadline;
        }
        for (from, message) in inputs {
            self.graph.add_edge(from, q, message)?;
            self.orphaned.remove(&from);
        }
        for (to, message) in outputs {
            self.graph.add_edge(q, to, message)?;
        }
        for (node, t) in live {
            self.wcet.set(q, node, t);
        }
        self.added.push(q);
        Ok(())
    }

    /// Removes current process `c`: rebuilds the graph with ids above
    /// `c` shifted down, drops `c`'s edges and remaps all
    /// bookkeeping.
    fn remove_process(&mut self, c: ProcessId) {
        let shift = |p: ProcessId| -> Option<ProcessId> {
            use std::cmp::Ordering;
            match p.index().cmp(&c.index()) {
                Ordering::Less => Some(p),
                Ordering::Equal => None,
                Ordering::Greater => Some(ProcessId::new(p.raw() - 1)),
            }
        };

        let mut graph = ProcessGraph::new(self.graph.id());
        for proc in self.graph.processes() {
            if proc.id == c {
                continue;
            }
            let q = graph.add_process();
            let dst = graph.process_mut(q);
            dst.name.clone_from(&proc.name);
            dst.release = proc.release;
            dst.deadline = proc.deadline;
        }
        // Survivor ids inserted below are already post-shift, so they
        // must not run through the bookkeeping remap again.
        let mut new_dropped = Vec::new();
        let mut new_orphans = Vec::new();
        for edge in self.graph.edges() {
            match (shift(edge.from), shift(edge.to)) {
                (Some(from), Some(to)) => {
                    graph
                        .add_edge(from, to, edge.message)
                        .expect("surviving edges of a valid graph stay valid");
                }
                (from, to) => {
                    new_dropped.push((from, to));
                    if let Some(s) = from.or(to) {
                        new_orphans.push(s);
                    }
                }
            }
        }
        self.graph = graph;

        let mut wcet = WcetTable::new();
        wcet.extend(
            self.wcet
                .entries()
                .filter_map(|(p, n, t)| shift(p).map(|q| (q, n, t))),
        );
        self.wcet = wcet;

        for slot in &mut self.remap {
            *slot = slot.and_then(shift);
        }
        self.added = self.added.iter().copied().filter_map(shift).collect();
        self.rescaled = self.rescaled.iter().copied().filter_map(shift).collect();
        self.orphaned = self.orphaned.iter().copied().filter_map(shift).collect();
        for (from, to) in &mut self.dropped_edges {
            *from = from.and_then(shift);
            *to = to.and_then(shift);
        }
        self.orphaned.extend(new_orphans);
        self.dropped_edges.extend(new_dropped);
    }

    fn finish(self, arch: &Architecture) -> Result<AppliedDelta, ModelError> {
        self.graph.validate()?;
        self.wcet
            .validate(self.graph.processes().iter().map(|p| p.id), arch)?;
        let mut origin = vec![None; self.graph.process_count()];
        for (old, new) in self.remap.iter().enumerate() {
            if let Some(q) = new {
                origin[q.index()] = Some(ProcessId::new(old as u32));
            }
        }
        Ok(AppliedDelta {
            graph: self.graph,
            wcet: self.wcet,
            remap: self.remap,
            origin,
            added: self.added,
            killed_nodes: self.killed_nodes,
            degraded_nodes: self.degraded_nodes,
            rescaled: self.rescaled.into_iter().collect(),
            orphaned: self.orphaned.into_iter().collect(),
            dropped_edges: self
                .dropped_edges
                .into_iter()
                .map(|(from, to)| DroppedEdge { from, to })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::ProcessDesign;
    use crate::policy::FtPolicy;

    /// Fig. 4's diamond on two nodes, everything eligible everywhere.
    fn diamond() -> (ProcessGraph, Architecture, WcetTable) {
        let mut g = ProcessGraph::new(0.into());
        let p: Vec<ProcessId> = (0..4).map(|_| g.add_process()).collect();
        g.add_edge(p[0], p[1], Message::new(4)).unwrap();
        g.add_edge(p[0], p[2], Message::new(4)).unwrap();
        g.add_edge(p[1], p[3], Message::new(4)).unwrap();
        g.add_edge(p[2], p[3], Message::new(4)).unwrap();
        let arch = Architecture::with_node_count(2);
        let mut wcet = WcetTable::new();
        for &q in &p {
            wcet.set(q, 0.into(), Time::from_ms(40));
            wcet.set(q, 1.into(), Time::from_ms(50));
        }
        (g, arch, wcet)
    }

    fn all_primary_design(n: usize, node: NodeId, fm: &FaultModel) -> Design {
        Design::from_decisions(
            (0..n)
                .map(|i| {
                    ProcessDesign::new(
                        FtPolicy::new(ProcessId::new(i as u32), 1, fm).unwrap(),
                        vec![node],
                    )
                    .unwrap()
                })
                .collect(),
        )
    }

    #[test]
    fn kill_node_strips_column_and_flags_decisions() {
        let (g, arch, wcet) = diamond();
        let fm = FaultModel::new(1, Time::from_ms(10));
        let delta = ProblemDelta::kill_node(1.into());
        let applied = delta.apply(&g, &arch, &wcet).unwrap();
        assert_eq!(applied.killed_nodes(), &[NodeId::new(1)]);
        for i in 0..4u32 {
            assert!(!applied.wcet.is_eligible(i.into(), 1.into()));
            assert!(applied.wcet.is_eligible(i.into(), 0.into()));
        }
        // A design living on N1 is fully dirty; one on N0 is clean.
        let on_dead = all_primary_design(4, 1.into(), &fm);
        let report = applied.compatibility(&on_dead, &fm);
        assert_eq!(report.dirty().len(), 4);
        assert!(report.dirty().iter().all(|d| d.reasons
            == vec![DirtyReason::DeadNodeReference {
                node: NodeId::new(1)
            }]));
        let on_live = all_primary_design(4, 0.into(), &fm);
        let report = applied.compatibility(&on_live, &fm);
        assert!(report.fully_compatible());
        assert_eq!(report.clean().len(), 4);
        assert!((report.survival_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kill_last_eligible_node_is_unmappable() {
        let (g, arch, mut wcet) = diamond();
        // P3 only runs on N1.
        wcet.clear(3.into(), 0.into());
        let err = ProblemDelta::kill_node(1.into())
            .apply(&g, &arch, &wcet)
            .unwrap_err();
        assert!(matches!(err, ModelError::Unmappable { process } if process == ProcessId::new(3)));
    }

    #[test]
    fn degrade_scales_column_rounding_up() {
        let (g, arch, wcet) = diamond();
        let applied = ProblemDelta::degrade_node(1.into(), 150)
            .apply(&g, &arch, &wcet)
            .unwrap();
        assert_eq!(
            applied.wcet.get(0.into(), 1.into()),
            Some(Time::from_ms(75))
        );
        assert_eq!(
            applied.wcet.get(0.into(), 0.into()),
            Some(Time::from_ms(40))
        );
        let fm = FaultModel::new(1, Time::from_ms(10));
        let on_degraded = all_primary_design(4, 1.into(), &fm);
        let report = applied.compatibility(&on_degraded, &fm);
        assert_eq!(report.dirty().len(), 4);
        assert!(matches!(
            report.dirty()[0].reasons[0],
            DirtyReason::DegradedNode { .. }
        ));
    }

    #[test]
    fn rescale_one_process() {
        let (g, arch, wcet) = diamond();
        let delta = ProblemDelta::new().and(DeltaOp::RescaleWcet {
            process: Some(2.into()),
            percent: 120,
        });
        let applied = delta.apply(&g, &arch, &wcet).unwrap();
        assert_eq!(
            applied.wcet.get(2.into(), 0.into()),
            Some(Time::from_ms(48))
        );
        assert_eq!(
            applied.wcet.get(1.into(), 0.into()),
            Some(Time::from_ms(40))
        );
        let fm = FaultModel::new(1, Time::from_ms(10));
        let report = applied.compatibility(&all_primary_design(4, 0.into(), &fm), &fm);
        assert_eq!(report.dirty().len(), 1);
        assert_eq!(report.dirty()[0].process, ProcessId::new(2));
    }

    #[test]
    fn zero_percent_rejected() {
        let (g, arch, wcet) = diamond();
        let err = ProblemDelta::rescale_wcet(0)
            .apply(&g, &arch, &wcet)
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidDelta { .. }));
    }

    #[test]
    fn remove_process_shifts_ids_and_orphans_neighbors() {
        let (g, arch, wcet) = diamond();
        let fm = FaultModel::new(1, Time::from_ms(10));
        let applied = ProblemDelta::remove_process(1.into())
            .apply(&g, &arch, &wcet)
            .unwrap();
        assert_eq!(applied.graph.process_count(), 3);
        // P0 keeps its id, P2 -> P1, P3 -> P2.
        assert_eq!(applied.map_process(0.into()), Some(ProcessId::new(0)));
        assert_eq!(applied.map_process(1.into()), None);
        assert_eq!(applied.map_process(2.into()), Some(ProcessId::new(1)));
        assert_eq!(applied.map_process(3.into()), Some(ProcessId::new(2)));
        assert_eq!(applied.origin_of(2.into()), Some(ProcessId::new(3)));
        // Edges P0->P1 and P1->P3 dropped; P0->P2 and P2->P3 survive.
        assert_eq!(applied.dropped_edges().len(), 2);
        assert_eq!(applied.graph.edges().len(), 2);
        // WCET remapped with the ids.
        assert!(applied.wcet.is_eligible(2.into(), 0.into()));
        assert!(!applied.wcet.is_eligible(3.into(), 0.into()));
        // P0 and (new) P2 lost a neighbor -> dirty.
        let report = applied.compatibility(&all_primary_design(4, 0.into(), &fm), &fm);
        let dirty: Vec<ProcessId> = report.dirty_processes().collect();
        assert_eq!(dirty, vec![ProcessId::new(0), ProcessId::new(2)]);
        assert_eq!(report.removed(), &[ProcessId::new(1)]);
        assert!(report
            .dirty()
            .iter()
            .all(|d| d.reasons.contains(&DirtyReason::LostNeighbor)));
    }

    #[test]
    fn add_process_wires_edges_and_marks_added() {
        let (g, arch, wcet) = diamond();
        let fm = FaultModel::new(1, Time::from_ms(10));
        let mut spec = NewProcess::named(
            "P_new",
            vec![(0.into(), Time::from_ms(30)), (1.into(), Time::from_ms(35))],
        );
        spec.inputs.push((3.into(), Message::new(2)));
        let applied = ProblemDelta::add_process(spec)
            .apply(&g, &arch, &wcet)
            .unwrap();
        assert_eq!(applied.graph.process_count(), 5);
        assert_eq!(applied.added_processes(), &[ProcessId::new(4)]);
        assert!(applied.wcet.is_eligible(4.into(), 0.into()));
        assert_eq!(applied.graph.edges().len(), 5);
        let report = applied.compatibility(&all_primary_design(4, 0.into(), &fm), &fm);
        assert_eq!(report.dirty().len(), 1);
        assert_eq!(report.dirty()[0].reasons, vec![DirtyReason::Added]);
    }

    #[test]
    fn add_process_on_killed_node_only_is_unmappable() {
        let (g, arch, wcet) = diamond();
        let delta = ProblemDelta::kill_node(1.into()).and(DeltaOp::AddProcess(Box::new(
            NewProcess::named("P_dead", vec![(1.into(), Time::from_ms(30))]),
        )));
        let err = delta.apply(&g, &arch, &wcet).unwrap_err();
        assert!(matches!(err, ModelError::Unmappable { .. }));
    }

    #[test]
    fn add_edge_cycle_rejected() {
        let (g, arch, wcet) = diamond();
        // New process receiving from the sink and feeding the source
        // closes a cycle.
        let mut spec = NewProcess::named("P_loop", vec![(0.into(), Time::from_ms(10))]);
        spec.inputs.push((3.into(), Message::new(2)));
        spec.outputs.push((0.into(), Message::new(2)));
        let err = ProblemDelta::add_process(spec)
            .apply(&g, &arch, &wcet)
            .unwrap_err();
        assert!(matches!(err, ModelError::CyclicGraph { .. }));
    }

    #[test]
    fn composite_delta_remaps_through_removal() {
        let (g, arch, wcet) = diamond();
        // Remove P1, then rescale (pre-delta) P3: the rescale must
        // land on the shifted id.
        let delta = ProblemDelta::remove_process(1.into()).and(DeltaOp::RescaleWcet {
            process: Some(3.into()),
            percent: 200,
        });
        let applied = delta.apply(&g, &arch, &wcet).unwrap();
        assert_eq!(
            applied.wcet.get(2.into(), 0.into()),
            Some(Time::from_ms(80))
        );
    }

    #[test]
    fn unknown_references_rejected() {
        let (g, arch, wcet) = diamond();
        assert!(matches!(
            ProblemDelta::kill_node(9.into())
                .apply(&g, &arch, &wcet)
                .unwrap_err(),
            ModelError::UnknownNode { .. }
        ));
        assert!(matches!(
            ProblemDelta::remove_process(9.into())
                .apply(&g, &arch, &wcet)
                .unwrap_err(),
            ModelError::UnknownProcess { .. }
        ));
        // Referencing a process removed earlier in the same delta.
        let delta = ProblemDelta::remove_process(1.into()).and(DeltaOp::RescaleWcet {
            process: Some(1.into()),
            percent: 150,
        });
        assert!(matches!(
            delta.apply(&g, &arch, &wcet).unwrap_err(),
            ModelError::UnknownProcess { .. }
        ));
    }

    #[test]
    fn display_round_trip_is_readable() {
        let delta = ProblemDelta::kill_node(1.into()).and(DeltaOp::RescaleWcet {
            process: None,
            percent: 120,
        });
        assert_eq!(format!("{delta}"), "kill-node N1 + rescale-wcet to 120%");
        assert_eq!(format!("{}", ProblemDelta::new()), "(identity)");
    }
}
