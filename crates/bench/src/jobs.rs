//! Sweep job adapters: the bridge between `ftdes-serve`'s generic
//! crash-safe job graph and this crate's experiment harness.
//!
//! A [`SweepSpec`] expands into a DAG of [`JobSpec`]s
//! (generate → optimize → faultsim/repair → aggregate) via
//! [`SweepSpec::jobs`], and [`SweepExec`] executes them. Two sweep
//! shapes are supported:
//!
//! * [`ChiSweep`] — the cptable-style checkpoint-overhead trade-off:
//!   per seed, a `generate` job fingerprints the workload, `optimize`
//!   jobs solve MX/MR references and per-χ MCX/MCXR cells, a
//!   `faultsim` job Monte-Carlo-validates the MX reference design
//!   against its analytic bound, and one `aggregate` folds everything
//!   into the table rows;
//! * [`RepairSweep`] — the repairbench-style degrade-and-repair
//!   study: per (family, seed), `generate` → `optimize` (intact
//!   MXR solve) → `repair` (kill the most-loaded node, ladder repair,
//!   from-scratch reference) → `aggregate`.
//!
//! **Determinism contract.** Every job runs under
//! [`iteration_config`] — no wall-clock
//! limits anywhere — and job results carry no timestamps or machine
//! state, so a job re-executed after a crash commits exactly the
//! bytes the uncrashed run would have. That is the property the
//! crash-matrix suites assert. Evaluation caches are shared through a
//! [`CachePool`] keyed by problem fingerprint: re-runs and sibling
//! jobs of the same workload warm-start each other (the cache changes
//! only *speed*, never results).

use std::time::Duration;

use ftdes_core::repair::{apply_delta, repair_with_cache, RepairBudget};
use ftdes_core::{optimize_with_cache, CachePool, Problem, Strategy};
use ftdes_faultsim::{length_distribution, most_loaded_node};
use ftdes_gen::WorkloadParams;
use ftdes_model::delta::ProblemDelta;
use ftdes_model::design::{Design, ProcessDesign};
use ftdes_model::ids::NodeId;
use ftdes_model::policy::FtPolicy;
use ftdes_model::time::Time;
use ftdes_serve::{DepResult, JobExec, JobSpec};
use serde::Value;

use crate::{comm_heavy_problem, iteration_config, synthetic_problem, PolicyMix};

/// The cptable-style checkpoint-overhead (χ) sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChiSweep {
    /// Processes per synthetic application.
    pub processes: u64,
    /// Computation nodes.
    pub nodes: u64,
    /// Transient faults tolerated per cycle (`k`).
    pub faults: u64,
    /// Fault detection overhead µ in milliseconds.
    pub mu_ms: u64,
    /// Random applications (seeds 0..seeds).
    pub seeds: u64,
    /// χ rows, each as permille of the family's mean WCET.
    pub chi_permille: Vec<u64>,
    /// Checkpoint axis ceiling for the MCX/MCXR cells.
    pub max_checkpoints: u64,
    /// Tabu iteration budget per optimize job (bit-identity knob —
    /// see the module docs).
    pub max_iterations: u64,
    /// Monte-Carlo scenarios per faultsim job.
    pub faultsim_samples: u64,
}

/// The repairbench-style degrade-and-repair sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairSweep {
    /// Processes per paper-family application.
    pub processes: u64,
    /// Processes per communication-heavy application.
    pub comm_processes: u64,
    /// Computation nodes.
    pub nodes: u64,
    /// Transient faults tolerated per cycle (`k`).
    pub faults: u64,
    /// Fault detection overhead µ in milliseconds.
    pub mu_ms: u64,
    /// Random applications (seeds 0..seeds).
    pub seeds: u64,
    /// Tabu iteration budget per solve.
    pub max_iterations: u64,
}

/// A parsed sweep specification (see `ftdes-io` for the text format).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// Checkpoint-overhead trade-off sweep.
    Chi(ChiSweep),
    /// Degrade-and-repair sweep.
    Repair(RepairSweep),
}

impl SweepSpec {
    /// The sweep's kind name, recorded in the store's `Init` header.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SweepSpec::Chi(_) => "chi",
            SweepSpec::Repair(_) => "repair",
        }
    }

    /// Sanity-checks the parameter ranges.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        let (seeds, iterations) = match self {
            SweepSpec::Chi(s) => {
                if s.chi_permille.is_empty() {
                    return Err("chi sweep needs at least one chi row".into());
                }
                if s.max_checkpoints == 0 {
                    return Err("max_checkpoints must be at least 1".into());
                }
                if s.processes == 0 || s.nodes == 0 {
                    return Err("processes and nodes must be positive".into());
                }
                (s.seeds, s.max_iterations)
            }
            SweepSpec::Repair(s) => {
                if s.processes == 0 || s.comm_processes == 0 || s.nodes == 0 {
                    return Err("process and node counts must be positive".into());
                }
                (s.seeds, s.max_iterations)
            }
        };
        if seeds == 0 {
            return Err("seeds must be at least 1".into());
        }
        if iterations == 0 {
            return Err("max_iterations must be at least 1".into());
        }
        Ok(())
    }

    /// Expands the sweep into its job DAG.
    #[must_use]
    pub fn jobs(&self) -> Vec<JobSpec> {
        match self {
            SweepSpec::Chi(s) => chi_jobs(s),
            SweepSpec::Repair(s) => repair_jobs(s),
        }
    }
}

/// χ of one permille row, in µs against the paper family's mean WCET.
fn chi_us(spec: &ChiSweep, permille: u64) -> u64 {
    let p = WorkloadParams::paper(spec.processes as usize);
    let mean_wcet_us = (p.wcet_min.as_us() + p.wcet_max.as_us()) / 2;
    mean_wcet_us * permille / 1000
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

struct DagBuilder {
    jobs: Vec<JobSpec>,
}

impl DagBuilder {
    fn new() -> Self {
        DagBuilder { jobs: Vec::new() }
    }

    fn push(&mut self, name: String, kind: &str, params: Value, deps: Vec<u64>) -> u64 {
        let id = self.jobs.len() as u64 + 1;
        self.jobs.push(JobSpec {
            id,
            name,
            kind: kind.to_owned(),
            params,
            deps,
        });
        id
    }
}

/// The common workload parameters every job of a sweep carries, so
/// each job is executable from its own spec alone.
fn workload_params(
    family: &str,
    seed: u64,
    processes: u64,
    nodes: u64,
    faults: u64,
    mu_ms: u64,
) -> Vec<(&'static str, Value)> {
    vec![
        ("family", Value::Str(family.to_owned())),
        ("seed", Value::U64(seed)),
        ("processes", Value::U64(processes)),
        ("nodes", Value::U64(nodes)),
        ("faults", Value::U64(faults)),
        ("mu_ms", Value::U64(mu_ms)),
    ]
}

fn chi_jobs(spec: &ChiSweep) -> Vec<JobSpec> {
    let mut dag = DagBuilder::new();
    let mut agg_deps = Vec::new();
    for seed in 0..spec.seeds {
        let base = workload_params(
            "paper",
            seed,
            spec.processes,
            spec.nodes,
            spec.faults,
            spec.mu_ms,
        );
        let gen = dag.push(
            format!("gen/s{seed}"),
            "generate",
            obj(base.clone()),
            vec![],
        );
        let opt = |role: &str, strategy: &str, chi: u64, ckpts: u64, dag: &mut DagBuilder| {
            let mut params = base.clone();
            params.extend([
                ("role", Value::Str(role.to_owned())),
                ("strategy", Value::Str(strategy.to_owned())),
                ("chi_us", Value::U64(chi)),
                ("max_checkpoints", Value::U64(ckpts)),
                ("max_iterations", Value::U64(spec.max_iterations)),
            ]);
            let name = if chi == 0 && ckpts == 1 {
                format!("opt/s{seed}/{role}")
            } else {
                format!("opt/s{seed}/chi{chi}/{role}")
            };
            dag.push(name, "optimize", obj(params), vec![gen])
        };
        // χ-independent references.
        let mx = opt("mx", "mx", 0, 1, &mut dag);
        agg_deps.push(mx);
        agg_deps.push(opt("mr", "mr", 0, 1, &mut dag));
        // Per-χ cells.
        for &permille in &spec.chi_permille {
            let chi = chi_us(spec, permille);
            agg_deps.push(opt("mcx", "mx", chi, spec.max_checkpoints, &mut dag));
            agg_deps.push(opt("mcxr", "mxr", chi, spec.max_checkpoints, &mut dag));
        }
        // Monte-Carlo validation of the MX reference design.
        let mut sim_params = base.clone();
        sim_params.extend([
            ("samples", Value::U64(spec.faultsim_samples)),
            ("chi_us", Value::U64(0)),
            ("max_checkpoints", Value::U64(1)),
        ]);
        agg_deps.push(dag.push(
            format!("sim/s{seed}"),
            "faultsim",
            obj(sim_params),
            vec![mx],
        ));
    }
    dag.push(
        "agg".into(),
        "aggregate",
        obj(vec![
            ("sweep", Value::Str("chi".into())),
            ("seeds", Value::U64(spec.seeds)),
        ]),
        agg_deps,
    );
    dag.jobs
}

fn repair_jobs(spec: &RepairSweep) -> Vec<JobSpec> {
    let mut dag = DagBuilder::new();
    let mut agg_deps = Vec::new();
    for seed in 0..spec.seeds {
        for family in ["paper", "comm_heavy"] {
            let processes = if family == "paper" {
                spec.processes
            } else {
                spec.comm_processes
            };
            let base =
                workload_params(family, seed, processes, spec.nodes, spec.faults, spec.mu_ms);
            let gen = dag.push(
                format!("gen/{family}/s{seed}"),
                "generate",
                obj(base.clone()),
                vec![],
            );
            let mut opt_params = base.clone();
            opt_params.extend([
                ("role", Value::Str("intact".to_owned())),
                ("strategy", Value::Str("mxr".to_owned())),
                ("chi_us", Value::U64(0)),
                ("max_checkpoints", Value::U64(1)),
                ("max_iterations", Value::U64(spec.max_iterations)),
            ]);
            let intact = dag.push(
                format!("opt/{family}/s{seed}"),
                "optimize",
                obj(opt_params),
                vec![gen],
            );
            let mut rep_params = base.clone();
            rep_params.extend([
                ("chi_us", Value::U64(0)),
                ("max_checkpoints", Value::U64(1)),
                ("max_iterations", Value::U64(spec.max_iterations)),
            ]);
            agg_deps.push(dag.push(
                format!("repair/{family}/s{seed}"),
                "repair",
                obj(rep_params),
                vec![intact],
            ));
        }
    }
    dag.push(
        "agg".into(),
        "aggregate",
        obj(vec![
            ("sweep", Value::Str("repair".into())),
            ("seeds", Value::U64(spec.seeds)),
        ]),
        agg_deps,
    );
    dag.jobs
}

/// Executes sweep jobs against the deterministic optimizer, sharing
/// evaluation caches across jobs through a [`CachePool`].
#[derive(Debug, Default)]
pub struct SweepExec {
    pool: CachePool,
}

impl SweepExec {
    /// A fresh executor with an empty cache pool.
    #[must_use]
    pub fn new() -> Self {
        SweepExec::default()
    }
}

fn get_u64(params: &Value, key: &str) -> Result<u64, String> {
    params
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("job params missing integer field {key:?}"))
}

fn get_str<'v>(params: &'v Value, key: &str) -> Result<&'v str, String> {
    params
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("job params missing string field {key:?}"))
}

/// Rebuilds the problem a job's parameters describe. Generation is
/// deterministic per seed, so every job of a seed reconstructs the
/// identical workload — the generate job's fingerprint pins that down.
fn build_problem(params: &Value) -> Result<Problem, String> {
    let family = get_str(params, "family")?;
    let seed = get_u64(params, "seed")?;
    let processes = get_u64(params, "processes")? as usize;
    let nodes = get_u64(params, "nodes")? as usize;
    let faults = get_u64(params, "faults")? as u32;
    let mu = Time::from_ms(get_u64(params, "mu_ms")?);
    let base = match family {
        "paper" => synthetic_problem(processes, nodes, faults, mu, seed),
        "comm_heavy" => comm_heavy_problem(processes, nodes, faults, mu, seed),
        other => return Err(format!("unknown workload family {other:?}")),
    };
    let chi = Time::from_us(params.get("chi_us").and_then(Value::as_u64).unwrap_or(0));
    let ckpts = params
        .get("max_checkpoints")
        .and_then(Value::as_u64)
        .unwrap_or(1) as u32;
    let fm = base.fault_model().with_checkpoint_overhead(chi);
    Ok(base.with_fault_model(fm).with_max_checkpoints(ckpts))
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    match name {
        "mxr" => Ok(Strategy::Mxr),
        "mx" => Ok(Strategy::Mx),
        "mr" => Ok(Strategy::Mr),
        "sfx" => Ok(Strategy::Sfx),
        "nft" => Ok(Strategy::Nft),
        other => Err(format!("unknown strategy {other:?}")),
    }
}

/// Serializes a design as `[[replicas, checkpoints, [nodes...]], ...]`
/// — enough to reconstruct it under the job's fault model.
fn encode_design(design: &Design) -> Value {
    Value::Array(
        design
            .iter()
            .map(|(_, d)| {
                Value::Array(vec![
                    Value::U64(u64::from(d.policy.replicas())),
                    Value::U64(u64::from(d.policy.checkpoints())),
                    Value::Array(
                        d.mapping
                            .iter()
                            .map(|n| Value::U64(n.index() as u64))
                            .collect(),
                    ),
                ])
            })
            .collect(),
    )
}

fn decode_design(value: &Value, problem: &Problem) -> Result<Design, String> {
    let Value::Array(rows) = value else {
        return Err("design is not an array".into());
    };
    let fm = problem.fault_model();
    let mut decisions = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let Value::Array(parts) = row else {
            return Err(format!("design row {i} is not an array"));
        };
        let [replicas, checkpoints, mapping] = parts.as_slice() else {
            return Err(format!("design row {i} is not a triple"));
        };
        let replicas = replicas
            .as_u64()
            .ok_or_else(|| format!("design row {i}: bad replica count"))?
            as u32;
        let checkpoints = checkpoints
            .as_u64()
            .ok_or_else(|| format!("design row {i}: bad checkpoint count"))?
            as u32;
        let Value::Array(nodes) = mapping else {
            return Err(format!("design row {i}: mapping is not an array"));
        };
        let mapping = nodes
            .iter()
            .map(|n| {
                n.as_u64()
                    .map(|v| NodeId::new(v as u32))
                    .ok_or_else(|| format!("design row {i}: bad node id"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let policy = FtPolicy::checkpointed((i as u32).into(), replicas, checkpoints, fm)
            .map_err(|e| format!("design row {i}: {e}"))?;
        decisions
            .push(ProcessDesign::new(policy, mapping).map_err(|e| format!("design row {i}: {e}"))?);
    }
    Ok(Design::from_decisions(decisions))
}

/// An effectively-unlimited wall-clock allowance: sweep jobs bound
/// their searches by iterations alone, so every Duration-typed budget
/// is set far beyond what the iteration caps allow the search to use.
const UNLIMITED: Duration = Duration::from_secs(24 * 60 * 60);

impl SweepExec {
    fn run_generate(&self, params: &Value) -> Result<Value, String> {
        let problem = build_problem(params)?;
        problem
            .graph()
            .validate()
            .map_err(|e| format!("generated workload invalid: {e}"))?;
        Ok(obj(vec![
            (
                "problem_fp",
                Value::U64(ftdes_core::cache::problem_fingerprint(&problem)),
            ),
            ("processes", Value::U64(problem.process_count() as u64)),
            ("edges", Value::U64(problem.graph().edges().len() as u64)),
        ]))
    }

    fn run_optimize(&self, params: &Value) -> Result<Value, String> {
        let problem = build_problem(params)?;
        let strategy = parse_strategy(get_str(params, "strategy")?)?;
        let cfg = iteration_config(get_u64(params, "max_iterations")? as usize);
        let cache = self.pool.for_problem(&problem);
        let outcome = optimize_with_cache(&problem, strategy, &cfg, &cache)
            .map_err(|e| format!("{strategy} search failed: {e}"))?;
        let mut mix = PolicyMix::default();
        mix.add_design(&outcome.design);
        Ok(obj(vec![
            (
                "role",
                Value::Str(get_str(params, "role").unwrap_or("opt").to_owned()),
            ),
            ("seed", Value::U64(get_u64(params, "seed")?)),
            ("chi_us", Value::U64(get_u64(params, "chi_us")?)),
            ("length_us", Value::U64(outcome.length().as_us())),
            ("design", encode_design(&outcome.design)),
            (
                "mix",
                Value::Array(
                    [mix.reexec, mix.checkpointed, mix.replicated, mix.mixed]
                        .into_iter()
                        .map(|n| Value::U64(n as u64))
                        .collect(),
                ),
            ),
        ]))
    }

    fn run_faultsim(&self, params: &Value, deps: &[DepResult]) -> Result<Value, String> {
        let problem = build_problem(params)?;
        let opt = deps
            .iter()
            .find(|d| d.kind == "optimize")
            .ok_or("faultsim job needs an optimize dependency")?;
        let design = decode_design(&opt.result["design"], &problem)?;
        let schedule = problem
            .evaluate(&design)
            .map_err(|e| format!("re-evaluating optimized design: {e}"))?;
        let samples = get_u64(params, "samples")?.max(1) as usize;
        let seed = get_u64(params, "seed")?;
        let dist = length_distribution(
            &schedule,
            problem.graph(),
            problem.fault_model(),
            samples,
            seed,
        );
        Ok(obj(vec![
            ("seed", Value::U64(seed)),
            ("samples", Value::U64(dist.samples as u64)),
            ("bound_us", Value::U64(dist.bound.as_us())),
            ("max_us", Value::U64(dist.max.as_us())),
            ("mean_us", Value::U64(dist.mean.as_us())),
            (
                "deadline_miss_runs",
                Value::U64(dist.deadline_miss_runs as u64),
            ),
        ]))
    }

    fn run_repair(&self, params: &Value, deps: &[DepResult]) -> Result<Value, String> {
        let problem = build_problem(params)?;
        let intact = deps
            .iter()
            .find(|d| d.kind == "optimize")
            .ok_or("repair job needs an optimize dependency")?;
        let design = decode_design(&intact.result["design"], &problem)?;
        let schedule = problem
            .evaluate(&design)
            .map_err(|e| format!("re-evaluating intact design: {e}"))?;
        let victim = most_loaded_node(&schedule).ok_or("intact schedule is empty")?;
        let delta = ProblemDelta::kill_node(victim);
        let cfg = iteration_config(get_u64(params, "max_iterations")? as usize);
        let budget = RepairBudget {
            localized: UNLIMITED,
            warm: UNLIMITED,
            scratch: UNLIMITED,
        };
        let cache = self.pool.for_problem(&problem);
        let repaired = repair_with_cache(&problem, &design, &delta, &budget, &cfg, &cache)
            .map_err(|e| format!("repair failed: {e}"))?;
        let (degraded, _) =
            apply_delta(&problem, &delta).map_err(|e| format!("apply_delta failed: {e}"))?;
        let scratch_cache = self.pool.for_problem(&degraded);
        let scratch = optimize_with_cache(&degraded, Strategy::Mxr, &cfg, &scratch_cache)
            .map_err(|e| format!("scratch re-solve failed: {e}"))?;
        let repair_len = repaired.length().as_us();
        let scratch_len = scratch.length().as_us();
        Ok(obj(vec![
            ("family", Value::Str(get_str(params, "family")?.to_owned())),
            ("seed", Value::U64(get_u64(params, "seed")?)),
            ("killed", Value::Str(victim.to_string())),
            ("rung", Value::Str(repaired.rung.to_string())),
            ("schedulable", Value::Bool(repaired.is_schedulable())),
            ("repair_length_us", Value::U64(repair_len)),
            ("scratch_length_us", Value::U64(scratch_len)),
            (
                "length_ratio",
                Value::F64(repair_len as f64 / scratch_len.max(1) as f64),
            ),
        ]))
    }

    fn run_aggregate(&self, params: &Value, deps: &[DepResult]) -> Result<Value, String> {
        match get_str(params, "sweep")? {
            "chi" => aggregate_chi(deps),
            "repair" => aggregate_repair(deps),
            other => Err(format!("unknown sweep kind {other:?}")),
        }
    }
}

impl JobExec for SweepExec {
    fn execute(&self, spec: &JobSpec, deps: &[DepResult]) -> Result<Value, String> {
        match spec.kind.as_str() {
            "generate" => self.run_generate(&spec.params),
            "optimize" => self.run_optimize(&spec.params),
            "faultsim" => self.run_faultsim(&spec.params, deps),
            "repair" => self.run_repair(&spec.params, deps),
            "aggregate" => self.run_aggregate(&spec.params, deps),
            other => Err(format!("unknown job kind {other:?}")),
        }
    }
}

/// Mean of the `length_us` fields of the optimize results matching
/// `role` (and `chi_us`, when given).
fn mean_lengths(deps: &[DepResult], role: &str, chi: Option<u64>) -> f64 {
    let lengths: Vec<f64> = deps
        .iter()
        .filter(|d| d.kind == "optimize" && d.result["role"] == *role)
        .filter(|d| chi.is_none_or(|c| d.result["chi_us"].as_u64() == Some(c)))
        .filter_map(|d| d.result["length_us"].as_u64())
        .map(|l| l as f64)
        .collect();
    lengths.iter().sum::<f64>() / lengths.len().max(1) as f64
}

fn mix_of(deps: &[DepResult], role: &str, chi: u64) -> [u64; 4] {
    let mut total = [0u64; 4];
    for d in deps
        .iter()
        .filter(|d| d.kind == "optimize" && d.result["role"] == *role)
        .filter(|d| d.result["chi_us"].as_u64() == Some(chi))
    {
        if let Value::Array(parts) = &d.result["mix"] {
            for (slot, part) in total.iter_mut().zip(parts) {
                *slot += part.as_u64().unwrap_or(0);
            }
        }
    }
    total
}

fn aggregate_chi(deps: &[DepResult]) -> Result<Value, String> {
    // The χ rows present, in DAG (ascending-ratio) order.
    let mut chis: Vec<u64> = Vec::new();
    for d in deps
        .iter()
        .filter(|d| d.kind == "optimize" && d.result["role"] == "mcx")
    {
        let chi = d.result["chi_us"]
            .as_u64()
            .ok_or("mcx result missing chi_us")?;
        if !chis.contains(&chi) {
            chis.push(chi);
        }
    }
    let mx = mean_lengths(deps, "mx", None);
    let mr = mean_lengths(deps, "mr", None);
    let rows = chis
        .iter()
        .map(|&chi| {
            let mcx = mean_lengths(deps, "mcx", Some(chi));
            let mcxr = mean_lengths(deps, "mcxr", Some(chi));
            let [rex, cp, rep, mixed] = mix_of(deps, "mcxr", chi);
            obj(vec![
                ("chi_us", Value::U64(chi)),
                ("mx_len_us", Value::F64(mx)),
                ("mcx_len_us", Value::F64(mcx)),
                ("mr_len_us", Value::F64(mr)),
                ("mcxr_len_us", Value::F64(mcxr)),
                ("mcx_vs_mx", Value::F64(mcx / mx.max(1.0))),
                (
                    "mcxr_mix",
                    obj(vec![
                        ("reexec", Value::U64(rex)),
                        ("checkpointed", Value::U64(cp)),
                        ("replicated", Value::U64(rep)),
                        ("mixed", Value::U64(mixed)),
                    ]),
                ),
            ])
        })
        .collect();
    // Fault-simulation validation: the analytic bound must dominate
    // every sampled realization, with zero deadline misses.
    let mut sim_runs = 0u64;
    let mut miss_runs = 0u64;
    let mut bound_violations = 0u64;
    for d in deps.iter().filter(|d| d.kind == "faultsim") {
        sim_runs += 1;
        miss_runs += d.result["deadline_miss_runs"].as_u64().unwrap_or(0);
        let max = d.result["max_us"].as_u64().unwrap_or(0);
        let bound = d.result["bound_us"].as_u64().unwrap_or(0);
        if max > bound {
            bound_violations += 1;
        }
    }
    Ok(obj(vec![
        ("sweep", Value::Str("chi".into())),
        ("rows", Value::Array(rows)),
        (
            "faultsim",
            obj(vec![
                ("runs", Value::U64(sim_runs)),
                ("deadline_miss_runs", Value::U64(miss_runs)),
                ("bound_violations", Value::U64(bound_violations)),
            ]),
        ),
    ]))
}

fn aggregate_repair(deps: &[DepResult]) -> Result<Value, String> {
    let mut runs = Vec::new();
    let mut worst_ratio = 0.0f64;
    let mut all_schedulable = true;
    for d in deps.iter().filter(|d| d.kind == "repair") {
        let ratio = match &d.result["length_ratio"] {
            Value::F64(r) => *r,
            other => {
                return Err(format!("repair result missing length_ratio: {other:?}"));
            }
        };
        worst_ratio = worst_ratio.max(ratio);
        all_schedulable &= d.result["schedulable"] == Value::Bool(true);
        runs.push(d.result.clone());
    }
    if runs.is_empty() {
        return Err("repair aggregate has no repair results".into());
    }
    Ok(obj(vec![
        ("sweep", Value::Str("repair".into())),
        ("runs", Value::Array(runs)),
        ("worst_length_ratio", Value::F64(worst_ratio)),
        ("all_schedulable", Value::Bool(all_schedulable)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdes_serve::jobs_fingerprint;

    fn tiny_chi() -> SweepSpec {
        SweepSpec::Chi(ChiSweep {
            processes: 8,
            nodes: 2,
            faults: 1,
            mu_ms: 5,
            seeds: 2,
            chi_permille: vec![20, 200],
            max_checkpoints: 3,
            max_iterations: 4,
            faultsim_samples: 16,
        })
    }

    #[test]
    fn chi_dag_has_expected_shape() {
        let jobs = tiny_chi().jobs();
        // Per seed: 1 generate + 2 refs + 2·2 χ cells + 1 faultsim;
        // plus the aggregate.
        assert_eq!(jobs.len(), 2 * (1 + 2 + 4 + 1) + 1);
        let agg = jobs.last().unwrap();
        assert_eq!(agg.kind, "aggregate");
        assert_eq!(agg.deps.len(), 2 * (2 + 4 + 1));
        // Spec expansion is deterministic (resume recognizes stores).
        assert_eq!(
            jobs_fingerprint(&jobs),
            jobs_fingerprint(&tiny_chi().jobs())
        );
    }

    #[test]
    fn repair_dag_has_expected_shape() {
        let spec = SweepSpec::Repair(RepairSweep {
            processes: 8,
            comm_processes: 6,
            nodes: 3,
            faults: 1,
            mu_ms: 5,
            seeds: 2,
            max_iterations: 4,
        });
        let jobs = spec.jobs();
        // Per (seed, family): generate + optimize + repair; plus agg.
        assert_eq!(jobs.len(), 2 * 2 * 3 + 1);
        assert_eq!(jobs.last().unwrap().deps.len(), 4);
    }

    #[test]
    fn validation_rejects_degenerate_sweeps() {
        let mut bad = match tiny_chi() {
            SweepSpec::Chi(s) => s,
            SweepSpec::Repair(_) => unreachable!(),
        };
        bad.chi_permille.clear();
        assert!(SweepSpec::Chi(bad.clone()).validate().is_err());
        bad.chi_permille = vec![10];
        bad.seeds = 0;
        assert!(SweepSpec::Chi(bad).validate().is_err());
        assert!(tiny_chi().validate().is_ok());
    }

    #[test]
    fn designs_roundtrip_through_job_results() {
        let problem = synthetic_problem(6, 2, 1, Time::from_ms(5), 3);
        let cache = self::CachePool::new().for_problem(&problem);
        let outcome =
            optimize_with_cache(&problem, Strategy::Mxr, &iteration_config(3), &cache).unwrap();
        let encoded = encode_design(&outcome.design);
        let decoded = decode_design(&encoded, &problem).unwrap();
        assert_eq!(
            problem.evaluate(&decoded).unwrap().length(),
            outcome.length(),
            "decoded design evaluates identically"
        );
    }
}
