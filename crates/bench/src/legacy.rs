//! Frozen pre-optimization reference implementation of the search
//! loops — the `perfgate` baseline.
//!
//! This module preserves, byte-for-byte in behaviour, the evaluation
//! strategy the optimizer used before the parallel + memoized
//! evaluation subsystem landed:
//!
//! * every candidate is evaluated through [`Problem::evaluate`] —
//!   a full schedule materialization with fresh allocations,
//! * every candidate clones the entire design (`Move::apply`),
//! * the neighbourhood is re-enumerated from scratch every iteration
//!   (`generate_moves`),
//! * evaluation is strictly sequential and nothing is memoized.
//!
//! `perfgate` runs this reference against the current default path
//! under the same wall-clock budget; the ratio of tabu iterations is
//! the perf gate's pre/post comparison. Do not "optimize" this module
//! — its purpose is to stay slow the way the original was slow.

use std::time::Instant;

use ftdes_core::moves::generate_moves;
use ftdes_core::{Goal, OptError, PolicySpace, Problem, SearchConfig, SearchStats};
use ftdes_model::design::Design;
use ftdes_sched::Schedule;

/// The pre-optimization greedy loop (sequential, uncached).
///
/// # Errors
///
/// Propagates scheduling failures as [`OptError::Sched`].
pub fn greedy_reference(
    problem: &Problem,
    space: PolicySpace,
    start: Design,
    cfg: &SearchConfig,
    cutoff: Option<Instant>,
    stats: &mut SearchStats,
) -> Result<(Design, Schedule), OptError> {
    let mut design = start;
    let mut schedule = problem.evaluate(&design)?;
    stats.evaluations += 1;

    loop {
        if cfg.goal == Goal::MeetDeadline && schedule.is_schedulable() {
            return Ok((design, schedule));
        }
        if cutoff.is_some_and(|c| Instant::now() >= c) {
            return Ok((design, schedule));
        }
        let cp = schedule.move_candidates(problem.graph(), cfg.min_move_candidates);
        let moves = generate_moves(problem, space, &design, &cp);
        let mut best: Option<(Design, Schedule)> = None;
        for mv in moves {
            let cand = mv.apply(&design);
            let sched = problem.evaluate(&cand)?;
            stats.evaluations += 1;
            if best.as_ref().is_none_or(|(_, s)| sched.cost() < s.cost()) {
                best = Some((cand, sched));
            }
            if cutoff.is_some_and(|c| Instant::now() >= c) {
                break;
            }
        }
        match best {
            Some((cand, sched)) if sched.cost() < schedule.cost() => {
                design = cand;
                schedule = sched;
                stats.greedy_steps += 1;
            }
            _ => return Ok((design, schedule)),
        }
    }
}

/// The pre-optimization tabu loop (sequential, uncached, full
/// materialization and a design clone per candidate).
///
/// # Errors
///
/// Propagates scheduling failures as [`OptError::Sched`].
#[allow(clippy::too_many_lines)]
pub fn tabu_reference(
    problem: &Problem,
    space: PolicySpace,
    start: (Design, Schedule),
    cfg: &SearchConfig,
    cutoff: Option<Instant>,
    stats: &mut SearchStats,
) -> Result<(Design, Schedule), OptError> {
    struct Candidate {
        process: ftdes_model::ids::ProcessId,
        design: Design,
        schedule: Schedule,
    }

    let n = problem.process_count();
    let tenure = cfg.tenure_for(n);
    let mut tabu = vec![0usize; n];
    let mut wait = vec![0usize; n];

    let (mut best_design, mut best_schedule) = start;
    let mut now_design = best_design.clone();
    let mut now_schedule = best_schedule.clone();

    while !(cfg.goal == Goal::MeetDeadline && best_schedule.is_schedulable())
        && stats.tabu_iterations < cfg.max_tabu_iterations
        && cutoff.is_none_or(|c| Instant::now() < c)
    {
        stats.tabu_iterations += 1;

        let cp = now_schedule.move_candidates(problem.graph(), cfg.min_move_candidates);
        let mut moves = generate_moves(problem, space, &now_design, &cp);
        if moves.is_empty() {
            break;
        }
        let cap = cfg.max_moves_per_iteration.max(1);
        if moves.len() > cap {
            let offset = (stats.tabu_iterations.wrapping_sub(1) * cap) % moves.len();
            moves.rotate_left(offset);
            moves.truncate(cap);
        }

        let mut candidates = Vec::with_capacity(moves.len());
        for mv in moves {
            let design = mv.apply(&now_design);
            let schedule = problem.evaluate(&design)?;
            stats.evaluations += 1;
            candidates.push(Candidate {
                process: mv.process,
                design,
                schedule,
            });
            if cutoff.is_some_and(|c| Instant::now() >= c) {
                break;
            }
        }

        let best_cost = best_schedule.cost();
        let is_tabu = |c: &Candidate| tabu[c.process.index()] > 0;
        let aspirates = |c: &Candidate| cfg.aspiration && c.schedule.cost() < best_cost;
        let is_waiting = |c: &Candidate| cfg.diversification && wait[c.process.index()] > n;
        let admissible = |c: &Candidate| !is_tabu(c) || aspirates(c) || is_waiting(c);
        let best_of = |pred: &dyn Fn(&Candidate) -> bool| -> Option<usize> {
            candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| pred(c))
                .min_by_key(|(_, c)| c.schedule.cost())
                .map(|(i, _)| i)
        };

        let x_now = best_of(&admissible);
        let selected = match x_now {
            Some(i) if candidates[i].schedule.cost() < best_cost => Some(i),
            _ => best_of(&|c: &Candidate| is_waiting(c))
                .or_else(|| best_of(&|c: &Candidate| !is_tabu(c)))
                .or(x_now),
        };
        let Some(selected) = selected.or_else(|| best_of(&|_| true)) else {
            break;
        };

        let chosen = candidates.swap_remove(selected);
        now_design = chosen.design;
        now_schedule = chosen.schedule;

        if now_schedule.cost() < best_cost {
            best_design = now_design.clone();
            best_schedule = now_schedule.clone();
        }
        for t in &mut tabu {
            *t = t.saturating_sub(1);
        }
        for w in &mut wait {
            *w += 1;
        }
        tabu[chosen.process.index()] = tenure;
        wait[chosen.process.index()] = 0;
    }

    Ok((best_design, best_schedule))
}

/// The pre-optimization three-step strategy for the mixed space
/// (initial construction, greedy, staged tabu) — mirrors
/// `ftdes_core::strategy::optimize(Strategy::Mxr, ...)` with the
/// legacy loops above.
///
/// # Errors
///
/// Propagates [`OptError`] from placement or scheduling.
pub fn optimize_mxr_reference(
    problem: &Problem,
    cfg: &SearchConfig,
) -> Result<(Design, Schedule, SearchStats), OptError> {
    let started = Instant::now();
    let cutoff = cfg.time_limit.map(|l| started + l);
    let mut stats = SearchStats::default();
    let space = PolicySpace::Mixed;

    let initial = ftdes_core::initial::initial_mpa(problem, space)?;
    let (design, schedule) = greedy_reference(problem, space, initial, cfg, cutoff, &mut stats)?;

    let result = if cfg.staged_tabu && problem.fault_model().k() > 0 {
        let midpoint = cutoff.map(|c| {
            let now = Instant::now();
            if c <= now {
                c
            } else {
                now + (c - now) / 2
            }
        });
        let remaining = cfg
            .max_tabu_iterations
            .saturating_sub(stats.tabu_iterations);
        let stage1_cfg = SearchConfig {
            max_tabu_iterations: stats.tabu_iterations + remaining / 2,
            ..cfg.clone()
        };
        let staged = tabu_reference(
            problem,
            PolicySpace::ReexecutionOnly,
            (design, schedule),
            &stage1_cfg,
            midpoint,
            &mut stats,
        )?;
        tabu_reference(problem, space, staged, cfg, cutoff, &mut stats)?
    } else {
        tabu_reference(problem, space, (design, schedule), cfg, cutoff, &mut stats)?
    };

    stats.elapsed = started.elapsed();
    Ok((result.0, result.1, stats))
}
