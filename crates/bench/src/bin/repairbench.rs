//! `repairbench` — repair-quality-vs-time against from-scratch.
//!
//! The graceful-degradation claim of the repair subsystem is
//! quantitative: after a node loss, the escalation ladder warm-started
//! from the pre-fault design should reach (nearly) the quality of a
//! from-scratch re-solve in a fraction of its wall-clock. This bench
//! measures exactly that, per seed and per generator family:
//!
//! 1. solve the intact problem from scratch at the full budget `T`
//!    (`FTDES_TIME_MS`, default 500 ms) — this also warms the shared
//!    evaluation cache the way a deployed optimizer would have,
//! 2. kill the most-loaded node of the resulting schedule,
//! 3. repair with a total ladder budget of `T/4`, reusing the warm
//!    cache,
//! 4. re-solve the *degraded* problem from scratch at the full budget
//!    `T` with a cold cache — the quality reference,
//!
//! and records, per run, both lengths, both wall-clocks, the winning
//! escalation rung, and whether the run meets the acceptance envelope
//! (repair length within 5% of the from-scratch reference, in ≤ 25%
//! of its wall-clock). Results land in `BENCH_repair.json`
//! (non-gating: the process exits 0 even when the envelope is missed,
//! nonzero only on I/O or solver errors).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use ftdes_bench::{
    budgeted_config, comm_heavy_problem, synthetic_problem, time_budget, write_artifact,
};
use ftdes_core::repair::{repair_with_cache, RepairBudget};
use ftdes_core::{effective_threads, optimize_with_cache, EvalCache, Problem, Strategy};
use ftdes_faultsim::most_loaded_node;
use ftdes_model::delta::ProblemDelta;
use ftdes_model::time::Time;

const PROCESSES: usize = 15;
const COMM_PROCESSES: usize = 12;
const NODES: usize = 4;
const FAULTS: u32 = 1;
const SEEDS: u64 = 3;
/// Repair gets this fraction of the from-scratch budget.
const BUDGET_DIVISOR: u32 = 4;
/// Acceptance: repair length within this factor of from-scratch.
const LENGTH_ENVELOPE: f64 = 1.05;

struct Run {
    family: &'static str,
    seed: u64,
    killed: String,
    rung: String,
    repair_len_us: u64,
    repair_ms: u128,
    scratch_len_us: u64,
    scratch_ms: u128,
}

impl Run {
    fn length_ratio(&self) -> f64 {
        self.repair_len_us as f64 / self.scratch_len_us.max(1) as f64
    }

    fn time_ratio(&self) -> f64 {
        self.repair_ms as f64 / (self.scratch_ms.max(1)) as f64
    }

    fn within_envelope(&self) -> bool {
        self.length_ratio() <= LENGTH_ENVELOPE && self.time_ratio() <= 0.25 + f64::EPSILON
    }

    fn json(&self) -> String {
        format!(
            "{{\"family\": \"{}\", \"seed\": {}, \"killed\": \"{}\", \"rung\": \"{}\", \
             \"repair_length_us\": {}, \"repair_ms\": {}, \"scratch_length_us\": {}, \
             \"scratch_ms\": {}, \"length_ratio\": {:.4}, \"time_ratio\": {:.4}, \
             \"within_envelope\": {}}}",
            self.family,
            self.seed,
            self.killed,
            self.rung,
            self.repair_len_us,
            self.repair_ms,
            self.scratch_len_us,
            self.scratch_ms,
            self.length_ratio(),
            self.time_ratio(),
            self.within_envelope(),
        )
    }
}

/// One seed of one family: intact solve → kill → repair (warm, T/4)
/// vs degraded from-scratch (cold, T).
fn run_one(family: &'static str, problem: &Problem, seed: u64) -> Result<Run, String> {
    let budget = time_budget();
    let cfg = budgeted_config(10_000);

    // 1. Intact solve (warms the cache the fleet would already hold).
    let cache = Arc::new(EvalCache::default());
    let intact = optimize_with_cache(problem, Strategy::Mxr, &cfg, &cache)
        .map_err(|e| format!("{family} seed {seed}: intact solve failed: {e}"))?;

    // 2. Kill the node the intact schedule leans on hardest.
    let victim = most_loaded_node(&intact.schedule)
        .ok_or_else(|| format!("{family} seed {seed}: empty schedule"))?;
    let delta = ProblemDelta::kill_node(victim);

    // 3. Warm repair at a quarter of the budget. The default
    //    25/35/40 split reserves 40% for the from-scratch fallback,
    //    which an endorsed repair never reaches — reweight toward the
    //    warm polish rung so the quality-critical slice gets the
    //    time (the ceiling stays T/4 even when the fallback runs).
    let total = budget / BUDGET_DIVISOR;
    let repair_budget = RepairBudget {
        localized: total.mul_f64(0.08),
        warm: total.mul_f64(0.84),
        scratch: total.mul_f64(0.08),
    };
    let t = Instant::now();
    let repaired = repair_with_cache(
        problem,
        &intact.design,
        &delta,
        &repair_budget,
        &cfg,
        &cache,
    )
    .map_err(|e| format!("{family} seed {seed}: repair failed: {e}"))?;
    let repair_ms = t.elapsed().as_millis();
    if !repaired.is_schedulable() {
        return Err(format!(
            "{family} seed {seed}: repaired design not schedulable"
        ));
    }

    // 4. Cold from-scratch reference on the degraded problem.
    let (degraded, _) = ftdes_core::repair::apply_delta(problem, &delta)
        .map_err(|e| format!("{family} seed {seed}: apply_delta failed: {e}"))?;
    let cold = Arc::new(EvalCache::default());
    let t = Instant::now();
    let scratch = optimize_with_cache(&degraded, Strategy::Mxr, &cfg, &cold)
        .map_err(|e| format!("{family} seed {seed}: scratch solve failed: {e}"))?;
    let scratch_ms = t.elapsed().as_millis();

    Ok(Run {
        family,
        seed,
        killed: victim.to_string(),
        rung: repaired.rung.to_string(),
        repair_len_us: repaired.length().as_us(),
        repair_ms,
        scratch_len_us: scratch.schedule.length().as_us(),
        scratch_ms,
    })
}

fn main() -> ExitCode {
    let budget = time_budget();
    println!(
        "repairbench: paper {PROCESSES}p / comm {COMM_PROCESSES}p, {NODES} nodes, k = {FAULTS}, \
         {SEEDS} seeds, {budget:?} scratch budget, repair at 1/{BUDGET_DIVISOR}"
    );

    let mut runs = Vec::new();
    for seed in 0..SEEDS {
        let paper = synthetic_problem(PROCESSES, NODES, FAULTS, Time::from_ms(5), seed);
        let comm = comm_heavy_problem(COMM_PROCESSES, NODES, FAULTS, Time::from_ms(5), seed);
        for (family, problem) in [("paper", paper), ("comm_heavy", comm)] {
            match run_one(family, &problem, seed) {
                Ok(run) => {
                    println!(
                        "  {} seed {}: killed {}, {} | repair {} us in {} ms vs scratch {} us \
                         in {} ms (len x{:.3}, time x{:.3}){}",
                        run.family,
                        run.seed,
                        run.killed,
                        run.rung,
                        run.repair_len_us,
                        run.repair_ms,
                        run.scratch_len_us,
                        run.scratch_ms,
                        run.length_ratio(),
                        run.time_ratio(),
                        if run.within_envelope() { "" } else { " MISS" },
                    );
                    runs.push(run);
                }
                Err(e) => {
                    eprintln!("repairbench: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let within = runs.iter().filter(|r| r.within_envelope()).count();
    let worst_len = runs.iter().map(Run::length_ratio).fold(f64::MIN, f64::max);
    let worst_time = runs.iter().map(Run::time_ratio).fold(f64::MIN, f64::max);
    let entries: Vec<String> = runs.iter().map(|r| format!("    {}", r.json())).collect();
    let json = format!(
        "{{\n  \"threads\": {},\n  \"budget_ms\": {},\n  \"budget_divisor\": {BUDGET_DIVISOR},\n  \
         \"length_envelope\": {LENGTH_ENVELOPE},\n  \"runs\": [\n{}\n  ],\n  \
         \"within_envelope\": {within},\n  \"total_runs\": {},\n  \
         \"worst_length_ratio\": {worst_len:.4},\n  \"worst_time_ratio\": {worst_time:.4},\n  \
         \"all_within_envelope\": {}\n}}\n",
        effective_threads(0),
        budget.as_millis(),
        entries.join(",\n"),
        runs.len(),
        within == runs.len(),
    );
    if let Err(e) = write_artifact("BENCH_repair.json", &json) {
        eprintln!("repairbench: {e}");
        return ExitCode::FAILURE;
    }
    println!("\n{json}");
    println!(
        "repairbench: {within}/{} runs within envelope (len <= {LENGTH_ENVELOPE}x scratch, \
         time <= 25%)",
        runs.len()
    );
    ExitCode::SUCCESS
}
