//! Reproduces paper Table 1c: fault-tolerance overheads of MXR vs NFT
//! as the fault duration µ grows.
//!
//! Configuration: 20 processes on 2 nodes, k = 3,
//! µ ∈ {1, 5, 10, 15, 20} ms.

use ftdes_bench::{experiment_config, overhead_samples, print_header, print_row, PercentRow};
use ftdes_model::time::Time;

fn main() {
    let cfg = experiment_config();
    println!("Table 1c — MXR overhead vs NFT by fault duration (20 procs, 2 nodes, k=3)");
    println!(
        "(seeds per row: {}, search budget: {:?} per strategy)\n",
        ftdes_bench::seeds(),
        ftdes_bench::time_budget()
    );
    print_header("mu (ms)");
    for mu in [1u64, 5, 10, 15, 20] {
        let samples = overhead_samples(20, 2, 3, Time::from_ms(mu), &cfg);
        let row = PercentRow::from_samples(&samples);
        print_row(&mu.to_string(), &row);
    }
    println!("\npaper reference (avg): 57.26 / 70.67 / 89.24 / 107.26 / 125.18");
}
