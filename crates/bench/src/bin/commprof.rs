//! Micro-profile of the certified bus-wait lower bound on the
//! communication-heavy gate workload: per-candidate bounded
//! evaluation cost and prune composition with the bound on vs off,
//! over real tabu windows.
//!
//! Reads the same `FTDES_*` knobs as the other bench bins (see
//! `ftdes-bench`'s crate docs).

use std::time::Instant;

use ftdes_bench::comm_heavy_problem_with;
use ftdes_core::moves::MoveTable;
use ftdes_core::{initial, PolicySpace, Problem};
use ftdes_model::time::Time;
use ftdes_sched::{CostOutcome, CostScratch, PlacementCheckpoints, SchedScratch};

#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    exact: usize,
    pruned: usize,
    exact_us: f64,
    pruned_us: f64,
}

fn profile(problem: &Problem, label: &str) -> Totals {
    let design = initial::initial_mpa(problem, PolicySpace::Mixed).expect("placeable");
    let mut ckpts = PlacementCheckpoints::new();
    let mut core = SchedScratch::default();
    let mut scratch = CostScratch::default();
    let schedule = problem
        .evaluate_recording(&design, &mut core, Some(&mut ckpts))
        .expect("schedules");
    let base_cost = schedule.cost();
    let cp = schedule.move_candidates(problem.graph(), 8);
    let table = MoveTable::new(problem, PolicySpace::Mixed);
    let mut window = Vec::new();
    table.window(&design, &cp, &mut window);

    let reps = 200u32;
    let mut totals = Totals::default();
    let mut d = design.clone();
    for mv in &window {
        let prev = d.replace_decision(mv.process, table.decision(*mv).clone());
        let mut outcome = CostOutcome::Exact(base_cost);
        let started = Instant::now();
        for _ in 0..reps {
            outcome = problem
                .evaluate_cost_bounded(&d, &mut scratch, Some(base_cost))
                .expect("generated problem schedules");
            std::hint::black_box(&outcome);
        }
        let us = started.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
        match outcome {
            CostOutcome::Exact(_) => {
                totals.exact += 1;
                totals.exact_us += us;
            }
            CostOutcome::LowerBound(_) => {
                totals.pruned += 1;
                totals.pruned_us += us;
            }
        }
        d.set_decision(mv.process, prev);
    }
    println!(
        "  {label}: {} exact ({:.2} us avg) | {} pruned ({:.2} us avg)",
        totals.exact,
        totals.exact_us / totals.exact.max(1) as f64,
        totals.pruned,
        totals.pruned_us / totals.pruned.max(1) as f64,
    );
    totals
}

fn diag(problem: &Problem) {
    let design = initial::initial_mpa(problem, PolicySpace::Mixed).expect("placeable");
    let expanded = ftdes_sched::ExpandedDesign::expand(
        problem.graph(),
        &design,
        problem.dense_wcet(),
        problem.fault_model(),
    )
    .expect("generated problem schedules");
    let bus = problem.bus();
    let nodes = problem.arch().node_count();
    let mut bytes = vec![0u64; nodes];
    for edge in problem.graph().edges() {
        let prods = expanded.of_process(edge.from);
        if prods.len() != 1 {
            continue;
        }
        let sender = expanded.instance(prods[0]).node;
        if expanded
            .of_process(edge.to)
            .iter()
            .any(|&t| expanded.instance(t).node != sender)
        {
            bytes[sender.index()] += u64::from(edge.message.size);
        }
    }
    let cost = problem
        .evaluate(&design)
        .expect("generated problem schedules")
        .length();
    let cap = u64::from(bus.slot_bytes());
    print!(
        "  diag: length {cost}, cap {cap}, round {}, bytes/slot [",
        bus.round_length()
    );
    for (n, &b) in bytes.iter().enumerate() {
        let occ = b.div_ceil(cap.max(1));
        let arr = if b == 0 {
            Time::ZERO
        } else {
            bus.slot_end(
                occ - 1,
                bus.slot_of_node(ftdes_model::ids::NodeId::new(n as u32)),
            )
        };
        print!("{b}B->{arr} ");
    }
    println!("]");
}

fn main() {
    let ratio: f64 = std::env::var("COMM_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    let density: f64 = std::env::var("COMM_DENSITY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    println!("ratio {ratio}, density {density}");
    for seed in 0..3u64 {
        let procs: usize = std::env::var("COMM_PROCS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30);
        let params = ftdes_gen::CommHeavyParams::dense(procs)
            .with_ratio(ratio)
            .with_density(density);
        let problem = comm_heavy_problem_with(&params, 4, 2, Time::from_ms(5), seed);
        println!(
            "seed {seed}: {} processes / {} edges",
            problem.process_count(),
            problem.graph().edge_count()
        );
        diag(&problem);
        let off = profile(
            &problem
                .clone()
                .with_comm_lookahead(false)
                .with_flat_occupancy(),
            "pr2 path ",
        );
        let on = profile(&problem, "this path");
        let total_off = off.exact_us + off.pruned_us;
        let total_on = on.exact_us + on.pruned_us;
        println!(
            "  window total: off {total_off:.1} us, on {total_on:.1} us \
             ({:+.1}%), prunes off {} -> on {}",
            100.0 * (total_on - total_off) / total_off.max(1e-9),
            off.pruned,
            on.pruned,
        );
    }
}
