//! Micro-profile of the incremental evaluation path over a real tabu
//! window: from-scratch cost vs the PR 2 checkpoint-resumed replay vs
//! the suffix-spliced (engine v3) path, unbounded and bounded, per
//! move of the perfgate workload's first window.

use std::time::Instant;

use ftdes_bench::synthetic_problem;
use ftdes_core::moves::MoveTable;
use ftdes_core::{initial, PolicySpace};
use ftdes_model::time::Time;
use ftdes_sched::{
    schedule_cost_bounded, schedule_cost_resumed, schedule_cost_spliced, CostOutcome, CostScratch,
    PlacementCheckpoints, ScheduleOptions,
};

fn main() {
    ftdes_sched::incremental::metrics::enable();
    // The certificate is an opt-in (default off); the profiler
    // enables it so the reconvergence counters below are live.
    let problem = synthetic_problem(40, 4, 3, Time::from_ms(5), 0).with_reconvergence(true);
    let initial = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
    // A steady-state design too: windows deep in the search carry
    // replicated decisions whose moves dirty more nodes, so the
    // splice engine's cone (and with it the profitability gate)
    // behaves differently than on the fresh initial design.
    let steady = {
        let cfg = ftdes_core::SearchConfig {
            goal: ftdes_core::Goal::MinimizeLength,
            time_limit: None,
            max_tabu_iterations: 150,
            ..ftdes_core::SearchConfig::default()
        };
        ftdes_core::optimize(&problem, ftdes_core::Strategy::Mxr, &cfg)
            .expect("search")
            .design
    };
    for (design, label) in [(initial, "initial design"), (steady, "steady-state design")] {
        println!("== window of the {label} ==");
        profile_window(&problem, design);
    }
}

fn profile_window(problem: &ftdes_core::Problem, design: ftdes_model::design::Design) {
    let mut ckpts = PlacementCheckpoints::new();
    let mut scratch = CostScratch::default();
    let mut core = ftdes_sched::SchedScratch::default();
    let schedule = problem
        .evaluate_recording(&design, &mut core, Some(&mut ckpts))
        .expect("schedules");
    let base_cost = schedule.cost();
    let cp = schedule.move_candidates(problem.graph(), 8);
    let table = MoveTable::new(problem, PolicySpace::Mixed);
    let mut window = Vec::new();
    table.window(&design, &cp, &mut window);
    println!("window: {} moves, base cost {:?}", window.len(), base_cost);

    let reps = 2000u32;
    let time_of = |f: &mut dyn FnMut()| -> f64 {
        let started = Instant::now();
        for _ in 0..reps {
            f();
        }
        started.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
    };

    // The recording overhead the splice engine adds to each winner
    // materialization (segments on) vs the PR 2/3 recording.
    {
        let pr3 = problem.clone().with_suffix_splice(false);
        let mut rec_core = ftdes_sched::SchedScratch::default();
        let mut rec_ckpts = PlacementCheckpoints::new();
        let with_segments = time_of(&mut || {
            let s = problem
                .evaluate_recording(&design, &mut rec_core, Some(&mut rec_ckpts))
                .expect("generated problem schedules");
            std::hint::black_box(s.cost());
        });
        let without = time_of(&mut || {
            let s = pr3
                .evaluate_recording(&design, &mut rec_core, Some(&mut rec_ckpts))
                .expect("generated problem schedules");
            std::hint::black_box(s.cost());
        });
        println!("winner materialization + recording (per iteration):");
        println!("  with segment recording : {with_segments:7.2} us");
        println!("  snapshots only (pr3)   : {without:7.2} us");
    }

    // The PR 2 path: checkpoint-resumed replay, splice disabled.
    let pr2 = ScheduleOptions {
        suffix_splice: false,
        ..problem.schedule_options()
    };
    let mut d = design.clone();
    let mut total_scratch = 0.0;
    let mut total_resumed = 0.0;
    let mut total_spliced = 0.0;
    let mut total_bounded_scratch = 0.0;
    let mut total_bounded_resumed = 0.0;
    let mut total_bounded_spliced = 0.0;
    let mut pruned = 0usize;
    let mut spliced_moves = 0usize;
    let reconv_before = ftdes_sched::incremental::metrics::reconv();
    for mv in &window {
        let prev = d.replace_decision(mv.process, table.decision(*mv).clone());
        total_scratch += time_of(&mut || {
            let c = schedule_cost_bounded(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                problem.schedule_options(),
                &mut scratch,
                None,
            )
            .expect("generated problem schedules");
            std::hint::black_box(c.cost());
        });
        total_resumed += time_of(&mut || {
            let c = schedule_cost_resumed(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                mv.process,
                pr2,
                &mut scratch,
                &ckpts,
                None,
            )
            .expect("generated problem schedules");
            std::hint::black_box(c.cost());
        });
        total_spliced += time_of(&mut || {
            let c = schedule_cost_spliced(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                mv.process,
                problem.schedule_options(),
                &mut scratch,
                &ckpts,
                None,
            )
            .expect("generated problem schedules");
            std::hint::black_box(c.map(|o| o.cost()));
        });
        total_bounded_scratch += time_of(&mut || {
            let c = schedule_cost_bounded(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                problem.schedule_options(),
                &mut scratch,
                Some(base_cost),
            )
            .expect("generated problem schedules");
            std::hint::black_box(c.cost());
        });
        total_bounded_resumed += time_of(&mut || {
            let c = schedule_cost_resumed(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                mv.process,
                pr2,
                &mut scratch,
                &ckpts,
                Some(base_cost),
            )
            .expect("generated problem schedules");
            std::hint::black_box(c.cost());
        });
        total_bounded_spliced += time_of(&mut || {
            let c = schedule_cost_spliced(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                mv.process,
                problem.schedule_options(),
                &mut scratch,
                &ckpts,
                Some(base_cost),
            )
            .expect("generated problem schedules");
            std::hint::black_box(c.map(|o| o.cost()));
        });
        let spliced = schedule_cost_spliced(
            problem.graph(),
            problem.arch(),
            problem.dense_wcet(),
            problem.fault_model(),
            problem.bus(),
            &d,
            mv.process,
            problem.schedule_options(),
            &mut scratch,
            &ckpts,
            Some(base_cost),
        )
        .expect("generated problem schedules");
        if spliced.is_some() {
            spliced_moves += 1;
        }
        let out = schedule_cost_resumed(
            problem.graph(),
            problem.arch(),
            problem.dense_wcet(),
            problem.fault_model(),
            problem.bus(),
            &d,
            mv.process,
            problem.schedule_options(),
            &mut scratch,
            &ckpts,
            Some(base_cost),
        )
        .expect("generated problem schedules");
        if !matches!(out, CostOutcome::Exact(_)) {
            pruned += 1;
        }
        d.set_decision(mv.process, prev);
    }
    let n = window.len() as f64;
    println!("avg per-move microseconds over the window:");
    println!("  from-scratch unbounded : {:7.2}", total_scratch / n);
    println!("  pr2-resumed unbounded  : {:7.2}", total_resumed / n);
    println!("  spliced unbounded      : {:7.2}", total_spliced / n);
    println!(
        "  from-scratch bounded   : {:7.2}",
        total_bounded_scratch / n
    );
    println!(
        "  pr2-resumed bounded    : {:7.2}",
        total_bounded_resumed / n
    );
    println!(
        "  spliced bounded        : {:7.2}",
        total_bounded_spliced / n
    );
    println!(
        "  pruned: {pruned}/{}, splice engaged: {spliced_moves}/{}",
        window.len(),
        window.len()
    );
    let reconv_after = ftdes_sched::incremental::metrics::reconv();
    println!(
        "  reconvergence: {} chains cut, {} cuts failed verification",
        reconv_after.0 - reconv_before.0,
        reconv_after.1 - reconv_before.1
    );
}
