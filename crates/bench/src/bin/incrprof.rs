//! Micro-profile of the incremental evaluation path over a real tabu
//! window: from-scratch cost vs resumed cost vs bounded-resumed cost,
//! per move of the perfgate workload's first window.

use std::time::Instant;

use ftdes_bench::synthetic_problem;
use ftdes_core::moves::MoveTable;
use ftdes_core::{initial, PolicySpace};
use ftdes_model::time::Time;
use ftdes_sched::{
    schedule_cost_bounded, schedule_cost_resumed, CostOutcome, CostScratch, PlacementCheckpoints,
    ScheduleOptions,
};

fn main() {
    let problem = synthetic_problem(40, 4, 3, Time::from_ms(5), 0);
    let design = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
    let mut ckpts = PlacementCheckpoints::new();
    let mut scratch = CostScratch::default();
    let mut core = ftdes_sched::SchedScratch::default();
    let schedule = problem
        .evaluate_recording(&design, &mut core, Some(&mut ckpts))
        .expect("schedules");
    let base_cost = schedule.cost();
    let cp = schedule.move_candidates(problem.graph(), 8);
    let table = MoveTable::new(&problem, PolicySpace::Mixed);
    let mut window = Vec::new();
    table.window(&design, &cp, &mut window);
    println!("window: {} moves, base cost {:?}", window.len(), base_cost);

    let reps = 2000u32;
    let time_of = |f: &mut dyn FnMut()| -> f64 {
        let started = Instant::now();
        for _ in 0..reps {
            f();
        }
        started.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
    };

    // From-scratch cost-only per move.
    let mut d = design.clone();
    let mut total_scratch = 0.0;
    let mut total_resumed = 0.0;
    let mut total_bounded_scratch = 0.0;
    let mut total_bounded_resumed = 0.0;
    let mut pruned = 0usize;
    for mv in &window {
        let prev = d.replace_decision(mv.process, table.decision(*mv).clone());
        total_scratch += time_of(&mut || {
            let c = schedule_cost_bounded(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                ScheduleOptions::default(),
                &mut scratch,
                None,
            )
            .unwrap();
            std::hint::black_box(c.cost());
        });
        total_resumed += time_of(&mut || {
            let c = schedule_cost_resumed(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                mv.process,
                ScheduleOptions::default(),
                &mut scratch,
                &ckpts,
                None,
            )
            .unwrap();
            std::hint::black_box(c.cost());
        });
        total_bounded_scratch += time_of(&mut || {
            let c = schedule_cost_bounded(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                ScheduleOptions::default(),
                &mut scratch,
                Some(base_cost),
            )
            .unwrap();
            std::hint::black_box(c.cost());
        });
        total_bounded_resumed += time_of(&mut || {
            let c = schedule_cost_resumed(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &d,
                mv.process,
                ScheduleOptions::default(),
                &mut scratch,
                &ckpts,
                Some(base_cost),
            )
            .unwrap();
            std::hint::black_box(c.cost());
        });
        let out = schedule_cost_resumed(
            problem.graph(),
            problem.arch(),
            problem.dense_wcet(),
            problem.fault_model(),
            problem.bus(),
            &d,
            mv.process,
            ScheduleOptions::default(),
            &mut scratch,
            &ckpts,
            Some(base_cost),
        )
        .unwrap();
        if !matches!(out, CostOutcome::Exact(_)) {
            pruned += 1;
        }
        d.set_decision(mv.process, prev);
    }
    let n = window.len() as f64;
    println!("avg per-move microseconds over the window:");
    println!("  from-scratch unbounded : {:7.2}", total_scratch / n);
    println!("  resumed unbounded      : {:7.2}", total_resumed / n);
    println!(
        "  from-scratch bounded   : {:7.2}",
        total_bounded_scratch / n
    );
    println!(
        "  resumed bounded        : {:7.2}",
        total_bounded_resumed / n
    );
    println!("  pruned: {pruned}/{}", window.len());
}
