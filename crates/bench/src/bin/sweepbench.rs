//! `sweepbench` — crash-recovery overhead of the sweep orchestrator.
//!
//! The crash matrices prove resume is *correct* (bit-identical to an
//! uncrashed run at every registered fault point); this bench measures
//! what that safety costs. For one moderate χ sweep it times
//!
//! 1. a **cold** uncrashed run (create store → drive to completion),
//! 2. for every fault point: a run crashed there (in-process
//!    `CrashMode::Error` — log-identical to a kill), then a fresh-store
//!    **resume** with `takeover`,
//!
//! and records, per point, the crashed/resume wall-clocks, the
//! crash-to-finish total against the cold baseline, and whether the
//! resumed results matched the cold run byte-for-byte. Event-sourced
//! recovery means the only real overhead is re-executing the one
//! in-flight job the crash destroyed plus replaying the log; the
//! `total_vs_cold` ratios document exactly that.
//!
//! Results land in `BENCH_sweep.json` — a **non-gating** CI artifact
//! (timings document the trajectory; only a bit-identity violation or
//! an I/O error fails the process, because those are correctness
//! bugs, not perf regressions).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ftdes_bench::jobs::{ChiSweep, SweepExec, SweepSpec};
use ftdes_bench::write_artifact;
use ftdes_serve::{
    drive, CrashMode, DriveError, Injector, SweepClock, SweepState, SweepStore, WorkerConfig,
    FAULT_POINTS,
};

/// Moderate enough that per-point timings are non-trivial, small
/// enough that the full point loop stays in CI budget.
fn spec() -> SweepSpec {
    SweepSpec::Chi(ChiSweep {
        processes: 8,
        nodes: 3,
        faults: 1,
        mu_ms: 5,
        seeds: 2,
        chi_permille: vec![20, 100],
        max_checkpoints: 2,
        max_iterations: 50,
        faultsim_samples: 32,
    })
}

fn cfg(worker: &str, takeover: bool) -> WorkerConfig {
    WorkerConfig {
        worker: worker.into(),
        lease_ms: 60_000,
        max_attempts: 2,
        backoff_base_ms: 10,
        takeover,
    }
}

fn store_path(name: &str) -> Result<PathBuf, String> {
    let dir = std::env::temp_dir().join("ftdes-sweepbench");
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(name);
    if path.exists() {
        std::fs::remove_file(&path).map_err(|e| format!("clearing {}: {e}", path.display()))?;
    }
    Ok(path)
}

/// Every committed result in job order — the sweep's byte identity.
fn results_bytes(state: &SweepState) -> Result<String, String> {
    let mut out = String::new();
    for job in state.jobs() {
        let rendered = match state.result(job.spec.id) {
            Some(v) => serde_json::to_string(v).map_err(|e| format!("encoding result: {e:?}"))?,
            None => "<none>".to_owned(),
        };
        out.push_str(&job.spec.name);
        out.push(' ');
        out.push_str(&rendered);
        out.push('\n');
    }
    Ok(out)
}

struct PointRun {
    point: &'static str,
    fired: bool,
    crashed_ms: u128,
    resume_ms: u128,
    bit_identical: bool,
}

fn run() -> Result<(), String> {
    let spec = spec();
    let jobs = spec.jobs();
    println!(
        "sweepbench: {} sweep, {} jobs, crash matrix over {} fault points",
        spec.name(),
        jobs.len(),
        FAULT_POINTS.len()
    );

    // 1. The cold baseline.
    let clock = SweepClock::virtual_at(0);
    let path = store_path("cold.jsonl")?;
    let (mut store, mut state) =
        SweepStore::create(&path, spec.name(), &jobs).map_err(|e| e.to_string())?;
    let t = Instant::now();
    drive(
        &mut store,
        &mut state,
        &SweepExec::new(),
        &clock,
        &mut Injector::none(),
        &cfg("cold", false),
    )
    .map_err(|e| e.to_string())?;
    let cold_ms = t.elapsed().as_millis();
    let baseline = results_bytes(&state)?;
    println!("  cold run: {} jobs in {cold_ms} ms", jobs.len());

    // 2. Crash at every point, resume, compare.
    let mut points = Vec::new();
    for &point in FAULT_POINTS {
        let path = store_path(&format!("{}.jsonl", point.replace('.', "-")))?;
        let (mut store, mut state) =
            SweepStore::create(&path, spec.name(), &jobs).map_err(|e| e.to_string())?;
        let mut injector = Injector::at(point, 1, CrashMode::Error)?;
        let t = Instant::now();
        let crashed = drive(
            &mut store,
            &mut state,
            &SweepExec::new(),
            &clock,
            &mut injector,
            &cfg("victim", false),
        );
        let crashed_ms = t.elapsed().as_millis();
        let fired = match crashed {
            Err(DriveError::InjectedCrash { .. }) => true,
            // A healthy sweep never reaches the failure-path points.
            Ok(_) => false,
            Err(other) => return Err(format!("[{point}] drive failed: {other}")),
        };
        drop(store);

        let t = Instant::now();
        let (mut store, mut state, _report) = SweepStore::open(&path).map_err(|e| e.to_string())?;
        drive(
            &mut store,
            &mut state,
            &SweepExec::new(),
            &clock,
            &mut Injector::none(),
            &cfg("rescuer", true),
        )
        .map_err(|e| format!("[{point}] resume failed: {e}"))?;
        let resume_ms = t.elapsed().as_millis();
        let bit_identical = results_bytes(&state)? == baseline;
        println!(
            "  {point}: crashed at {crashed_ms} ms{}, resume {resume_ms} ms, \
             total x{:.2} vs cold, bit-identical: {bit_identical}",
            if fired { "" } else { " (point unfired)" },
            (crashed_ms + resume_ms) as f64 / cold_ms.max(1) as f64,
        );
        points.push(PointRun {
            point,
            fired,
            crashed_ms,
            resume_ms,
            bit_identical,
        });
    }

    let all_identical = points.iter().all(|p| p.bit_identical);
    let worst_total = points
        .iter()
        .map(|p| (p.crashed_ms + p.resume_ms) as f64 / cold_ms.max(1) as f64)
        .fold(f64::MIN, f64::max);
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"point\": \"{}\", \"fired\": {}, \"crashed_ms\": {}, \
                 \"resume_ms\": {}, \"total_vs_cold\": {:.4}, \"bit_identical\": {}}}",
                p.point,
                p.fired,
                p.crashed_ms,
                p.resume_ms,
                (p.crashed_ms + p.resume_ms) as f64 / cold_ms.max(1) as f64,
                p.bit_identical,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"sweep\": \"{}\",\n  \"jobs\": {},\n  \"cold_ms\": {cold_ms},\n  \
         \"points\": [\n{}\n  ],\n  \"worst_total_vs_cold\": {worst_total:.4},\n  \
         \"all_bit_identical\": {all_identical}\n}}\n",
        spec.name(),
        jobs.len(),
        entries.join(",\n"),
    );
    write_artifact("BENCH_sweep.json", &json)?;
    println!("\n{json}");
    println!("written to BENCH_sweep.json (non-gating artifact)");

    // Timings never gate; broken recovery always does.
    if !all_identical {
        return Err("bit-identity violated after crash+resume".to_owned());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sweepbench: {e}");
            ExitCode::FAILURE
        }
    }
}
