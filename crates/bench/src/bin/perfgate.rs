//! The performance gate: tracks the optimizer's evaluation throughput
//! from PR to PR.
//!
//! Runs the same fixed-seed MXR search **four** times under the
//! identical wall-clock budget (`FTDES_TIME_MS`, default 500 ms per
//! seed):
//!
//! 1. **baseline** — the frozen pre-optimization reference
//!    ([`ftdes_bench::legacy`]): sequential, uncached, one full
//!    schedule materialization and one design clone per candidate,
//! 2. **pr1** — the parallel + memoized cost-only path
//!    (`incremental: false, bounded: false`): scratch-reused
//!    from-scratch placement per candidate,
//! 3. **pr3** — the PR 2/3 default: checkpoint-resumed + bounded
//!    candidates with the communication-aware engine, suffix splicing
//!    disabled (`Problem::with_suffix_splice(false)`),
//! 4. **incremental** — the current default path (evaluation engine
//!    v4): candidates re-place only their certified affected cone and
//!    splice the base recording's per-node segments and per-slot bus
//!    timelines for everything outside it, cutting node chains early
//!    at runtime-verified reconvergence points, falling back to the
//!    PR 2 resume on ready-order divergence.
//!
//! Because the search is deterministic in everything except the
//! wall-clock cutoff, more candidates per second directly buy more
//! tabu iterations — the quantity that decides solution quality under
//! the paper's "shortest schedule within an imposed time limit"
//! protocol. Results are written to `BENCH_tabu.json`:
//!
//! ```json
//! {
//!   "workload": {...},
//!   "baseline":    {"tabu_iterations": N, "candidates_per_sec": X, ...},
//!   "pr1":         {...},
//!   "pr3":         {...},
//!   "incremental": {...},
//!   "speedup": {
//!     "tabu_iterations": incremental/baseline,
//!     "candidate_rate": incremental/baseline,
//!     "tabu_iterations_vs_pr1": incremental/pr1,
//!     "candidate_rate_vs_pr1": incremental/pr1,
//!     "tabu_iterations_vs_pr3": incremental/pr3,
//!     "candidate_rate_vs_pr3": incremental/pr3,
//!     "best_length_ratio": informational
//!   }
//! }
//! ```
//!
//! # One subprocess per section
//!
//! Every gated section runs in its **own child process** (the binary
//! re-invokes itself with `FTDES_PERFGATE_SECTION=<name>` and collects
//! the per-section JSON fragments): the full-placement arms of the
//! occupancy gate — and, to a lesser degree, every other ratio in the
//! file — are sensitive to allocator state, so letting one section
//! churn the heap before another measurably bends the next section's
//! ratio (historically ~0.10 absolute on the occupancy gate, which is
//! why it used to be pinned first). A fresh process per section makes
//! every floor independent of section order by construction.
//! `FTDES_PERFGATE_SECTION=all` runs everything in-process instead
//! (the automatic fallback when the binary cannot re-spawn itself).
//!
//! # The suffix-splice gate
//!
//! The fourth mode's own CI gate runs on a second **paper-family
//! workload** at a larger architecture
//! (96 processes / 12 nodes / k = 3, `splice_workload` in the JSON):
//! the certified affected cone of a move covers the moved process's
//! replica nodes plus everything node-chained behind them, so on the
//! legacy 4-node instance a k = 3 move dirties most of the machine
//! and splicing cannot beat the PR 2 replay it falls back to
//! (measured ≈ 1.0× there — kept as the informational
//! `candidate_rate_vs_pr3`). At 12 nodes the cone leaves most of the
//! machine untouched and the engine's reuse is structural:
//! `splice_candidate_rate_vs_pr3` carries the CI floor (1.2×).
//!
//! # The reconvergence gate
//!
//! The timing-aware reconvergence certificate (evaluation engine v4)
//! attacks exactly the regime the splice gate documents as hopeless
//! for v3: the **narrow machine** (the legacy 40 processes / 4 nodes /
//! k = 3 paper workload), where a move node-chains most of the
//! machine behind it and the cone covers nearly the whole suffix. A
//! chain cut at a runtime-verified reconvergence point splices the
//! rest of the node's recorded timeline instead of re-placing it.
//! Both arms run the full default engine and differ only in
//! [`Problem::with_reconvergence`] — a pure throughput knob (cuts are
//! runtime-verified against the recording, so trajectories are
//! bit-identical; `tests/reconv.rs` pins this).
//!
//! Measured reality (2026-08): on this dense workload the certificate
//! is a **net loss** — 0.77–0.80× candidate rate vs the v3 cone.
//! Chains cut succeed (~70–90% of attempted marks verify, arrival
//! marks at ~91%), but each failed verification buys a full
//! re-execute, the extended sweep taxes every candidate, and pending
//! cuts blunt the bounded path's early pruning (spliced suffix
//! completions are contingent until every mark verifies). That is why
//! [`ScheduleOptions::reconvergence`] defaults **off** and the
//! certificate is an opt-in for sparse, gap-rich systems.
//! `reconv_speedup.reconv_candidate_rate_vs_off` therefore carries a
//! **regression guard** floor (0.70×), not a speedup floor: it keeps
//! the opt-in machinery from rotting below its measured envelope and
//! documents the honest number the 1.10× aspiration did not reach.
//!
//! # The communication-heavy gate
//!
//! The paper-family workload above makes communication almost free
//! (1–4 byte messages against 10–100 ms WCETs), so it cannot see the
//! communication-aware engine at all. A **second gated workload**
//! ([`ftdes_bench::comm_heavy_problem_with`]: five edges per process,
//! 4–16 byte messages, a bus where an average transfer costs half an
//! average WCET — several hundred bookings per evaluation) is
//! therefore run two ways:
//!
//! 1. **pr2** — incremental + bounded exactly as PR 2 shipped it:
//!    the certified bus-wait lower bound disabled
//!    (`Problem::with_comm_lookahead(false)`) and bus messages booked
//!    through the legacy flat tail scan (`Problem::with_flat_occupancy`),
//!    whose whole-table rescan per overflowed round turns quadratic on
//!    congested buses,
//! 2. **incremental** — the current default: the per-(node, slot)
//!    occupancy index books in O(log occupied rounds), and the
//!    bus-wait floor folds into the abort bound.
//!
//! Both runs walk bit-identical trajectories (the bound is
//! admissible and both booking paths pick identical slot
//! occurrences — it changes *how fast* a candidate is scored, never
//! *which* candidate wins), so the candidate-rate ratio cleanly
//! measures the communication-aware additions. `BENCH_tabu.json`
//! gains `comm_workload` / `comm_pr2` / `comm` sections and a
//! `comm_candidate_rate_vs_pr2` ratio; CI enforces its floor (1.15×).
//!
//! # The occupancy gate
//!
//! A **third gated workload** pushes the communication family to the
//! regime where the booking structure itself dominates per-candidate
//! cost: [`CommHeavyParams::stress`] (twenty-four edges per process,
//! message/WCET ratio 3) at k = 2 piles thousands of replicated
//! messages onto contended TDMA rounds, so the PR 3 sorted-vec
//! occupancy index degenerates into long per-round walks over
//! partially-filled-but-unfitting rounds. Both arms run full
//! from-scratch placements (checkpoint resume and bounded early-exit
//! off — the cold-start / greedy / portfolio-prologue regime, where
//! every candidate exercises the full booking table). The arms differ
//! only in the backend: the round-sorted index (`occ_indexed`) vs the
//! default bit-packed saturation bitmap (`occ`), which skips saturated
//! words whole and walks partial words with a branch-light threshold
//! scan. Like the comm gate, the backend is a pure throughput knob
//! (bit-identical bookings), so
//! `occ_speedup.occ_candidate_rate_vs_indexed` cleanly isolates the
//! bitmap; CI enforces its floor (1.05×). The floor was re-calibrated
//! down from 1.15× in PR 10: an A/B with function placement
//! neutralized (`-C llvm-args=-align-all-functions=6`, both arms)
//! shows the structural bitmap advantage on the 1-CPU container is
//! ~1.07×, and the rest of the historical 1.2×+ readings was code
//! *layout* luck that rerolls on any unrelated edit — a floor above
//! the structural value keys the gate on the linker lottery, not on
//! the backend. The standalone `occbench`
//! binary sweeps all three backends (flat / indexed / bitmap) into
//! `BENCH_occ.json` for ablation.
//!
//! # The multi-core portfolio section
//!
//! A final sweep runs the portfolio engine
//! ([`ftdes_core::portfolio`]) at 1 / 2 / 4 workers over the paper
//! gate workload with a **fixed iteration budget per worker** and
//! single-threaded per-worker evaluation, recording the aggregate and
//! per-core candidate rates plus the scaling efficiencies
//! (`rate(w) / rate(1)`) into the `multicore` section of
//! `BENCH_tabu.json`. The 4-worker floor (1.3×) is **non-gating**: a
//! 1-CPU container measures ≈ 1.0× by construction, so the floor only
//! becomes meaningful (and, later, gateable) on a multi-core runner —
//! `environment.threads` / `multicore.available_parallelism` tell the
//! two apart.

use std::time::Duration;

use ftdes_bench::{comm_heavy_problem_with, synthetic_problem, time_budget};
use ftdes_core::{
    effective_threads, optimize, optimize_portfolio, Goal, Outcome, PolicySpace, PortfolioConfig,
    Problem, SearchConfig, Strategy,
};
use ftdes_gen::CommHeavyParams;
use ftdes_model::time::Time;

/// The measurement environment, recorded into `BENCH_tabu.json` so
/// runs stay comparable across machines: the resolved worker-thread
/// count (everything so far is measured on 1-CPU containers — a
/// future multi-core validation run must be distinguishable from
/// them) and a snapshot of every `FTDES_*` knob that can bend the
/// numbers.
fn environment_json() -> String {
    const KNOBS: [&str; 12] = [
        "FTDES_TIME_MS",
        "FTDES_SEEDS",
        "FTDES_THREADS",
        "FTDES_NO_PARALLEL",
        "RAYON_NUM_THREADS",
        "FTDES_NO_SPLICE",
        "FTDES_RECONV",
        "FTDES_NO_RECONV",
        "FTDES_MAX_CHECKPOINTS",
        "FTDES_SPLICE_METRICS",
        "FTDES_OCC_BACKEND",
        "FTDES_PRIORITY",
    ];
    // Minimal JSON string escaping (Rust's `escape_default` emits
    // `\'`/`\u{..}` forms that are not valid JSON).
    fn json_escape(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let knobs: Vec<String> = KNOBS
        .iter()
        .map(|k| match std::env::var(k) {
            Ok(v) => format!("\"{k}\": \"{}\"", json_escape(&v)),
            Err(_) => format!("\"{k}\": null"),
        })
        .collect();
    format!(
        "{{\"threads\": {}, \"knobs\": {{{}}}}}",
        effective_threads(0),
        knobs.join(", ")
    )
}

/// Processes / nodes / k of the gate workload: large enough that a
/// budgeted run is evaluation-bound, small enough to finish quickly.
const PROCESSES: usize = 40;
const NODES: usize = 4;
const FAULTS: u32 = 3;
const SEEDS: u64 = 3;

/// The communication-heavy gate workload: a denser graph (five edges
/// per process — several hundred bus messages per evaluation), k = 2
/// so the fault dimension doesn't drown the bus dimension.
const COMM_PROCESSES: usize = 50;
const COMM_DENSITY: f64 = 5.0;
const COMM_FAULTS: u32 = 2;
const COMM_SEEDS: u64 = 3;

/// The suffix-splice gate workload (paper family, larger machine):
/// the affected cone of a move spans the moved process's replica
/// nodes plus everything node-chained behind them, so on the 4-node
/// legacy gate a k = 3 move dirties most of the machine and the
/// splice has no suffix locality to exploit (measured ~1.0× there —
/// recorded as the informational `candidate_rate_vs_pr3` of the
/// legacy gate). At 12 nodes a move leaves most nodes untouched and
/// the engine's reuse is structural, not incidental.
const SPLICE_PROCESSES: usize = 96;
const SPLICE_NODES: usize = 12;
const SPLICE_FAULTS: u32 = 3;
const SPLICE_SEEDS: u64 = 3;

/// The reconvergence gate rides the **legacy narrow-machine workload**
/// (40 processes / 4 nodes / k = 3) on purpose: that is the regime
/// where a move node-chains most of the machine and the v3 cone has
/// no suffix locality left — the regime the v4 chain cuts were built
/// to recover. Measured, they do not pay here (0.77–0.80× candidate
/// rate; see the module docs), so the floor on
/// `reconv_candidate_rate_vs_off` is a regression guard for the
/// opt-in machinery's overhead envelope, not a speedup claim.
const RECONV_SEEDS: u64 = 3;
const RECONV_FLOOR: f64 = 0.70;

/// The occupancy gate workload ([`CommHeavyParams::stress`]: twenty-four
/// edges per process, message/WCET ratio 3, k = 2 so replication
/// multiplies the sends — thousands of messages fighting over
/// contended TDMA rounds): the regime where the booking structure
/// dominates per-candidate cost. Both arms run **from-scratch
/// placements** ([`occ_gate_config`]: checkpoint resume off, the
/// cold-start / greedy / portfolio-prologue regime) so every
/// candidate exercises the full booking table; they differ only in
/// the backend — the PR 3 round-sorted index vs the default
/// bit-packed bitmap — and walk bit-identical trajectories, so the
/// candidate-rate ratio isolates exactly the booking structure. CI
/// enforces the floor (1.05×; see the module docs for the PR 10
/// layout-neutralized re-calibration) on
/// `occ_speedup.occ_candidate_rate_vs_indexed`.
const OCC_PROCESSES: usize = 48;
const OCC_FAULTS: u32 = 2;
const OCC_SEEDS: u64 = 3;

/// The multi-core portfolio gate: worker counts swept over the paper
/// gate workload at a **fixed iteration budget per worker** (no
/// wall-clock cutoff), so the aggregate candidate rate cleanly
/// measures how well extra workers turn into extra throughput.
/// Scaling efficiency at `w` workers is
/// `aggregate_rate(w) / aggregate_rate(1)`; the acceptance floor
/// (1.3× at 4 workers) is recorded **non-gating** — the numbers only
/// mean something on a multi-core runner (`available_parallelism` in
/// the environment section tells them apart; a 1-CPU container
/// measures ≈ 1.0× by construction).
const MULTICORE_WORKERS: [usize; 3] = [1, 2, 4];
const MULTICORE_ITERATIONS: usize = 120;
const MULTICORE_SEEDS: u64 = 2;
const MULTICORE_FLOOR_4W: f64 = 1.3;

/// Execution order of the per-section subprocesses. With one fresh
/// process per section the order no longer affects any ratio; the
/// occupancy gate simply keeps its historical first slot.
const SECTIONS: [&str; 6] = ["occ", "paper", "splice", "comm", "reconv", "multicore"];

/// Key order of the assembled `BENCH_tabu.json` (environment first
/// for human readers; CI loads it as a dict and doesn't care).
const ASSEMBLY: [&str; 6] = ["paper", "splice", "comm", "reconv", "occ", "multicore"];

#[derive(Debug, Default, Clone, Copy)]
struct ModeTotals {
    tabu_iterations: usize,
    evaluations: usize,
    cache_hits: usize,
    pruned: usize,
    elapsed: Duration,
    best_length_us: u64,
}

impl ModeTotals {
    fn add(&mut self, outcome: &Outcome) {
        self.tabu_iterations += outcome.stats.tabu_iterations;
        self.evaluations += outcome.stats.evaluations;
        self.cache_hits += outcome.stats.cache_hits;
        self.pruned += outcome.stats.pruned;
        self.elapsed += outcome.stats.elapsed;
        self.best_length_us += outcome.length().as_us();
    }

    fn evals_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.evaluations as f64 / secs
    }

    /// Candidates scored per second — schedules computed, cache hits,
    /// and bounded-pruned candidates (each pruned candidate was
    /// examined exactly far enough to prove it cannot win); the rate
    /// the search actually consumes its neighbourhood at.
    fn candidates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.evaluations + self.cache_hits + self.pruned) as f64 / secs
    }

    fn json(&self) -> String {
        format!(
            "{{\"tabu_iterations\": {}, \"evaluations\": {}, \"cache_hits\": {}, \
             \"pruned\": {}, \"elapsed_ms\": {}, \"evals_per_sec\": {:.1}, \
             \"candidates_per_sec\": {:.1}, \"best_length_us\": {}}}",
            self.tabu_iterations,
            self.evaluations,
            self.cache_hits,
            self.pruned,
            self.elapsed.as_millis(),
            self.evals_per_sec(),
            self.candidates_per_sec(),
            self.best_length_us
        )
    }
}

fn gate_config(budget: Duration) -> SearchConfig {
    SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: Some(budget),
        max_tabu_iterations: usize::MAX,
        ..SearchConfig::default()
    }
}

/// The current default path: incremental + bounded evaluation.
fn run_incremental(problem: &Problem, budget: Duration) -> Outcome {
    optimize(problem, Strategy::Mxr, &gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate incremental search: {e}"))
}

/// The PR 1 path: parallel + memoized cost-only evaluation, every
/// candidate placed from scratch over the sparse `BTreeMap` WCET
/// table (the dense matrix landed with the incremental engine), no
/// bounds, no checkpoints.
fn run_pr1(problem: &Problem, budget: Duration) -> Outcome {
    let cfg = SearchConfig {
        incremental: false,
        bounded: false,
        ..gate_config(budget)
    };
    let problem = problem.clone().with_sparse_wcet_lookup();
    optimize(&problem, Strategy::Mxr, &cfg).unwrap_or_else(|e| panic!("perfgate pr1 search: {e}"))
}

/// The PR 3 path: everything the previous default had — checkpoint
/// resume, bounded early-exit, the comm-aware engine — with suffix
/// splicing disabled. The candidate-rate ratio against this isolates
/// exactly the splice engine's contribution.
fn run_pr3(problem: &Problem, budget: Duration) -> Outcome {
    let problem = problem.clone().with_suffix_splice(false);
    optimize(&problem, Strategy::Mxr, &gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate pr3 search: {e}"))
}

/// The PR 2 path on the communication-heavy workload: incremental +
/// bounded exactly as PR 2 shipped it — the certified bus-wait lower
/// bound disabled (the abort bound falls back to the computation-only
/// per-node lookahead) and bus messages booked through the legacy
/// flat tail scan instead of the per-(node, slot) occupancy index.
/// Both knobs are bit-identical in results, so the candidate-rate
/// ratio isolates exactly this PR's communication-aware additions.
fn run_pr2(problem: &Problem, budget: Duration) -> Outcome {
    let problem = problem
        .clone()
        .with_comm_lookahead(false)
        .with_flat_occupancy();
    optimize(&problem, Strategy::Mxr, &gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate pr2 search: {e}"))
}

/// The v3 engine on the reconvergence gate: the full default path
/// with only the chain cuts disabled. Pinned explicitly (rather than
/// through `FTDES_NO_RECONV`) so the arm is what it says regardless
/// of the environment.
fn run_reconv_off(problem: &Problem, budget: Duration) -> Outcome {
    let problem = problem.clone().with_reconvergence(false);
    optimize(&problem, Strategy::Mxr, &gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate reconv-off search: {e}"))
}

/// The v4 engine on the reconvergence gate, cuts pinned on.
fn run_reconv_on(problem: &Problem, budget: Duration) -> Outcome {
    let problem = problem.clone().with_reconvergence(true);
    optimize(&problem, Strategy::Mxr, &gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate reconv-on search: {e}"))
}

/// The occupancy gate's search configuration: [`gate_config`] with
/// checkpoint resume *and* bounded early-exit off, so every candidate
/// re-places (and re-books) the whole instance from scratch. The
/// resume engine replays only a suffix of the bookings per candidate
/// and the abort bound truncates most placements before their
/// booking-heavy tail — both dilute the booking structure's share of
/// candidate cost with work identical across backends. Both knobs
/// are pure throughput knobs (bit-identical selections), so the
/// full-placement arms stay a clean ablation and measure the
/// structure at full exposure — the regime of every cold start,
/// greedy descent and portfolio prologue.
fn occ_gate_config(budget: Duration) -> SearchConfig {
    SearchConfig {
        incremental: false,
        bounded: false,
        ..gate_config(budget)
    }
}

/// The PR 3 booking structure on the occupancy gate: the from-scratch
/// engine with the occupancy backend rolled back to the round-sorted
/// index. Bit-identical trajectories with [`run_occ_bitmap`], so the
/// ratio isolates the booking structure alone.
fn run_occ_indexed(problem: &Problem, budget: Duration) -> Outcome {
    let problem = problem
        .clone()
        .with_occupancy_backend(ftdes_core::OccupancyBackend::Indexed);
    optimize(&problem, Strategy::Mxr, &occ_gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate occ-indexed search: {e}"))
}

/// The default bit-packed bitmap backend on the occupancy gate, under
/// the same from-scratch configuration as [`run_occ_indexed`].
fn run_occ_bitmap(problem: &Problem, budget: Duration) -> Outcome {
    optimize(problem, Strategy::Mxr, &occ_gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate occ-bitmap search: {e}"))
}

fn run_baseline(problem: &Problem, budget: Duration) -> Outcome {
    // The frozen reference also predates the dense WCET matrix.
    let problem = problem.clone().with_sparse_wcet_lookup();
    let (design, schedule, stats) =
        ftdes_bench::legacy::optimize_mxr_reference(&problem, &gate_config(budget))
            .unwrap_or_else(|e| panic!("perfgate baseline: {e}"));
    Outcome {
        design,
        schedule,
        stats,
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    a / b.max(f64::MIN_POSITIVE)
}

/// The occupancy-gate section: bit-packed bitmap vs round-sorted
/// index under full from-scratch placements.
fn section_occ() -> String {
    let budget = time_budget();
    let mut occ_indexed = ModeTotals::default();
    let mut occ_bitmap = ModeTotals::default();
    let occ_params = CommHeavyParams::stress(OCC_PROCESSES);
    println!(
        "perfgate (occupancy): {OCC_PROCESSES} processes / {NODES} nodes / k = {OCC_FAULTS}, \
         density {} / ratio {}, {OCC_SEEDS} seeds, {budget:?} per run per mode",
        occ_params.edge_density, occ_params.msg_wcet_ratio
    );
    for seed in 0..OCC_SEEDS {
        let problem =
            comm_heavy_problem_with(&occ_params, NODES, OCC_FAULTS, Time::from_ms(5), seed);
        let indexed = run_occ_indexed(&problem, budget);
        let bitmap = run_occ_bitmap(&problem, budget);
        println!(
            "  seed {seed}: indexed {} iters / {} evals (+{} hits, {} pruned) | \
             bitmap {} iters / {} evals (+{} hits, {} pruned)",
            indexed.stats.tabu_iterations,
            indexed.stats.evaluations,
            indexed.stats.cache_hits,
            indexed.stats.pruned,
            bitmap.stats.tabu_iterations,
            bitmap.stats.evaluations,
            bitmap.stats.cache_hits,
            bitmap.stats.pruned,
        );
        occ_indexed.add(&indexed);
        occ_bitmap.add(&bitmap);
    }
    let occ_cand_vs_indexed = ratio(
        occ_bitmap.candidates_per_sec(),
        occ_indexed.candidates_per_sec(),
    );
    let occ_iter_vs_indexed = ratio(
        occ_bitmap.tabu_iterations as f64,
        occ_indexed.tabu_iterations.max(1) as f64,
    );
    println!(
        "occupancy (density {}), bitmap vs indexed: {occ_iter_vs_indexed:.2}x tabu iterations, \
         {occ_cand_vs_indexed:.2}x candidate rate (floor 1.05x)",
        occ_params.edge_density
    );
    format!(
        "\"occ_workload\": {{\"family\": \"comm_heavy_stress\", \"processes\": {OCC_PROCESSES}, \
         \"edge_density\": {}, \"msg_wcet_ratio\": {}, \"nodes\": {NODES}, \
         \"k\": {OCC_FAULTS}, \"seeds\": {OCC_SEEDS}, \
         \"budget_ms\": {}}},\n  \"occ_indexed\": {},\n  \"occ\": {},\n  \
         \"occ_speedup\": {{\"tabu_iterations_vs_indexed\": {occ_iter_vs_indexed:.2}, \
         \"occ_candidate_rate_vs_indexed\": {occ_cand_vs_indexed:.2}, \"floor\": 1.05}}",
        occ_params.edge_density,
        occ_params.msg_wcet_ratio,
        budget.as_millis(),
        occ_indexed.json(),
        occ_bitmap.json(),
    )
}

/// The legacy paper-workload section: baseline / pr1 / pr3 /
/// incremental, plus the environment snapshot.
fn section_paper() -> String {
    let budget = time_budget();
    let mut baseline = ModeTotals::default();
    let mut pr1 = ModeTotals::default();
    let mut pr3 = ModeTotals::default();
    let mut incremental = ModeTotals::default();

    println!(
        "perfgate: {PROCESSES} processes / {NODES} nodes / k = {FAULTS}, \
         {SEEDS} seeds, {budget:?} per run per mode"
    );
    for seed in 0..SEEDS {
        let problem = synthetic_problem(PROCESSES, NODES, FAULTS, Time::from_ms(5), seed);
        let base = run_baseline(&problem, budget);
        let mid = run_pr1(&problem, budget);
        let resumed = run_pr3(&problem, budget);
        let incr = run_incremental(&problem, budget);
        println!(
            "  seed {seed}: baseline {} iters / {} evals | pr1 {} iters / {} evals (+{} hits) | \
             pr3 {} iters / {} evals (+{} hits, {} pruned) | \
             spliced {} iters / {} evals (+{} hits, {} pruned)",
            base.stats.tabu_iterations,
            base.stats.evaluations,
            mid.stats.tabu_iterations,
            mid.stats.evaluations,
            mid.stats.cache_hits,
            resumed.stats.tabu_iterations,
            resumed.stats.evaluations,
            resumed.stats.cache_hits,
            resumed.stats.pruned,
            incr.stats.tabu_iterations,
            incr.stats.evaluations,
            incr.stats.cache_hits,
            incr.stats.pruned,
        );
        baseline.add(&base);
        pr1.add(&mid);
        pr3.add(&resumed);
        incremental.add(&incr);
    }

    if std::env::var("FTDES_SPLICE_METRICS").is_ok() {
        let (engaged, gated, diverged, splice_ns, pr2_ns) =
            ftdes_sched::incremental::metrics::snapshot();
        let (cert_ns, prep_ns, cone_ns, pr2_calls) = ftdes_sched::incremental::metrics::phases();
        // Note: the pr2-path totals span every mode that resumes
        // (the pr3 ablation runs included), not just the spliced
        // mode's fallbacks.
        println!(
            "splice metrics: engaged {engaged} ({:.2} us avg) | gate-rejected {gated} | \
             diverged {diverged} | pr2-path replays {pr2_calls} ({:.2} us avg, all modes)",
            splice_ns as f64 / 1e3 / engaged.max(1) as f64,
            pr2_ns as f64 / 1e3 / pr2_calls.max(1) as f64,
        );
        let all = (engaged + gated + diverged).max(1) as f64;
        println!(
            "  per eligible candidate: prepare {:.2} us | cert {:.2} us | cone {:.2} us",
            prep_ns as f64 / 1e3 / all,
            cert_ns as f64 / 1e3 / all,
            cone_ns as f64 / 1e3 / (engaged + gated).max(1) as f64,
        );
    }

    let iter_speedup = ratio(
        incremental.tabu_iterations as f64,
        baseline.tabu_iterations.max(1) as f64,
    );
    let cand_speedup = ratio(
        incremental.candidates_per_sec(),
        baseline.candidates_per_sec(),
    );
    let iter_vs_pr1 = ratio(
        incremental.tabu_iterations as f64,
        pr1.tabu_iterations.max(1) as f64,
    );
    let cand_vs_pr1 = ratio(incremental.candidates_per_sec(), pr1.candidates_per_sec());
    let iter_vs_pr3 = ratio(
        incremental.tabu_iterations as f64,
        pr3.tabu_iterations.max(1) as f64,
    );
    let cand_vs_pr3 = ratio(incremental.candidates_per_sec(), pr3.candidates_per_sec());
    // Informational only: under a wall-clock budget the modes
    // truncate the trajectory at different points (stage midpoints,
    // cutoffs), so per-seed best lengths can move either way.
    let length_ratio = ratio(
        incremental.best_length_us as f64,
        baseline.best_length_us.max(1) as f64,
    );
    println!(
        "vs legacy baseline: {iter_speedup:.2}x tabu iterations, {cand_speedup:.2}x candidate rate"
    );
    println!(
        "vs PR 1 path:       {iter_vs_pr1:.2}x tabu iterations, {cand_vs_pr1:.2}x candidate rate \
         (best-length ratio {length_ratio:.3})"
    );
    println!(
        "vs PR 3 path:       {iter_vs_pr3:.2}x tabu iterations, {cand_vs_pr3:.2}x candidate rate \
         (suffix splice on vs off; 4 nodes leave the cone no locality — informational)"
    );
    format!(
        "\"environment\": {},\n  \
         \"workload\": {{\"processes\": {PROCESSES}, \"nodes\": {NODES}, \"k\": {FAULTS}, \
         \"seeds\": {SEEDS}, \"budget_ms\": {}}},\n  \"baseline\": {},\n  \"pr1\": {},\n  \
         \"pr3\": {},\n  \
         \"incremental\": {},\n  \"speedup\": {{\"tabu_iterations\": {iter_speedup:.2}, \
         \"candidate_rate\": {cand_speedup:.2}, \"tabu_iterations_vs_pr1\": {iter_vs_pr1:.2}, \
         \"candidate_rate_vs_pr1\": {cand_vs_pr1:.2}, \
         \"tabu_iterations_vs_pr3\": {iter_vs_pr3:.2}, \
         \"candidate_rate_vs_pr3\": {cand_vs_pr3:.2}, \
         \"best_length_ratio\": {length_ratio:.3}}}",
        environment_json(),
        budget.as_millis(),
        baseline.json(),
        pr1.json(),
        pr3.json(),
        incremental.json(),
    )
}

/// The suffix-splice gate section (paper family, 12 nodes).
fn section_splice() -> String {
    let budget = time_budget();
    let mut splice_pr3 = ModeTotals::default();
    let mut splice_incr = ModeTotals::default();
    println!(
        "perfgate (splice gate): {SPLICE_PROCESSES} processes / {SPLICE_NODES} nodes / \
         k = {SPLICE_FAULTS}, {SPLICE_SEEDS} seeds, {budget:?} per run per mode"
    );
    for seed in 0..SPLICE_SEEDS {
        let problem = synthetic_problem(
            SPLICE_PROCESSES,
            SPLICE_NODES,
            SPLICE_FAULTS,
            Time::from_ms(5),
            seed,
        );
        let resumed = run_pr3(&problem, budget);
        let incr = run_incremental(&problem, budget);
        println!(
            "  seed {seed}: pr3 {} iters / {} evals (+{} hits, {} pruned) | \
             spliced {} iters / {} evals (+{} hits, {} pruned)",
            resumed.stats.tabu_iterations,
            resumed.stats.evaluations,
            resumed.stats.cache_hits,
            resumed.stats.pruned,
            incr.stats.tabu_iterations,
            incr.stats.evaluations,
            incr.stats.cache_hits,
            incr.stats.pruned,
        );
        splice_pr3.add(&resumed);
        splice_incr.add(&incr);
    }
    let splice_cand_vs_pr3 = ratio(
        splice_incr.candidates_per_sec(),
        splice_pr3.candidates_per_sec(),
    );
    let splice_iter_vs_pr3 = ratio(
        splice_incr.tabu_iterations as f64,
        splice_pr3.tabu_iterations.max(1) as f64,
    );
    println!(
        "splice gate ({SPLICE_NODES} nodes), suffix splice vs PR 3 path: \
         {splice_iter_vs_pr3:.2}x tabu iterations, {splice_cand_vs_pr3:.2}x candidate rate"
    );
    format!(
        "\"splice_workload\": {{\"family\": \"paper\", \"processes\": {SPLICE_PROCESSES}, \
         \"nodes\": {SPLICE_NODES}, \"k\": {SPLICE_FAULTS}, \"seeds\": {SPLICE_SEEDS}, \
         \"budget_ms\": {}}},\n  \"splice_pr3\": {},\n  \"splice\": {},\n  \
         \"splice_speedup\": {{\"tabu_iterations_vs_pr3\": {splice_iter_vs_pr3:.2}, \
         \"splice_candidate_rate_vs_pr3\": {splice_cand_vs_pr3:.2}}}",
        budget.as_millis(),
        splice_pr3.json(),
        splice_incr.json(),
    )
}

/// The communication-heavy gate section.
fn section_comm() -> String {
    let budget = time_budget();
    let mut comm_pr2 = ModeTotals::default();
    let mut comm_incr = ModeTotals::default();
    println!(
        "perfgate (comm-heavy): {COMM_PROCESSES} processes / {NODES} nodes / k = {COMM_FAULTS}, \
         {COMM_SEEDS} seeds, {budget:?} per run per mode"
    );
    let comm_params = CommHeavyParams::dense(COMM_PROCESSES).with_density(COMM_DENSITY);
    for seed in 0..COMM_SEEDS {
        let problem =
            comm_heavy_problem_with(&comm_params, NODES, COMM_FAULTS, Time::from_ms(5), seed);
        let pr2 = run_pr2(&problem, budget);
        let incr = run_incremental(&problem, budget);
        println!(
            "  seed {seed}: pr2 {} iters / {} evals (+{} hits, {} pruned) | \
             comm-bound {} iters / {} evals (+{} hits, {} pruned)",
            pr2.stats.tabu_iterations,
            pr2.stats.evaluations,
            pr2.stats.cache_hits,
            pr2.stats.pruned,
            incr.stats.tabu_iterations,
            incr.stats.evaluations,
            incr.stats.cache_hits,
            incr.stats.pruned,
        );
        comm_pr2.add(&pr2);
        comm_incr.add(&incr);
    }
    let comm_cand_vs_pr2 = ratio(
        comm_incr.candidates_per_sec(),
        comm_pr2.candidates_per_sec(),
    );
    let comm_iter_vs_pr2 = ratio(
        comm_incr.tabu_iterations as f64,
        comm_pr2.tabu_iterations.max(1) as f64,
    );
    println!(
        "comm-heavy, bus-wait bound vs PR 2 path: {comm_iter_vs_pr2:.2}x tabu iterations, \
         {comm_cand_vs_pr2:.2}x candidate rate"
    );
    format!(
        "\"comm_workload\": {{\"family\": \"comm_heavy\", \"processes\": {COMM_PROCESSES}, \
         \"edge_density\": {COMM_DENSITY}, \"msg_wcet_ratio\": {}, \"nodes\": {NODES}, \
         \"k\": {COMM_FAULTS}, \"seeds\": {COMM_SEEDS}, \
         \"budget_ms\": {}}},\n  \"comm_pr2\": {},\n  \"comm\": {},\n  \
         \"comm_speedup\": {{\"tabu_iterations_vs_pr2\": {comm_iter_vs_pr2:.2}, \
         \"comm_candidate_rate_vs_pr2\": {comm_cand_vs_pr2:.2}}}",
        comm_params.msg_wcet_ratio,
        budget.as_millis(),
        comm_pr2.json(),
        comm_incr.json(),
    )
}

/// The reconvergence gate section (narrow machine, cuts on vs off).
fn section_reconv() -> String {
    let budget = time_budget();
    let mut off = ModeTotals::default();
    let mut on = ModeTotals::default();
    println!(
        "perfgate (reconvergence): {PROCESSES} processes / {NODES} nodes / k = {FAULTS}, \
         {RECONV_SEEDS} seeds, {budget:?} per run per mode"
    );
    ftdes_sched::incremental::metrics::enable();
    for seed in 0..RECONV_SEEDS {
        let problem = synthetic_problem(PROCESSES, NODES, FAULTS, Time::from_ms(5), seed);
        let o = run_reconv_off(&problem, budget);
        let n = run_reconv_on(&problem, budget);
        println!(
            "  seed {seed}: reconv-off {} iters / {} evals (+{} hits, {} pruned) | \
             reconv-on {} iters / {} evals (+{} hits, {} pruned)",
            o.stats.tabu_iterations,
            o.stats.evaluations,
            o.stats.cache_hits,
            o.stats.pruned,
            n.stats.tabu_iterations,
            n.stats.evaluations,
            n.stats.cache_hits,
            n.stats.pruned,
        );
        off.add(&o);
        on.add(&n);
    }
    let (cuts, failed) = ftdes_sched::incremental::metrics::reconv();
    let cand_vs_off = ratio(on.candidates_per_sec(), off.candidates_per_sec());
    let iter_vs_off = ratio(on.tabu_iterations as f64, off.tabu_iterations.max(1) as f64);
    println!(
        "reconvergence gate ({NODES} nodes), certificate on vs off: {iter_vs_off:.2}x tabu \
         iterations, {cand_vs_off:.2}x candidate rate (floor {RECONV_FLOOR}x; \
         {cuts} chains cut, {failed} cuts failed verification)"
    );
    format!(
        "\"reconv_workload\": {{\"family\": \"paper\", \"processes\": {PROCESSES}, \
         \"nodes\": {NODES}, \"k\": {FAULTS}, \"seeds\": {RECONV_SEEDS}, \
         \"budget_ms\": {}}},\n  \"reconv_off\": {},\n  \"reconv\": {},\n  \
         \"reconv_speedup\": {{\"tabu_iterations_vs_off\": {iter_vs_off:.2}, \
         \"reconv_candidate_rate_vs_off\": {cand_vs_off:.2}, \
         \"chains_cut\": {cuts}, \"cuts_failed\": {failed}, \"floor\": {RECONV_FLOOR}}}",
        budget.as_millis(),
        off.json(),
        on.json(),
    )
}

/// The multi-core portfolio sweep: fixed work per worker, wall-clock
/// measured. `threads: 1` pins every worker's own evaluation to one
/// thread so the sweep isolates seed-level (portfolio) parallelism
/// from window parallelism.
fn section_multicore() -> String {
    println!(
        "perfgate (multicore): {PROCESSES} processes / {NODES} nodes / k = {FAULTS}, \
         {MULTICORE_SEEDS} seeds, {MULTICORE_ITERATIONS} iterations per worker, \
         workers {MULTICORE_WORKERS:?}"
    );
    let mut mc_elapsed_ms: Vec<u128> = Vec::new();
    let mut mc_candidates: Vec<usize> = Vec::new();
    let mut mc_rates: Vec<f64> = Vec::new();
    for &workers in &MULTICORE_WORKERS {
        let mut candidates = 0usize;
        let mut elapsed = Duration::ZERO;
        for seed in 0..MULTICORE_SEEDS {
            let problem = synthetic_problem(PROCESSES, NODES, FAULTS, Time::from_ms(5), seed);
            let cfg = SearchConfig {
                goal: Goal::MinimizeLength,
                time_limit: None,
                max_tabu_iterations: MULTICORE_ITERATIONS,
                threads: 1,
                ..SearchConfig::default()
            };
            let pcfg = PortfolioConfig {
                workers,
                epoch_candidates: 2_048,
                ..PortfolioConfig::default()
            };
            let out = optimize_portfolio(&problem, PolicySpace::Mixed, &cfg, &pcfg)
                .unwrap_or_else(|e| panic!("perfgate multicore portfolio: {e}"));
            candidates += out.outcome.stats.candidates();
            elapsed += out.outcome.stats.elapsed;
        }
        let rate = candidates as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "  {workers} workers: {candidates} candidates in {} ms -> {rate:.1}/s aggregate",
            elapsed.as_millis()
        );
        mc_elapsed_ms.push(elapsed.as_millis());
        mc_candidates.push(candidates);
        mc_rates.push(rate);
    }
    let mc_scaling_2w = ratio(mc_rates[1], mc_rates[0]);
    let mc_scaling_4w = ratio(mc_rates[2], mc_rates[0]);
    let cores = effective_threads(0);
    let mc_per_core: Vec<String> = MULTICORE_WORKERS
        .iter()
        .zip(&mc_rates)
        .map(|(&w, &r)| format!("{:.1}", r / w.min(cores).max(1) as f64))
        .collect();
    println!(
        "multicore portfolio ({cores} cores): {mc_scaling_2w:.2}x aggregate candidate rate at \
         2 workers, {mc_scaling_4w:.2}x at 4 workers \
         (floor {MULTICORE_FLOOR_4W}x at 4 workers, non-gating)"
    );
    format!(
        "\"multicore\": {{\"available_parallelism\": {cores}, \
         \"iterations_per_worker\": {MULTICORE_ITERATIONS}, \
         \"seeds\": {MULTICORE_SEEDS}, \"workers\": {MULTICORE_WORKERS:?}, \
         \"elapsed_ms\": {mc_elapsed_ms:?}, \"candidates\": {mc_candidates:?}, \
         \"aggregate_candidate_rate\": [{}], \"per_core_candidate_rate\": [{}], \
         \"scaling_efficiency_2w\": {mc_scaling_2w:.2}, \
         \"scaling_efficiency_4w\": {mc_scaling_4w:.2}, \
         \"floor_4w\": {MULTICORE_FLOOR_4W}, \"gating\": false}}",
        mc_rates
            .iter()
            .map(|r| format!("{r:.1}"))
            .collect::<Vec<_>>()
            .join(", "),
        mc_per_core.join(", "),
    )
}

fn run_section(name: &str) -> Option<String> {
    Some(match name {
        "occ" => section_occ(),
        "paper" => section_paper(),
        "splice" => section_splice(),
        "comm" => section_comm(),
        "reconv" => section_reconv(),
        "multicore" => section_multicore(),
        _ => return None,
    })
}

/// Runs every section inside this process (the pre-subprocess
/// behaviour) — the fallback when the binary cannot re-spawn itself,
/// and the explicit `FTDES_PERFGATE_SECTION=all` escape hatch.
fn run_all_in_process() -> Vec<(String, String)> {
    SECTIONS
        .iter()
        .map(|&s| {
            (
                s.to_string(),
                run_section(s).expect("every listed section resolves"),
            )
        })
        .collect()
}

/// Spawns one child per section (fresh heap each — see the module
/// docs), falling back to in-process execution if spawning fails.
fn run_all_sections() -> Vec<(String, String)> {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("perfgate: cannot locate own binary ({e}); running sections in-process");
            return run_all_in_process();
        }
    };
    let mut fragments = Vec::new();
    for &section in &SECTIONS {
        let out_path = std::env::temp_dir().join(format!("perfgate_{section}.json"));
        let status = std::process::Command::new(&exe)
            .env("FTDES_PERFGATE_SECTION", section)
            .env("FTDES_PERFGATE_OUT", &out_path)
            .status();
        let ok = matches!(&status, Ok(s) if s.success());
        if !ok {
            match status {
                Ok(s) => panic!("perfgate: section '{section}' failed ({s})"),
                Err(e) => {
                    eprintln!(
                        "perfgate: cannot spawn section '{section}' ({e}); \
                         running all sections in-process"
                    );
                    return run_all_in_process();
                }
            }
        }
        let fragment = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("perfgate: section '{section}' left no output: {e}"));
        let _ = std::fs::remove_file(&out_path);
        fragments.push((section.to_string(), fragment));
    }
    fragments
}

fn main() -> std::process::ExitCode {
    if std::env::var("FTDES_SPLICE_METRICS").is_ok() {
        ftdes_sched::incremental::metrics::enable();
    }

    // Child mode: run one section, write its JSON fragment where the
    // parent asked, exit.
    if let Ok(section) = std::env::var("FTDES_PERFGATE_SECTION") {
        if section != "all" {
            let Some(fragment) = run_section(&section) else {
                eprintln!("perfgate: unknown section '{section}' (valid: {SECTIONS:?}, all)");
                return std::process::ExitCode::FAILURE;
            };
            if let Ok(out) = std::env::var("FTDES_PERFGATE_OUT") {
                if let Err(e) = std::fs::write(&out, &fragment) {
                    eprintln!("perfgate: cannot write section output {out}: {e}");
                    return std::process::ExitCode::FAILURE;
                }
            } else {
                println!("{fragment}");
            }
            return std::process::ExitCode::SUCCESS;
        }
    }

    let fragments = if std::env::var("FTDES_PERFGATE_SECTION").as_deref() == Ok("all") {
        run_all_in_process()
    } else {
        run_all_sections()
    };

    let ordered: Vec<&str> = ASSEMBLY
        .iter()
        .map(|&key| {
            fragments
                .iter()
                .find(|(s, _)| s == key)
                .map(|(_, f)| f.as_str())
                .unwrap_or_else(|| panic!("perfgate: section '{key}' produced no fragment"))
        })
        .collect();
    let json = format!("{{\n  {}\n}}\n", ordered.join(",\n  "));
    if let Err(e) = std::fs::write("BENCH_tabu.json", &json) {
        eprintln!("perfgate: cannot write BENCH_tabu.json: {e}");
        return std::process::ExitCode::FAILURE;
    }
    println!("\n{json}");
    std::process::ExitCode::SUCCESS
}
