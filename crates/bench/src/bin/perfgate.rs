//! The performance gate: tracks the optimizer's evaluation throughput
//! from PR to PR.
//!
//! Runs the same fixed-seed MXR search twice under the identical
//! wall-clock budget (`FTDES_TIME_MS`, default 500 ms per seed):
//!
//! 1. **baseline** — the frozen pre-optimization reference
//!    ([`ftdes_bench::legacy`]): sequential, uncached, one full
//!    schedule materialization and one design clone per candidate,
//! 2. **optimized** — the current default path: cost-only window
//!    evaluation through reusable scratch buffers, the shared
//!    memoization cache, and parallel workers where cores exist.
//!
//! Because the search is deterministic in everything except the
//! wall-clock cutoff, more evaluations per second directly buy more
//! tabu iterations — the quantity that decides solution quality under
//! the paper's "shortest schedule within an imposed time limit"
//! protocol. Results are written to `BENCH_tabu.json` (schema below)
//! so CI can diff the trajectory:
//!
//! ```json
//! {
//!   "workload": {...},
//!   "baseline":  {"tabu_iterations": N, "evals_per_sec": X, ...},
//!   "optimized": {"tabu_iterations": N, "evals_per_sec": X, ...},
//!   "speedup": {"tabu_iterations": R, "evals_per_sec": R}
//! }
//! ```

use std::time::Duration;

use ftdes_bench::{synthetic_problem, time_budget};
use ftdes_core::{optimize, Goal, Outcome, Problem, SearchConfig, Strategy};
use ftdes_model::time::Time;

/// Processes / nodes / k of the gate workload: large enough that a
/// budgeted run is evaluation-bound, small enough to finish quickly.
const PROCESSES: usize = 40;
const NODES: usize = 4;
const FAULTS: u32 = 3;
const SEEDS: u64 = 3;

#[derive(Debug, Default, Clone, Copy)]
struct ModeTotals {
    tabu_iterations: usize,
    evaluations: usize,
    cache_hits: usize,
    elapsed: Duration,
    best_length_us: u64,
}

impl ModeTotals {
    fn add(&mut self, outcome: &Outcome) {
        self.tabu_iterations += outcome.stats.tabu_iterations;
        self.evaluations += outcome.stats.evaluations;
        self.cache_hits += outcome.stats.cache_hits;
        self.elapsed += outcome.stats.elapsed;
        self.best_length_us += outcome.length().as_us();
    }

    fn evals_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.evaluations as f64 / secs
    }

    /// Candidate lookups per second — schedules computed plus cache
    /// hits; the rate the search actually consumes candidates at.
    fn lookups_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.evaluations + self.cache_hits) as f64 / secs
    }

    fn json(&self) -> String {
        format!(
            "{{\"tabu_iterations\": {}, \"evaluations\": {}, \"cache_hits\": {}, \
             \"elapsed_ms\": {}, \"evals_per_sec\": {:.1}, \"lookups_per_sec\": {:.1}, \
             \"best_length_us\": {}}}",
            self.tabu_iterations,
            self.evaluations,
            self.cache_hits,
            self.elapsed.as_millis(),
            self.evals_per_sec(),
            self.lookups_per_sec(),
            self.best_length_us
        )
    }
}

fn gate_config(budget: Duration) -> SearchConfig {
    SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: Some(budget),
        max_tabu_iterations: usize::MAX,
        ..SearchConfig::default()
    }
}

fn run_optimized(problem: &Problem, budget: Duration) -> Outcome {
    optimize(problem, Strategy::Mxr, &gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate search: {e}"))
}

fn run_baseline(problem: &Problem, budget: Duration) -> Outcome {
    let (design, schedule, stats) =
        ftdes_bench::legacy::optimize_mxr_reference(problem, &gate_config(budget))
            .unwrap_or_else(|e| panic!("perfgate baseline: {e}"));
    Outcome {
        design,
        schedule,
        stats,
    }
}

fn main() {
    let budget = time_budget();
    let mut baseline = ModeTotals::default();
    let mut optimized = ModeTotals::default();

    println!(
        "perfgate: {PROCESSES} processes / {NODES} nodes / k = {FAULTS}, \
         {SEEDS} seeds, {budget:?} per run per mode"
    );
    for seed in 0..SEEDS {
        let problem = synthetic_problem(PROCESSES, NODES, FAULTS, Time::from_ms(5), seed);
        let base = run_baseline(&problem, budget);
        let opt = run_optimized(&problem, budget);
        println!(
            "  seed {seed}: baseline {} iters / {} evals, optimized {} iters / {} evals (+{} hits)",
            base.stats.tabu_iterations,
            base.stats.evaluations,
            opt.stats.tabu_iterations,
            opt.stats.evaluations,
            opt.stats.cache_hits,
        );
        baseline.add(&base);
        optimized.add(&opt);
    }

    let iter_speedup = optimized.tabu_iterations as f64 / baseline.tabu_iterations.max(1) as f64;
    let eval_speedup =
        optimized.lookups_per_sec() / baseline.lookups_per_sec().max(f64::MIN_POSITIVE);
    // Informational only: under a wall-clock budget the two modes
    // truncate the trajectory at different points (stage midpoints,
    // cutoffs), so per-seed best lengths can move either way.
    let length_ratio = optimized.best_length_us as f64 / baseline.best_length_us.max(1) as f64;
    let json = format!(
        "{{\n  \"workload\": {{\"processes\": {PROCESSES}, \"nodes\": {NODES}, \"k\": {FAULTS}, \
         \"seeds\": {SEEDS}, \"budget_ms\": {}}},\n  \"baseline\": {},\n  \"optimized\": {},\n  \
         \"speedup\": {{\"tabu_iterations\": {:.2}, \"candidate_rate\": {:.2}, \
         \"best_length_ratio\": {:.3}}}\n}}\n",
        budget.as_millis(),
        baseline.json(),
        optimized.json(),
        iter_speedup,
        eval_speedup,
        length_ratio,
    );
    std::fs::write("BENCH_tabu.json", &json).expect("write BENCH_tabu.json");
    println!("\n{json}");
    println!(
        "tabu-iteration speedup within the same budget: {iter_speedup:.2}x \
         (candidate rate {eval_speedup:.2}x, best-length ratio {length_ratio:.3})"
    );
}
