//! The performance gate: tracks the optimizer's evaluation throughput
//! from PR to PR.
//!
//! Runs the same fixed-seed MXR search **three** times under the
//! identical wall-clock budget (`FTDES_TIME_MS`, default 500 ms per
//! seed):
//!
//! 1. **baseline** — the frozen pre-optimization reference
//!    ([`ftdes_bench::legacy`]): sequential, uncached, one full
//!    schedule materialization and one design clone per candidate,
//! 2. **pr1** — the parallel + memoized cost-only path
//!    (`incremental: false, bounded: false`): scratch-reused
//!    from-scratch placement per candidate,
//! 3. **incremental** — the current default path: candidates resume
//!    from the base solution's prefix checkpoints, and losing
//!    candidates abort once provably worse than the incumbent.
//!
//! Because the search is deterministic in everything except the
//! wall-clock cutoff, more candidates per second directly buy more
//! tabu iterations — the quantity that decides solution quality under
//! the paper's "shortest schedule within an imposed time limit"
//! protocol. Results are written to `BENCH_tabu.json`:
//!
//! ```json
//! {
//!   "workload": {...},
//!   "baseline":    {"tabu_iterations": N, "candidates_per_sec": X, ...},
//!   "pr1":         {...},
//!   "incremental": {...},
//!   "speedup": {
//!     "tabu_iterations": incremental/baseline,
//!     "candidate_rate": incremental/baseline,
//!     "tabu_iterations_vs_pr1": incremental/pr1,
//!     "candidate_rate_vs_pr1": incremental/pr1,
//!     "best_length_ratio": informational
//!   }
//! }
//! ```
//!
//! CI enforces both floors: ≥ 2× tabu iterations vs the legacy
//! baseline, and a candidate-rate gain vs the PR 1 path — a
//! regression against either predecessor fails the gate.

use std::time::Duration;

use ftdes_bench::{synthetic_problem, time_budget};
use ftdes_core::{optimize, Goal, Outcome, Problem, SearchConfig, Strategy};
use ftdes_model::time::Time;

/// Processes / nodes / k of the gate workload: large enough that a
/// budgeted run is evaluation-bound, small enough to finish quickly.
const PROCESSES: usize = 40;
const NODES: usize = 4;
const FAULTS: u32 = 3;
const SEEDS: u64 = 3;

#[derive(Debug, Default, Clone, Copy)]
struct ModeTotals {
    tabu_iterations: usize,
    evaluations: usize,
    cache_hits: usize,
    pruned: usize,
    elapsed: Duration,
    best_length_us: u64,
}

impl ModeTotals {
    fn add(&mut self, outcome: &Outcome) {
        self.tabu_iterations += outcome.stats.tabu_iterations;
        self.evaluations += outcome.stats.evaluations;
        self.cache_hits += outcome.stats.cache_hits;
        self.pruned += outcome.stats.pruned;
        self.elapsed += outcome.stats.elapsed;
        self.best_length_us += outcome.length().as_us();
    }

    fn evals_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.evaluations as f64 / secs
    }

    /// Candidates scored per second — schedules computed, cache hits,
    /// and bounded-pruned candidates (each pruned candidate was
    /// examined exactly far enough to prove it cannot win); the rate
    /// the search actually consumes its neighbourhood at.
    fn candidates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.evaluations + self.cache_hits + self.pruned) as f64 / secs
    }

    fn json(&self) -> String {
        format!(
            "{{\"tabu_iterations\": {}, \"evaluations\": {}, \"cache_hits\": {}, \
             \"pruned\": {}, \"elapsed_ms\": {}, \"evals_per_sec\": {:.1}, \
             \"candidates_per_sec\": {:.1}, \"best_length_us\": {}}}",
            self.tabu_iterations,
            self.evaluations,
            self.cache_hits,
            self.pruned,
            self.elapsed.as_millis(),
            self.evals_per_sec(),
            self.candidates_per_sec(),
            self.best_length_us
        )
    }
}

fn gate_config(budget: Duration) -> SearchConfig {
    SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: Some(budget),
        max_tabu_iterations: usize::MAX,
        ..SearchConfig::default()
    }
}

/// The current default path: incremental + bounded evaluation.
fn run_incremental(problem: &Problem, budget: Duration) -> Outcome {
    optimize(problem, Strategy::Mxr, &gate_config(budget))
        .unwrap_or_else(|e| panic!("perfgate incremental search: {e}"))
}

/// The PR 1 path: parallel + memoized cost-only evaluation, every
/// candidate placed from scratch over the sparse `BTreeMap` WCET
/// table (the dense matrix landed with the incremental engine), no
/// bounds, no checkpoints.
fn run_pr1(problem: &Problem, budget: Duration) -> Outcome {
    let cfg = SearchConfig {
        incremental: false,
        bounded: false,
        ..gate_config(budget)
    };
    let problem = problem.clone().with_sparse_wcet_lookup();
    optimize(&problem, Strategy::Mxr, &cfg).unwrap_or_else(|e| panic!("perfgate pr1 search: {e}"))
}

fn run_baseline(problem: &Problem, budget: Duration) -> Outcome {
    // The frozen reference also predates the dense WCET matrix.
    let problem = problem.clone().with_sparse_wcet_lookup();
    let (design, schedule, stats) =
        ftdes_bench::legacy::optimize_mxr_reference(&problem, &gate_config(budget))
            .unwrap_or_else(|e| panic!("perfgate baseline: {e}"));
    Outcome {
        design,
        schedule,
        stats,
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    a / b.max(f64::MIN_POSITIVE)
}

fn main() {
    let budget = time_budget();
    let mut baseline = ModeTotals::default();
    let mut pr1 = ModeTotals::default();
    let mut incremental = ModeTotals::default();

    println!(
        "perfgate: {PROCESSES} processes / {NODES} nodes / k = {FAULTS}, \
         {SEEDS} seeds, {budget:?} per run per mode"
    );
    for seed in 0..SEEDS {
        let problem = synthetic_problem(PROCESSES, NODES, FAULTS, Time::from_ms(5), seed);
        let base = run_baseline(&problem, budget);
        let mid = run_pr1(&problem, budget);
        let incr = run_incremental(&problem, budget);
        println!(
            "  seed {seed}: baseline {} iters / {} evals | pr1 {} iters / {} evals (+{} hits) | \
             incremental {} iters / {} evals (+{} hits, {} pruned)",
            base.stats.tabu_iterations,
            base.stats.evaluations,
            mid.stats.tabu_iterations,
            mid.stats.evaluations,
            mid.stats.cache_hits,
            incr.stats.tabu_iterations,
            incr.stats.evaluations,
            incr.stats.cache_hits,
            incr.stats.pruned,
        );
        baseline.add(&base);
        pr1.add(&mid);
        incremental.add(&incr);
    }

    let iter_speedup = ratio(
        incremental.tabu_iterations as f64,
        baseline.tabu_iterations.max(1) as f64,
    );
    let cand_speedup = ratio(
        incremental.candidates_per_sec(),
        baseline.candidates_per_sec(),
    );
    let iter_vs_pr1 = ratio(
        incremental.tabu_iterations as f64,
        pr1.tabu_iterations.max(1) as f64,
    );
    let cand_vs_pr1 = ratio(incremental.candidates_per_sec(), pr1.candidates_per_sec());
    // Informational only: under a wall-clock budget the modes
    // truncate the trajectory at different points (stage midpoints,
    // cutoffs), so per-seed best lengths can move either way.
    let length_ratio = ratio(
        incremental.best_length_us as f64,
        baseline.best_length_us.max(1) as f64,
    );
    let json = format!(
        "{{\n  \"workload\": {{\"processes\": {PROCESSES}, \"nodes\": {NODES}, \"k\": {FAULTS}, \
         \"seeds\": {SEEDS}, \"budget_ms\": {}}},\n  \"baseline\": {},\n  \"pr1\": {},\n  \
         \"incremental\": {},\n  \"speedup\": {{\"tabu_iterations\": {:.2}, \
         \"candidate_rate\": {:.2}, \"tabu_iterations_vs_pr1\": {:.2}, \
         \"candidate_rate_vs_pr1\": {:.2}, \"best_length_ratio\": {:.3}}}\n}}\n",
        budget.as_millis(),
        baseline.json(),
        pr1.json(),
        incremental.json(),
        iter_speedup,
        cand_speedup,
        iter_vs_pr1,
        cand_vs_pr1,
        length_ratio,
    );
    std::fs::write("BENCH_tabu.json", &json).expect("write BENCH_tabu.json");
    println!("\n{json}");
    println!(
        "vs legacy baseline: {iter_speedup:.2}x tabu iterations, {cand_speedup:.2}x candidate rate"
    );
    println!(
        "vs PR 1 path:       {iter_vs_pr1:.2}x tabu iterations, {cand_vs_pr1:.2}x candidate rate \
         (best-length ratio {length_ratio:.3})"
    );
}
