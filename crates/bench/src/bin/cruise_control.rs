//! Reproduces the paper's real-life cruise-controller experiment
//! (§6): 32 processes on ETM/ABS/TCM, deadline 250 ms, k = 2,
//! µ = 2 ms.
//!
//! The paper reports: MXR schedulable at 229 ms (65% overhead vs
//! NFT); MX at 253 ms and MR at 301 ms both miss the deadline. Our
//! reconstructed CC differs in absolute numbers, but the ordering
//! MXR < MX < MR and the MXR-meets-deadline outcome are the
//! reproduced claims.

use ftdes_bench::run_strategy;
use ftdes_core::{overhead_percent, Goal, Problem, SearchConfig, Strategy};
use ftdes_gen::cruise_controller;
use ftdes_model::application::Application;
use ftdes_model::merge::MergedApplication;
use ftdes_ttp::config::BusConfig;

fn main() {
    let cc = cruise_controller();
    // Attach the 250 ms deadline through the standard application
    // merging path.
    let app = Application::single(cc.graph.clone(), cc.period, cc.deadline);
    let merged = MergedApplication::merge(&app).expect("the CC model is valid");
    // The CC's TTP bus is fast relative to the 2.5 ms/byte of the
    // synthetic experiments: 0.5 ms per byte gives 1.5 ms slots for
    // the 3-byte frames (automotive-class TTP).
    let largest = cc
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1);
    let bus = BusConfig::initial(&cc.arch, largest, ftdes_model::time::Time::from_us(500))
        .expect("three nodes");
    let problem = Problem::new(
        merged.graph().clone(),
        cc.arch.clone(),
        cc.wcet.clone(),
        cc.fault_model,
        bus,
    )
    .with_constraints(cc.constraints.clone());

    let cfg = SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: Some(ftdes_bench::time_budget().max(std::time::Duration::from_secs(2))),
        max_tabu_iterations: 10_000,
        ..SearchConfig::default()
    };

    println!("Cruise controller: 32 processes, ETM/ABS/TCM, D = 250 ms, k = 2, mu = 2 ms\n");
    let nft = run_strategy(&problem, Strategy::Nft, &cfg);
    println!(
        "{:>4}: delay {:>8}  schedulable: {}",
        "NFT",
        nft.length().to_string(),
        nft.is_schedulable()
    );
    for strategy in [Strategy::Mxr, Strategy::Mx, Strategy::Mr] {
        let outcome = run_strategy(&problem, strategy, &cfg);
        println!(
            "{:>4}: delay {:>8}  schedulable: {:5}  overhead vs NFT: {:>6.1}%",
            strategy.name(),
            outcome.length().to_string(),
            outcome.is_schedulable(),
            overhead_percent(&outcome, &nft),
        );
    }
    println!("\npaper reference: MXR 229 ms (meets 250 ms, 65% overhead), MX 253 ms, MR 301 ms");
}
