//! Phase profile of one candidate evaluation — where does the
//! optimizer's cost function spend its time?
//!
//! Times the stages of `ListScheduling` (design expansion, priority
//! computation, the placement loop) plus the fresh-allocation vs
//! scratch-reuse delta, on the perfgate workload. Used to direct
//! hot-path work; not part of the perf gate itself.

use std::time::Instant;

use ftdes_bench::synthetic_problem;
use ftdes_core::moves::MoveTable;
use ftdes_core::{initial, Evaluator, PolicySpace};
use ftdes_model::time::Time;
use ftdes_sched::{
    CostScratch, ExpandedDesign, PlacementCheckpoints, SchedScratch, ScheduleOptions,
};

fn main() {
    let problem = synthetic_problem(40, 4, 3, Time::from_ms(5), 0);
    let design = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
    let reps = 20_000u32;

    // Full evaluation, fresh allocations (the legacy path).
    let started = Instant::now();
    for _ in 0..reps {
        let s = problem.evaluate(&design).expect("schedules");
        std::hint::black_box(s.length());
    }
    let fresh = started.elapsed();

    // Full evaluation through the scratch-reusing path.
    let mut scratch = SchedScratch::default();
    let started = Instant::now();
    for _ in 0..reps {
        let s = problem
            .evaluate_scratch(&design, &mut scratch)
            .expect("schedules");
        std::hint::black_box(s.length());
    }
    let scratched = started.elapsed();

    // Through the evaluator (adds fingerprint + cache probe).
    let evaluator = Evaluator::new(&problem);
    let started = Instant::now();
    for _ in 0..reps {
        let (cost, _) = evaluator.evaluate(&design).expect("schedules");
        std::hint::black_box(cost);
    }
    let memoized = started.elapsed();

    // Expansion alone.
    let started = Instant::now();
    for _ in 0..reps {
        let e = ExpandedDesign::expand(
            problem.graph(),
            &design,
            problem.wcet(),
            problem.fault_model(),
        )
        .expect("expands");
        std::hint::black_box(e.len());
    }
    let expansion = started.elapsed();

    // Priority computation alone (on a fixed expansion).
    let expanded = ExpandedDesign::expand(
        problem.graph(),
        &design,
        problem.wcet(),
        problem.fault_model(),
    )
    .expect("expands");
    let started = Instant::now();
    for _ in 0..reps {
        let p = ftdes_sched::priority::Priorities::compute(
            problem.graph(),
            &expanded,
            problem.bus(),
            problem.schedule_options().priority,
        )
        .expect("acyclic");
        std::hint::black_box(p.rank(0.into()));
    }
    let priorities = started.elapsed();

    // Cost-only evaluation, from scratch: the PR 1 window path (with
    // today's dense WCET front-end; the sparse variant shows what the
    // `BTreeMap` walk used to cost per candidate).
    let mut cost_scratch = CostScratch::default();
    let started = Instant::now();
    for _ in 0..reps {
        let c = problem
            .evaluate_cost(&design, &mut cost_scratch)
            .expect("schedules");
        std::hint::black_box(c);
    }
    let cost_only = started.elapsed();

    let sparse = problem.clone().with_sparse_wcet_lookup();
    let started = Instant::now();
    for _ in 0..reps {
        let c = sparse
            .evaluate_cost(&design, &mut cost_scratch)
            .expect("schedules");
        std::hint::black_box(c);
    }
    let cost_sparse = started.elapsed();

    // Incremental + bounded single-move evaluation: record the base
    // once, then replay one real neighbourhood move per rep.
    let mut ckpts = PlacementCheckpoints::new();
    let mut core = SchedScratch::default();
    let schedule = problem
        .evaluate_recording(&design, &mut core, Some(&mut ckpts))
        .expect("schedules");
    let base_cost = schedule.cost();
    let table = MoveTable::new(&problem, PolicySpace::Mixed);
    let cp = schedule.move_candidates(problem.graph(), 8);
    let mut window = Vec::new();
    table.window(&design, &cp, &mut window);
    let mv = window[window.len() / 2];
    let mut cand = design.clone();
    cand.set_decision(mv.process, table.decision(mv).clone());
    let mut resumed_of = |bound| {
        let started = Instant::now();
        for _ in 0..reps {
            let c = ftdes_sched::schedule_cost_resumed(
                problem.graph(),
                problem.arch(),
                problem.dense_wcet(),
                problem.fault_model(),
                problem.bus(),
                &cand,
                mv.process,
                ScheduleOptions::default(),
                &mut cost_scratch,
                &ckpts,
                bound,
            )
            .expect("schedules");
            std::hint::black_box(c);
        }
        started.elapsed()
    };
    let resumed = resumed_of(None);
    let resumed_bounded = resumed_of(Some(base_cost));

    let per = |d: std::time::Duration| d.as_secs_f64() * 1e6 / f64::from(reps);
    println!("per-evaluation phase times over {reps} reps:");
    println!("  fresh allocations : {:8.2} us", per(fresh));
    println!("  scratch reuse     : {:8.2} us", per(scratched));
    println!("  memoized (all hits): {:7.2} us", per(memoized));
    println!("  expansion only    : {:8.2} us", per(expansion));
    println!("  priorities only   : {:8.2} us", per(priorities));
    println!("  cost-only, dense  : {:8.2} us", per(cost_only));
    println!("  cost-only, sparse : {:8.2} us", per(cost_sparse));
    println!("  resumed move      : {:8.2} us", per(resumed));
    println!("  resumed + bounded : {:8.2} us", per(resumed_bounded));
}
