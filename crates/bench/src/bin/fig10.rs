//! Reproduces paper Fig. 10: average percentage deviation of MX, MR
//! and SFX from MXR as the application size grows.
//!
//! The expected shape: MR worst (replication alone wastes the most),
//! SFX in between (fault-oblivious mapping), MX closest to MXR but
//! still dominated — "considering re-execution at the same time with
//! replication leads to significant improvements".

use std::sync::Arc;

use ftdes_bench::{
    experiment_config, par_seed_map, run_strategy_cached, seeds, synthetic_problem, time_budget,
};
use ftdes_core::{EvalCache, Strategy};
use ftdes_model::time::Time;

fn main() {
    let cfg = experiment_config();
    println!("Fig. 10 — avg % deviation from MXR (higher = worse)");
    println!(
        "(seeds per point: {}, search budget: {:?} per strategy)\n",
        seeds(),
        time_budget()
    );
    println!("{:>6} | {:>8} | {:>8} | {:>8}", "procs", "MR", "SFX", "MX");
    println!("{}", "-".repeat(40));
    // Same size/node/k pairing as Table 1a. MR needs k + 1 <= nodes,
    // so like the paper we keep k small enough for replication to be
    // feasible at all sizes: k = min(paper k, nodes - 1).
    for (procs, nodes, k) in [(20, 2, 3), (40, 3, 4), (60, 4, 5), (80, 5, 6), (100, 6, 7)] {
        let k_feasible = k.min(nodes as u32 - 1);
        let mu = Time::from_ms(5);
        // Independent seeds run in parallel on the worker pool; the
        // four strategies of one seed share an evaluation cache
        // (keyed by the per-strategy fault model).
        let per_seed = par_seed_map(&cfg, |seed, cfg| {
            let problem = synthetic_problem(procs, nodes, k_feasible, mu, seed);
            let cache = Arc::new(EvalCache::default());
            let mxr = run_strategy_cached(&problem, Strategy::Mxr, cfg, &cache);
            let d_mxr = mxr.length().as_us() as f64;
            if d_mxr <= 0.0 {
                return None;
            }
            let mut devs = [0.0f64; 3]; // MR, SFX, MX
            for (slot, strategy) in [Strategy::Mr, Strategy::Sfx, Strategy::Mx]
                .into_iter()
                .enumerate()
            {
                let other = run_strategy_cached(&problem, strategy, cfg, &cache);
                devs[slot] = 100.0 * (other.length().as_us() as f64 - d_mxr) / d_mxr;
            }
            Some(devs)
        });
        let mut sums = [0.0f64; 3]; // MR, SFX, MX
        let mut count = 0usize;
        for devs in per_seed.into_iter().flatten() {
            for (slot, d) in devs.into_iter().enumerate() {
                sums[slot] += d;
            }
            count += 1;
        }
        let avg = |s: f64| if count == 0 { 0.0 } else { s / count as f64 };
        println!(
            "{procs:>6} | {:>8.2} | {:>8.2} | {:>8.2}",
            avg(sums[0]),
            avg(sums[1]),
            avg(sums[2])
        );
    }
    println!("\npaper reference (averages over all sizes): MR 77%, SFX large, MX 17.6%");
}
