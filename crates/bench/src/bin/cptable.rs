//! `cptable` — the checkpointing trade-off table (TVLSI-style).
//!
//! The TVLSI follow-up of the source paper (Pop/Izosimov/Eles/Peng,
//! *Design Optimization of Time- and Cost-Constrained Fault-Tolerant
//! Embedded Systems with Checkpointing and Replication*) adds
//! checkpointing with rollback recovery as the third fault-tolerance
//! technique and studies how its usefulness hinges on the
//! checkpointing overhead `χ`. This bin reproduces that trade-off on
//! the paper-family workload: for a sweep of `χ` (as a fraction of
//! the mean WCET) it optimizes the same fixed-seed applications under
//!
//! * **MX** — pure re-execution, checkpoint axis off (the DATE 2005
//!   baseline),
//! * **MCX** — re-execution with the checkpoint axis open
//!   (`max_checkpoints = 4`): rollbacks re-run one segment instead of
//!   the whole process, at `χ` per interior save,
//! * **MR** — pure replication (χ-independent; one shared reference
//!   row),
//! * **MCXR** — the full mixed space (replication × re-execution ×
//!   checkpointing), the strongest optimizer,
//!
//! and reports mean worst-case schedule lengths plus the policy mix
//! MCXR actually chose. The expected crossover: for small `χ`
//! checkpointing dominates pure re-execution (MCX < MX) and MCXR
//! leans on checkpointed policies; as `χ` grows the saves eat the
//! rollback gain and MCX degrades toward MX (the axis still contains
//! `n = 1`, so MCX can never end *worse* than MX on a full search —
//! under a wall-clock budget the larger neighbourhood may cost a few
//! percent).
//!
//! Results go to `BENCH_cptable.json` (published as a **non-gating**
//! CI artifact — this table documents a trade-off; it is not a perf
//! gate) and to stdout. Budget knobs: `FTDES_SEEDS`, `FTDES_TIME_MS`.

use ftdes_bench::{
    budgeted_config, mean_length_us, seeds, synthetic_problem, time_budget, write_artifact,
    PolicyMix,
};
use ftdes_core::{optimize, Outcome, Problem, Strategy};
use ftdes_gen::WorkloadParams;
use ftdes_model::time::Time;

const PROCESSES: usize = 24;
const NODES: usize = 4;
const FAULTS: u32 = 2;
const MU_MS: u64 = 5;
/// χ as a fraction of the mean WCET (the paper family's mean is
/// 55 ms, so 0.02 ≈ 1.1 ms per save).
const CHI_RATIOS: [f64; 6] = [0.01, 0.02, 0.05, 0.1, 0.25, 0.5];
const MAX_CHECKPOINTS: u32 = 4;

/// The problem of one `(seed, χ)` cell: the workload is χ-independent
/// (same graph/WCETs for every row), only the fault model and the
/// checkpoint axis vary.
fn cell_problem(seed: u64, chi: Time, max_checkpoints: u32) -> Problem {
    let base = synthetic_problem(PROCESSES, NODES, FAULTS, Time::from_ms(MU_MS), seed);
    let fm = base.fault_model().with_checkpoint_overhead(chi);
    base.with_fault_model(fm)
        .with_max_checkpoints(max_checkpoints)
}

fn main() -> std::process::ExitCode {
    let n_seeds = seeds() as u64;
    let budget = time_budget();
    println!(
        "cptable: {PROCESSES} processes / {NODES} nodes / k = {FAULTS}, µ = {MU_MS} ms, \
         {n_seeds} seeds, {budget:?} per run, checkpoint axis ≤ {MAX_CHECKPOINTS}"
    );
    let mean_wcet_us = {
        // The paper family's configured WCET range; χ rows are
        // expressed against its midpoint.
        let p = WorkloadParams::paper(PROCESSES);
        (p.wcet_min.as_us() + p.wcet_max.as_us()) / 2
    };

    // χ-independent references, computed once per seed.
    let run = |problem: &Problem, strategy: Strategy| -> Outcome {
        optimize(problem, strategy, &budgeted_config(4_000))
            .unwrap_or_else(|e| panic!("cptable {strategy} search: {e}"))
    };
    let mut mx = Vec::new();
    let mut mr = Vec::new();
    for seed in 0..n_seeds {
        let plain = cell_problem(seed, Time::ZERO, 1);
        mx.push(run(&plain, Strategy::Mx));
        mr.push(run(&plain, Strategy::Mr));
    }
    let mx_len = mean_length_us(&mx);
    let mr_len = mean_length_us(&mr);

    println!(
        "\n{:>8} | {:>10} | {:>10} | {:>10} | {:>10} | policy mix of MCXR (rex/cp/rep/mix)",
        "chi", "MX", "MCX", "MR", "MCXR"
    );
    println!("{}", "-".repeat(96));

    let mut rows = Vec::new();
    for &ratio in &CHI_RATIOS {
        let chi = Time::from_us((ratio * mean_wcet_us as f64).round() as u64);
        let mut mcx = Vec::new();
        let mut mcxr = Vec::new();
        for seed in 0..n_seeds {
            let problem = cell_problem(seed, chi, MAX_CHECKPOINTS);
            mcx.push(run(&problem, Strategy::Mx));
            mcxr.push(run(&problem, Strategy::Mxr));
        }
        let mcx_len = mean_length_us(&mcx);
        let mcxr_len = mean_length_us(&mcxr);
        let mix = PolicyMix::from_outcomes(&mcxr);
        println!(
            "{:>8} | {:>10.0} | {:>10.0} | {:>10.0} | {:>10.0} | {mix}",
            format!("{:.0}%", ratio * 100.0),
            mx_len,
            mcx_len,
            mr_len,
            mcxr_len,
        );
        rows.push(format!(
            "    {{\"chi_ratio\": {ratio}, \"chi_us\": {}, \"mx_len_us\": {mx_len:.0}, \
             \"mcx_len_us\": {mcx_len:.0}, \"mr_len_us\": {mr_len:.0}, \
             \"mcxr_len_us\": {mcxr_len:.0}, \"mcx_vs_mx\": {:.4}, \
             \"mcxr_policy_mix\": {}}}",
            chi.as_us(),
            mcx_len / mx_len.max(1.0),
            mix.json(),
        ));
    }

    let json = format!(
        "{{\n  \"workload\": {{\"family\": \"paper\", \"processes\": {PROCESSES}, \
         \"nodes\": {NODES}, \"k\": {FAULTS}, \"mu_ms\": {MU_MS}, \"seeds\": {n_seeds}, \
         \"budget_ms\": {}, \"max_checkpoints\": {MAX_CHECKPOINTS}, \
         \"mean_wcet_us\": {mean_wcet_us}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        budget.as_millis(),
        rows.join(",\n"),
    );
    if let Err(e) = write_artifact("BENCH_cptable.json", &json) {
        eprintln!("cptable: {e}");
        return std::process::ExitCode::FAILURE;
    }
    println!("\nwritten to BENCH_cptable.json (non-gating artifact)");
    println!(
        "expected shape: MCX/MX < 1 at small chi (rollbacks re-run one segment), \
         rising toward 1 as chi grows (saves eat the gain)"
    );
    std::process::ExitCode::SUCCESS
}
