//! Paper-Table-1-style fault-tolerance overhead sweep on the
//! **communication-heavy** family, with the bus-access optimization
//! enabled — the workload direction the comm-aware engine (PR 3)
//! opened and its checkpointed slot-swap probes make affordable.
//!
//! For each configuration the sweep solves every seed twice — MXR
//! under the `(k, µ)` fault model and NFT as the fault-free reference
//! — then lets `optimize_bus` loose on both designs (slot-order hill
//! climbing plus the capacity sweep; on congested instances the slot
//! order genuinely matters, unlike on the paper family's near-empty
//! bus) and reports the overhead `100 · (δ_MXR − δ_NFT) / δ_NFT` of
//! the bus-optimized schedules.
//!
//! Two sweeps are printed:
//!
//! * **edge density** — mean edges per process at a fixed
//!   message/WCET cost ratio of 0.5 (the perfgate comm gate's ratio),
//! * **msg : WCET cost ratio** — how expensive the bus is relative to
//!   computation, at the gate's density of 5.
//!
//! Honours the usual experiment knobs: `FTDES_SEEDS`,
//! `FTDES_TIME_MS`, `FTDES_THREADS` / `FTDES_NO_PARALLEL`.

use std::sync::Arc;

use ftdes_bench::{
    comm_heavy_problem_with, experiment_config, print_header, print_row, run_strategy_cached,
    PercentRow,
};
use ftdes_core::{optimize_bus, BusOptConfig, EvalCache, Outcome, Problem, Strategy};
use ftdes_gen::CommHeavyParams;
use ftdes_model::time::Time;

const NODES: usize = 4;
const FAULTS: u32 = 2;

/// The schedule length of `outcome`'s design after the bus-access
/// optimization (never worse than the unoptimized bus — the pass
/// returns the original configuration when nothing improves).
fn bus_optimized_length(problem: &Problem, outcome: &Outcome) -> f64 {
    let bused = optimize_bus(problem, &outcome.design, &BusOptConfig::default())
        .expect("bus optimization schedules the solved design");
    bused
        .schedule
        .length()
        .min(outcome.schedule.length())
        .as_us() as f64
}

fn overhead_row(params: &CommHeavyParams) -> PercentRow {
    let cfg = experiment_config();
    let samples = ftdes_bench::par_seed_map(&cfg, |seed, cfg| {
        let problem = comm_heavy_problem_with(params, NODES, FAULTS, Time::from_ms(5), seed);
        let cache = Arc::new(EvalCache::default());
        let mxr = run_strategy_cached(&problem, Strategy::Mxr, cfg, &cache);
        let nft = run_strategy_cached(&problem, Strategy::Nft, cfg, &cache);
        let d_mxr = bus_optimized_length(&problem, &mxr);
        let d_nft = bus_optimized_length(
            &problem.with_fault_model(ftdes_model::fault::FaultModel::none()),
            &nft,
        );
        if d_nft > 0.0 {
            100.0 * (d_mxr - d_nft) / d_nft
        } else {
            0.0
        }
    });
    PercentRow::from_samples(&samples)
}

fn main() {
    println!("commtable — MXR overhead vs NFT on comm-heavy instances, bus-access optimization on");
    println!(
        "(50 processes / {NODES} nodes / k = {FAULTS}, seeds per row: {}, budget: {:?} per \
         strategy)\n",
        ftdes_bench::seeds(),
        ftdes_bench::time_budget()
    );

    println!("— by edge density (msg:WCET ratio 0.5) —");
    print_header("density");
    for density in [2.0, 3.5, 5.0, 6.5] {
        let params = CommHeavyParams::dense(50).with_density(density);
        print_row(&format!("{density:.1}"), &overhead_row(&params));
    }

    println!("\n— by msg:WCET cost ratio (density 5) —");
    print_header("ratio");
    for ratio in [0.25, 0.5, 1.0, 2.0] {
        let params = CommHeavyParams::dense(50)
            .with_density(5.0)
            .with_ratio(ratio);
        print_row(&format!("{ratio:.2}"), &overhead_row(&params));
    }

    println!(
        "\n(overheads are over bus-optimized schedules on both sides; the paper's Table 1 \
         reports the computation-dominated family — congested buses push the overhead of \
         transparent fault tolerance up with the message cost)"
    );
}
