//! Reproduces paper Table 1b: fault-tolerance overheads of MXR vs NFT
//! as the number of faults k grows.
//!
//! Configuration: 60 processes on 4 nodes, k ∈ {2, 4, 6, 8, 10},
//! µ = 5 ms. (With 4 nodes and k ≥ 4 pure replication is infeasible;
//! MXR transparently falls back to re-executed replicas, which is
//! exactly the point of the mixed policy space.)

use ftdes_bench::{experiment_config, overhead_samples, print_header, print_row, PercentRow};
use ftdes_model::time::Time;

fn main() {
    let cfg = experiment_config();
    println!("Table 1b — MXR overhead vs NFT by number of faults (60 procs, 4 nodes, mu=5ms)");
    println!(
        "(seeds per row: {}, search budget: {:?} per strategy)\n",
        ftdes_bench::seeds(),
        ftdes_bench::time_budget()
    );
    print_header("k");
    for k in [2, 4, 6, 8, 10] {
        let samples = overhead_samples(60, 4, k, Time::from_ms(5), &cfg);
        let row = PercentRow::from_samples(&samples);
        print_row(&k.to_string(), &row);
    }
    println!("\npaper reference (avg): 32.72 / 76.81 / 118.58 / 174.07 / 219.79");
}
