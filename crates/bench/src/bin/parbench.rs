//! Seed-level parallelism benchmark: portfolio scaling and worker-pool
//! wake-up latency.
//!
//! Two measurements, written to `BENCH_par.json`:
//!
//! 1. **Portfolio scaling** — the portfolio engine
//!    ([`ftdes_core::portfolio`]) on the paper gate workload
//!    (40 processes / 4 nodes / k = 3) at 1 / 2 / 4 / 8 workers with a
//!    fixed iteration budget per worker and single-threaded per-worker
//!    evaluation. Reports aggregate candidate rate, scaling efficiency
//!    vs one worker, solution quality vs the single-worker run, and
//!    the per-worker diversification trail (variant label, iterations,
//!    adoptions).
//! 2. **Pool wake-up latency** — the ROADMAP-flagged worst case for
//!    the persistent [`WorkerPool`]: thousands of *tiny* (3-item)
//!    windows, where the submit/park/wake round-trip dominates the
//!    useful work. Measured as ns per submission across pool widths;
//!    the 1-thread pool (inline execution, no round-trip) is the
//!    floor the protocol overhead is judged against.
//!
//! Like `perfgate`'s `multicore` section these numbers are
//! informational on a 1-CPU container (scaling ≈ 1.0× by
//! construction) — `available_parallelism` is recorded so multi-core
//! runs are distinguishable.

use std::time::{Duration, Instant};

use ftdes_bench::{synthetic_problem, write_artifact};
use ftdes_core::{
    effective_threads, optimize_portfolio, Goal, PolicySpace, PortfolioConfig, SearchConfig,
    WorkerPool,
};
use ftdes_model::time::Time;

const PROCESSES: usize = 40;
const NODES: usize = 4;
const FAULTS: u32 = 3;
const SEEDS: u64 = 2;
const ITERATIONS_PER_WORKER: usize = 100;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

const POOL_WIDTHS: [usize; 4] = [1, 2, 4, 8];
const TINY_WINDOWS: usize = 2_000;
const TINY_ITEMS: usize = 3;

fn main() -> std::process::ExitCode {
    let cores = effective_threads(0);
    println!(
        "parbench: portfolio scaling on {PROCESSES} processes / {NODES} nodes / k = {FAULTS}, \
         {SEEDS} seeds, {ITERATIONS_PER_WORKER} iterations per worker ({cores} cores)"
    );

    // --- Portfolio scaling sweep -------------------------------------
    let mut sweep_json: Vec<String> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();
    let mut single_best_us: u64 = 0;
    for &workers in &WORKER_SWEEP {
        let mut candidates = 0usize;
        let mut elapsed = Duration::ZERO;
        let mut best_us = 0u64;
        let mut exchanges = 0usize;
        let mut worker_lines: Vec<String> = Vec::new();
        for seed in 0..SEEDS {
            let problem = synthetic_problem(PROCESSES, NODES, FAULTS, Time::from_ms(5), seed);
            let cfg = SearchConfig {
                goal: Goal::MinimizeLength,
                time_limit: None,
                max_tabu_iterations: ITERATIONS_PER_WORKER,
                threads: 1,
                ..SearchConfig::default()
            };
            let pcfg = PortfolioConfig {
                workers,
                epoch_candidates: 2_048,
                ..PortfolioConfig::default()
            };
            let out = optimize_portfolio(&problem, PolicySpace::Mixed, &cfg, &pcfg)
                .unwrap_or_else(|e| panic!("parbench portfolio ({workers} workers): {e}"));
            candidates += out.outcome.stats.candidates();
            elapsed += out.outcome.stats.elapsed;
            best_us += out.outcome.length().as_us();
            exchanges += out.exchanges;
            if seed == 0 {
                for w in &out.workers {
                    worker_lines.push(format!(
                        "{{\"index\": {}, \"label\": \"{}\", \"tabu_iterations\": {}, \
                         \"lookups\": {}, \"adopted\": {}}}",
                        w.index, w.label, w.tabu_iterations, w.lookups, w.adopted
                    ));
                }
            }
        }
        let rate = candidates as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        rates.push(rate);
        if workers == 1 {
            single_best_us = best_us;
        }
        let quality = best_us as f64 / single_best_us.max(1) as f64;
        println!(
            "  {workers} workers: {candidates} candidates in {} ms -> {rate:.1}/s \
             ({:.2}x vs 1 worker), best-length ratio {quality:.3}, {exchanges} exchanges",
            elapsed.as_millis(),
            rate / rates[0].max(f64::MIN_POSITIVE),
        );
        sweep_json.push(format!(
            "{{\"workers\": {workers}, \"candidates\": {candidates}, \"elapsed_ms\": {}, \
             \"aggregate_candidate_rate\": {rate:.1}, \"scaling_vs_1w\": {:.2}, \
             \"best_length_us\": {best_us}, \"best_length_vs_1w\": {quality:.3}, \
             \"exchanges\": {exchanges}, \"workers_detail\": [{}]}}",
            elapsed.as_millis(),
            rate / rates[0].max(f64::MIN_POSITIVE),
            worker_lines.join(", ")
        ));
    }

    // --- Pool wake-up latency ----------------------------------------
    println!(
        "parbench: pool wake-up latency, {TINY_WINDOWS} windows of {TINY_ITEMS} items per width"
    );
    let items: Vec<usize> = (0..TINY_ITEMS).collect();
    let mut latency_json: Vec<String> = Vec::new();
    for &width in &POOL_WIDTHS {
        let pool = WorkerPool::new(width);
        // Warm-up: park/wake the workers once before timing.
        for _ in 0..16 {
            pool.try_map_init(&items, || (), |(), i, &v| Ok::<_, ()>(Some(i + v)))
                .unwrap_or_else(|()| panic!("parbench warmup"));
        }
        let started = Instant::now();
        let mut checksum = 0usize;
        for _ in 0..TINY_WINDOWS {
            let out = pool
                .try_map_init(&items, || (), |(), i, &v| Ok::<_, ()>(Some(i + v)))
                .unwrap_or_else(|()| panic!("parbench tiny window"));
            checksum += out.iter().flatten().sum::<usize>();
        }
        let elapsed = started.elapsed();
        let ns_per_submission = elapsed.as_nanos() as f64 / TINY_WINDOWS as f64;
        println!(
            "  width {width}: {:.0} ns/submission (checksum {checksum})",
            ns_per_submission
        );
        latency_json.push(format!(
            "{{\"threads\": {width}, \"ns_per_submission\": {ns_per_submission:.0}}}"
        ));
    }

    let json = format!(
        "{{\n  \"environment\": {{\"available_parallelism\": {cores}}},\n  \
         \"workload\": {{\"processes\": {PROCESSES}, \"nodes\": {NODES}, \"k\": {FAULTS}, \
         \"seeds\": {SEEDS}, \"iterations_per_worker\": {ITERATIONS_PER_WORKER}}},\n  \
         \"portfolio_scaling\": [\n    {}\n  ],\n  \
         \"pool_wakeup\": {{\"windows\": {TINY_WINDOWS}, \"items_per_window\": {TINY_ITEMS}, \
         \"latency\": [{}]}}\n}}\n",
        sweep_json.join(",\n    "),
        latency_json.join(", ")
    );
    if let Err(e) = write_artifact("BENCH_par.json", &json) {
        eprintln!("parbench: {e}");
        return std::process::ExitCode::FAILURE;
    }
    println!("\n{json}");
    std::process::ExitCode::SUCCESS
}
