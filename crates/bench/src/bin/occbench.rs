//! Occupancy-backend ablation: flat vs indexed vs bitmap candidate
//! rates on the high-density communication family.
//!
//! The search engine books every bus message into a per-(node, slot)
//! occupancy table; three interchangeable backends implement the
//! booking scan (see `ftdes_sched::occupancy`):
//!
//! 1. **flat** — the legacy whole-table tail scan (quadratic on
//!    congested buses),
//! 2. **indexed** — the PR 3 round-sorted vector (binary-searched
//!    insertion, linear probe over saturated rounds),
//! 3. **bitmap** — the bit-packed saturation bitmap (dense per-round
//!    byte counts + one saturation bit per round; booking skips
//!    fully-saturated words 64 rounds at a time and walks partial
//!    words with a branch-light threshold scan).
//!
//! All three book bit-identically (debug builds replay every booking
//! against the flat scan as an oracle), so the backend is a pure
//! throughput knob and the candidate-rate ratios below are clean
//! ablations. The workload is [`CommHeavyParams::stress`] — twenty-four
//! edges per process at a message/WCET cost ratio of 3, the regime
//! where whole runs of TDMA rounds saturate and the booking scan
//! dominates per-candidate cost. Like perfgate's occupancy gate, all
//! backends run full from-scratch placements (checkpoint resume and
//! bounded early-exit off), so every candidate exercises the full
//! booking table instead of a replayed suffix or a bound-truncated
//! placement.
//!
//! Results go to `BENCH_occ.json`:
//!
//! ```json
//! {
//!   "environment": {...},
//!   "workload": {...},
//!   "flat": {...}, "indexed": {...}, "bitmap": {...},
//!   "ratios": {
//!     "bitmap_vs_indexed": r, "bitmap_vs_flat": r, "indexed_vs_flat": r
//!   }
//! }
//! ```
//!
//! The CI floor on bitmap-vs-indexed (1.15×) is enforced through
//! perfgate's `occ_speedup` section (same workload family, same
//! modes); this binary exists for the full three-way ablation and is
//! informational. `FTDES_TIME_MS` / `FTDES_SEEDS` resize the run.

use std::time::Duration;

use ftdes_bench::{comm_heavy_problem_with, time_budget};
use ftdes_core::{
    effective_threads, optimize, Goal, OccupancyBackend, Outcome, Problem, SearchConfig, Strategy,
};
use ftdes_gen::CommHeavyParams;
use ftdes_model::time::Time;

/// Matches perfgate's occupancy gate (`OCC_*` consts there): the
/// stress preset at 48 processes with k = 2 keeps a budgeted run
/// evaluation-bound while piling replicated messages onto a
/// saturated bus.
const PROCESSES: usize = 48;
const NODES: usize = 4;
const FAULTS: u32 = 2;

fn seeds() -> u64 {
    std::env::var("FTDES_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(3)
}

#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    tabu_iterations: usize,
    evaluations: usize,
    cache_hits: usize,
    pruned: usize,
    elapsed: Duration,
    best_length_us: u64,
}

impl Totals {
    fn add(&mut self, outcome: &Outcome) {
        self.tabu_iterations += outcome.stats.tabu_iterations;
        self.evaluations += outcome.stats.evaluations;
        self.cache_hits += outcome.stats.cache_hits;
        self.pruned += outcome.stats.pruned;
        self.elapsed += outcome.stats.elapsed;
        self.best_length_us += outcome.length().as_us();
    }

    /// Candidates scored per second (evaluations + cache hits +
    /// bounded-pruned) — the rate the search consumes its
    /// neighbourhood at; the quantity the backends compete on.
    fn candidates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.evaluations + self.cache_hits + self.pruned) as f64 / secs
    }

    fn json(&self) -> String {
        format!(
            "{{\"tabu_iterations\": {}, \"evaluations\": {}, \"cache_hits\": {}, \
             \"pruned\": {}, \"elapsed_ms\": {}, \"candidates_per_sec\": {:.1}, \
             \"best_length_us\": {}}}",
            self.tabu_iterations,
            self.evaluations,
            self.cache_hits,
            self.pruned,
            self.elapsed.as_millis(),
            self.candidates_per_sec(),
            self.best_length_us
        )
    }
}

fn run_backend(problem: &Problem, backend: OccupancyBackend, budget: Duration) -> Outcome {
    let problem = problem.clone().with_occupancy_backend(backend);
    let cfg = SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: Some(budget),
        max_tabu_iterations: usize::MAX,
        // Full from-scratch placements (no checkpoint resume, no
        // bounded early-exit), matching perfgate's occupancy gate:
        // the cold-start / greedy / portfolio-prologue regime, where
        // the booking table dominates per-candidate cost instead of
        // being diluted behind a replayed suffix or a bound-truncated
        // placement.
        incremental: false,
        bounded: false,
        ..SearchConfig::default()
    };
    optimize(&problem, Strategy::Mxr, &cfg)
        .unwrap_or_else(|e| panic!("occbench {backend} search: {e}"))
}

fn ratio(a: f64, b: f64) -> f64 {
    a / b.max(f64::MIN_POSITIVE)
}

fn main() -> std::process::ExitCode {
    let budget = time_budget();
    let seeds = seeds();
    let params = CommHeavyParams::stress(PROCESSES);
    const BACKENDS: [OccupancyBackend; 3] = [
        OccupancyBackend::Flat,
        OccupancyBackend::Indexed,
        OccupancyBackend::Bitmap,
    ];
    println!(
        "occbench: {PROCESSES} processes / {NODES} nodes / k = {FAULTS}, density {} / \
         ratio {}, {seeds} seeds, {budget:?} per run per backend",
        params.edge_density, params.msg_wcet_ratio
    );

    let mut totals = [Totals::default(); 3];
    for seed in 0..seeds {
        let problem = comm_heavy_problem_with(&params, NODES, FAULTS, Time::from_ms(5), seed);
        let mut lengths = [0u64; 3];
        for (i, &backend) in BACKENDS.iter().enumerate() {
            let out = run_backend(&problem, backend, budget);
            println!(
                "  seed {seed} {backend:>7}: {} iters / {} evals (+{} hits, {} pruned), \
                 best {} us",
                out.stats.tabu_iterations,
                out.stats.evaluations,
                out.stats.cache_hits,
                out.stats.pruned,
                out.length().as_us()
            );
            lengths[i] = out.length().as_us();
            totals[i].add(&out);
        }
        // Under a wall-clock budget the backends truncate the shared
        // trajectory at different points, so best lengths may differ —
        // but a faster backend reaching a *worse* design than flat at
        // the same budget would smell like a soundness bug worth a
        // look, so surface any divergence.
        if lengths[1] != lengths[0] || lengths[2] != lengths[0] {
            println!(
                "  seed {seed}: best lengths diverge (flat {} / indexed {} / bitmap {}) — \
                 budget cutoffs landed at different trajectory points",
                lengths[0], lengths[1], lengths[2]
            );
        }
    }

    let [flat, indexed, bitmap] = totals;
    let bitmap_vs_indexed = ratio(bitmap.candidates_per_sec(), indexed.candidates_per_sec());
    let bitmap_vs_flat = ratio(bitmap.candidates_per_sec(), flat.candidates_per_sec());
    let indexed_vs_flat = ratio(indexed.candidates_per_sec(), flat.candidates_per_sec());
    let json = format!(
        "{{\n  \"environment\": {{\"threads\": {}, \"occ_backend_knob\": {}, \
         \"priority_knob\": {}}},\n  \
         \"workload\": {{\"family\": \"comm_heavy_stress\", \"processes\": {PROCESSES}, \
         \"edge_density\": {}, \"msg_wcet_ratio\": {}, \"nodes\": {NODES}, \"k\": {FAULTS}, \
         \"seeds\": {seeds}, \"budget_ms\": {}}},\n  \
         \"flat\": {},\n  \"indexed\": {},\n  \"bitmap\": {},\n  \
         \"ratios\": {{\"bitmap_vs_indexed\": {bitmap_vs_indexed:.2}, \
         \"bitmap_vs_flat\": {bitmap_vs_flat:.2}, \
         \"indexed_vs_flat\": {indexed_vs_flat:.2}}}\n}}\n",
        effective_threads(0),
        match std::env::var("FTDES_OCC_BACKEND") {
            Ok(v) => format!("\"{}\"", v.replace(['"', '\\'], "_")),
            Err(_) => "null".into(),
        },
        match std::env::var("FTDES_PRIORITY") {
            Ok(v) => format!("\"{}\"", v.replace(['"', '\\'], "_")),
            Err(_) => "null".into(),
        },
        params.edge_density,
        params.msg_wcet_ratio,
        budget.as_millis(),
        flat.json(),
        indexed.json(),
        bitmap.json(),
    );
    if let Err(e) = std::fs::write("BENCH_occ.json", &json) {
        eprintln!("occbench: cannot write BENCH_occ.json: {e}");
        return std::process::ExitCode::FAILURE;
    }
    println!("\n{json}");
    println!(
        "bitmap vs indexed: {bitmap_vs_indexed:.2}x candidate rate | bitmap vs flat: \
         {bitmap_vs_flat:.2}x | indexed vs flat: {indexed_vs_flat:.2}x"
    );
    std::process::ExitCode::SUCCESS
}
