//! Reproduces paper Table 1a: fault-tolerance overheads of MXR vs NFT
//! as the application size grows.
//!
//! Configurations: 20/40/60/80/100 processes on 2/3/4/5/6 nodes with
//! k = 3/4/5/6/7 faults, µ = 5 ms.

use ftdes_bench::{experiment_config, overhead_samples, print_header, print_row, PercentRow};
use ftdes_model::time::Time;

fn main() {
    let cfg = experiment_config();
    println!("Table 1a — MXR overhead vs NFT by application size");
    println!(
        "(seeds per row: {}, search budget: {:?} per strategy)\n",
        ftdes_bench::seeds(),
        ftdes_bench::time_budget()
    );
    print_header("procs/k");
    for (procs, nodes, k) in [(20, 2, 3), (40, 3, 4), (60, 4, 5), (80, 5, 6), (100, 6, 7)] {
        let samples = overhead_samples(procs, nodes, k, Time::from_ms(5), &cfg);
        let row = PercentRow::from_samples(&samples);
        print_row(&format!("{procs}/{k}"), &row);
    }
    println!("\npaper reference (avg): 70.67 / 84.78 / 99.59 / 120.55 / 149.47");
}
