//! # ftdes-bench
//!
//! The experiment harness that regenerates every table and figure of
//! the paper's evaluation (§6):
//!
//! | target | reproduces |
//! |---|---|
//! | `cargo run -p ftdes-bench --release --bin table1a` | Table 1a — overhead vs application size |
//! | `... --bin table1b` | Table 1b — overhead vs number of faults |
//! | `... --bin table1c` | Table 1c — overhead vs fault duration µ |
//! | `... --bin fig10` | Fig. 10 — MX / MR / SFX deviation from MXR |
//! | `... --bin cruise_control` | the CC case study |
//! | `... --bin perfgate` | evaluation-throughput gate (paper + comm-heavy workloads) → `BENCH_tabu.json` |
//! | `... --bin evalprof` | per-phase profile of one candidate evaluation |
//! | `... --bin incrprof` | incremental vs from-scratch per-move profile |
//! | `... --bin commprof` | communication-heavy per-candidate profile (bus-wait bound + occupancy index vs the PR 2 path) |
//! | `cargo bench -p ftdes-bench` | Criterion micro-benchmarks |
//!
//! Scale knobs (environment variables; the runtime `FTDES_*` knobs
//! are canonically documented in the `ftdes-core` crate docs):
//!
//! * `FTDES_SEEDS` — applications per configuration (paper: 15,
//!   default here: 5 to keep runs minutes-scale),
//! * `FTDES_TIME_MS` — search budget per strategy run in
//!   milliseconds (default 500; the paper used minutes-to-hours on
//!   2005 hardware),
//! * `FTDES_THREADS` / `RAYON_NUM_THREADS` — worker threads for
//!   candidate evaluation (default: available parallelism),
//! * `FTDES_NO_PARALLEL` — force single-threaded evaluation,
//! * `commprof` additionally reads `COMM_RATIO` / `COMM_DENSITY` /
//!   `COMM_PROCS` to sweep the communication-heavy family.
//!
//! # Evaluations/sec methodology
//!
//! All of the paper's experiments run the search under a wall-clock
//! budget ("the shortest schedule within an imposed time limit"), so
//! **candidate evaluations per second directly determine solution
//! quality**: more evaluations buy more tabu iterations buy shorter
//! schedules. The perf gate (`perfgate`) therefore measures, on a
//! fixed-seed workload and identical budgets:
//!
//! * `evaluations` — `ListScheduling` runs actually computed
//!   (cost-only window passes plus one full materialization per
//!   accepted iteration),
//! * `cache_hits` — candidate costs served by the memoization cache
//!   ([`ftdes_core::cache::Evaluator`]) without scheduling at all,
//! * `pruned` — candidates whose bounded run aborted once provably
//!   worse than the window incumbent (scored, but far short of a
//!   full placement),
//! * `tabu_iterations` — the quantity the budget is spent on,
//! * for **three** modes: the current incremental + bounded default,
//!   the PR 1 path (from-scratch cost-only evaluation over the
//!   sparse WCET table, no bounds or checkpoints) and the frozen
//!   pre-optimization reference in [`legacy`] (sequential, uncached,
//!   full materialization per candidate).
//!
//! Candidate selection uses a total order on `(cost, move index)`,
//! so for a fixed iteration/cutoff budget the trajectory is
//! bit-identical across thread counts, cache settings and evaluation
//! engines, and the legacy reference walks the same trajectory.
//! Under a *wall-clock* budget the faster mode crosses stage
//! boundaries (the staged-tabu midpoint, per-window cutoffs) at
//! different trajectory points, so per-seed best lengths can differ
//! in either direction — iteration counts measure search throughput,
//! best length stays an informational field. `BENCH_tabu.json`
//! records all three modes plus the speedup ratios; CI fails if the
//! tabu-iteration ratio vs legacy drops below 2.0 or the
//! candidate-rate ratio vs the PR 1 path below 1.25.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod jobs;
pub mod legacy;

use std::sync::Arc;
use std::time::Duration;

use ftdes_core::{
    effective_threads, optimize, optimize_with_cache, EvalCache, Goal, Outcome, Problem,
    SearchConfig, Strategy, WorkerPool,
};
use ftdes_gen::{comm_heavy, paper_workload, CommHeavyParams};
use ftdes_model::architecture::Architecture;
use ftdes_model::fault::FaultModel;
use ftdes_model::time::Time;
use ftdes_ttp::config::BusConfig;

/// Per-byte bus transmission time used by all experiments: 2.5 ms per
/// byte makes a 4-byte slot 10 ms long, matching the paper's figures.
pub const BYTE_TIME: Time = Time::from_us(2_500);

/// Reads an experiment knob from the environment.
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Number of random applications per configuration (paper: 15).
#[must_use]
pub fn seeds() -> usize {
    env_usize("FTDES_SEEDS", 5)
}

/// Search budget per strategy run.
#[must_use]
pub fn time_budget() -> Duration {
    Duration::from_millis(env_usize("FTDES_TIME_MS", 500) as u64)
}

/// The search configuration of the experiments: minimize δ within
/// the time budget (the paper "derived the shortest schedule within
/// an imposed time limit").
#[must_use]
pub fn experiment_config() -> SearchConfig {
    budgeted_config(10_000)
}

/// The wall-clock-budgeted configuration every table/bench bin shares:
/// minimize δ, stop at `FTDES_TIME_MS` or `max_iterations`, whichever
/// comes first.
#[must_use]
pub fn budgeted_config(max_iterations: usize) -> SearchConfig {
    SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: Some(time_budget()),
        max_tabu_iterations: max_iterations,
        ..SearchConfig::default()
    }
}

/// The **iteration-bounded** configuration of the sweep jobs: no
/// wall-clock limit at all, so for a fixed `max_iterations` the search
/// trajectory — and therefore every job result — is bit-identical
/// across runs, thread counts and machines. This is what makes
/// crash-resumed sweeps reproduce uncrashed ones exactly.
#[must_use]
pub fn iteration_config(max_iterations: usize) -> SearchConfig {
    SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: None,
        max_tabu_iterations: max_iterations,
        ..SearchConfig::default()
    }
}

/// Mean worst-case schedule length of a set of outcomes, in µs.
#[must_use]
pub fn mean_length_us(outcomes: &[Outcome]) -> f64 {
    outcomes
        .iter()
        .map(|o| o.length().as_us() as f64)
        .sum::<f64>()
        / outcomes.len().max(1) as f64
}

/// The per-process fault-tolerance technique mix of a set of designs:
/// how often the optimizer chose each technique (paper §6 discusses
/// the mix MXR settles on; the cptable sweep tracks how it shifts
/// with χ).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyMix {
    /// Pure re-execution decisions (no checkpoints).
    pub reexec: usize,
    /// Checkpointed re-execution decisions.
    pub checkpointed: usize,
    /// Pure replication decisions.
    pub replicated: usize,
    /// Replicated mixes (replicas and a re-execution budget).
    pub mixed: usize,
}

impl PolicyMix {
    /// Tallies the decisions of one design into the mix.
    pub fn add_design(&mut self, design: &ftdes_model::design::Design) {
        for (_, d) in design.iter() {
            if d.policy.is_pure_reexecution() {
                if d.policy.is_checkpointed() {
                    self.checkpointed += 1;
                } else {
                    self.reexec += 1;
                }
            } else if d.policy.is_pure_replication() {
                self.replicated += 1;
            } else {
                self.mixed += 1;
            }
        }
    }

    /// The mix across a set of outcomes.
    #[must_use]
    pub fn from_outcomes(outcomes: &[Outcome]) -> Self {
        let mut mix = PolicyMix::default();
        for o in outcomes {
            mix.add_design(&o.design);
        }
        mix
    }

    /// The JSON object fragment every artifact writer embeds.
    #[must_use]
    pub fn json(&self) -> String {
        format!(
            "{{\"reexec\": {}, \"checkpointed\": {}, \"replicated\": {}, \"mixed\": {}}}",
            self.reexec, self.checkpointed, self.replicated, self.mixed
        )
    }
}

impl std::fmt::Display for PolicyMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.reexec, self.checkpointed, self.replicated, self.mixed
        )
    }
}

/// Writes a `BENCH_*.json` artifact, with the error reporting every
/// bin previously hand-rolled.
///
/// # Errors
///
/// A formatted message naming the artifact and the I/O failure.
pub fn write_artifact(name: &str, json: &str) -> Result<(), String> {
    std::fs::write(name, json).map_err(|e| format!("cannot write {name}: {e}"))
}

/// Builds the problem instance for one synthetic application.
#[must_use]
pub fn synthetic_problem(processes: usize, nodes: usize, k: u32, mu: Time, seed: u64) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let workload = paper_workload(processes, &arch, seed);
    let largest = workload
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1)
        .max(1);
    let bus = BusConfig::initial(&arch, largest, BYTE_TIME)
        .expect("synthetic architectures are non-empty");
    Problem::new(
        workload.graph,
        arch,
        workload.wcet,
        FaultModel::new(k, mu),
        bus,
    )
}

/// Builds the problem instance for one communication-heavy
/// application ([`ftdes_gen::comm_heavy`], dense defaults): dense
/// DAGs, 4–16 byte messages and a per-byte bus time chosen so an
/// average message transfer costs half an average WCET — the workload
/// where bus waits, not computation, decide schedule length, and
/// where the certified bus-wait lower bound and the indexed slot
/// occupancy earn their keep. `perfgate`'s second gated entry runs
/// on exactly this instance.
#[must_use]
pub fn comm_heavy_problem(processes: usize, nodes: usize, k: u32, mu: Time, seed: u64) -> Problem {
    comm_heavy_problem_with(&CommHeavyParams::dense(processes), nodes, k, mu, seed)
}

/// [`comm_heavy_problem`] with explicit family parameters — the
/// ratio/density ablations (`commprof`) sweep these.
#[must_use]
pub fn comm_heavy_problem_with(
    params: &CommHeavyParams,
    nodes: usize,
    k: u32,
    mu: Time,
    seed: u64,
) -> Problem {
    let arch = Architecture::with_node_count(nodes);
    let workload = comm_heavy(params, &arch, seed);
    let largest = workload
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1)
        .max(1);
    let bus = BusConfig::initial(&arch, largest, params.byte_time())
        .expect("synthetic architectures are non-empty");
    Problem::new(
        workload.graph,
        arch,
        workload.wcet,
        FaultModel::new(k, mu),
        bus,
    )
}

/// Runs one strategy on one problem.
///
/// # Panics
///
/// Panics when the strategy cannot produce any design (e.g. MR on an
/// architecture with fewer than `k + 1` nodes) — experiment
/// configurations avoid this.
#[must_use]
pub fn run_strategy(problem: &Problem, strategy: Strategy, cfg: &SearchConfig) -> Outcome {
    optimize(problem, strategy, cfg).unwrap_or_else(|e| panic!("{strategy} failed: {e}"))
}

/// [`run_strategy`] over a shared evaluation cache: the strategies of
/// one seed solve the same application (under per-strategy fault
/// models, which the cache keys on), so they reuse each other's cost
/// entries.
///
/// # Panics
///
/// Same as [`run_strategy`].
#[must_use]
pub fn run_strategy_cached(
    problem: &Problem,
    strategy: Strategy,
    cfg: &SearchConfig,
    cache: &Arc<EvalCache>,
) -> Outcome {
    optimize_with_cache(problem, strategy, cfg, cache)
        .unwrap_or_else(|e| panic!("{strategy} failed: {e}"))
}

/// Maps `f` over every experiment seed, distributing the (mutually
/// independent) seeds over a persistent worker pool. `f` receives the
/// seed and the per-seed [`SearchConfig`]: when seed-level
/// parallelism is active, each inner search runs single-threaded —
/// the seeds already saturate the cores — otherwise the caller's
/// thread setting stands. Results come back in seed order.
pub fn par_seed_map<R, F>(cfg: &SearchConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64, &SearchConfig) -> R + Sync,
{
    let seeds = seeds().max(1);
    let pool = WorkerPool::new(effective_threads(0).min(seeds));
    let inner = SearchConfig {
        threads: if pool.threads() > 1 { 1 } else { cfg.threads },
        ..cfg.clone()
    };
    let items: Vec<u64> = (0..seeds as u64).collect();
    let mapped = pool
        .try_map_init(
            &items,
            || (),
            |(), _, &seed| Ok::<_, std::convert::Infallible>(Some(f(seed, &inner))),
        )
        .unwrap_or_else(|e| match e {});
    mapped
        .into_iter()
        .map(|r| r.expect("seed jobs are never skipped"))
        .collect()
}

/// Summary statistics of a set of per-seed percentages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentRow {
    /// Largest value.
    pub max: f64,
    /// Mean value.
    pub avg: f64,
    /// Smallest value.
    pub min: f64,
}

impl PercentRow {
    /// Aggregates raw percentages.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples collected");
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        PercentRow { max, avg, min }
    }
}

/// The fault-tolerance overhead samples (MXR vs NFT) for one
/// configuration — one percentage per seed (paper Table 1).
#[must_use]
pub fn overhead_samples(
    processes: usize,
    nodes: usize,
    k: u32,
    mu: Time,
    cfg: &SearchConfig,
) -> Vec<f64> {
    par_seed_map(cfg, |seed, cfg| {
        let problem = synthetic_problem(processes, nodes, k, mu, seed);
        let cache = Arc::new(EvalCache::default());
        let mxr = run_strategy_cached(&problem, Strategy::Mxr, cfg, &cache);
        let nft = run_strategy_cached(&problem, Strategy::Nft, cfg, &cache);
        ftdes_core::overhead_percent(&mxr, &nft)
    })
}

/// Average percentage deviation of `strategy`'s schedule length from
/// MXR's over the seeds of one configuration (paper Fig. 10).
#[must_use]
pub fn deviation_from_mxr(
    processes: usize,
    nodes: usize,
    k: u32,
    mu: Time,
    strategy: Strategy,
    cfg: &SearchConfig,
) -> f64 {
    let samples = par_seed_map(cfg, |seed, cfg| {
        let problem = synthetic_problem(processes, nodes, k, mu, seed);
        let cache = Arc::new(EvalCache::default());
        let mxr = run_strategy_cached(&problem, Strategy::Mxr, cfg, &cache);
        let other = run_strategy_cached(&problem, strategy, cfg, &cache);
        let d_mxr = mxr.length().as_us() as f64;
        let d_other = other.length().as_us() as f64;
        (d_mxr > 0.0).then(|| 100.0 * (d_other - d_mxr) / d_mxr)
    });
    let samples: Vec<f64> = samples.into_iter().flatten().collect();
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Prints a three-column overhead table row.
pub fn print_row(label: &str, row: &PercentRow) {
    println!(
        "{label:>10} | {max:>8.2} | {avg:>8.2} | {min:>8.2}",
        max = row.max,
        avg = row.avg,
        min = row.min
    );
}

/// Prints the standard table header.
pub fn print_header(first: &str) {
    println!(
        "{first:>10} | {:>8} | {:>8} | {:>8}",
        "%max", "%avg", "%min"
    );
    println!("{}", "-".repeat(44));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_row_aggregates() {
        let row = PercentRow::from_samples(&[10.0, 30.0, 20.0]);
        assert_eq!(row.max, 30.0);
        assert_eq!(row.min, 10.0);
        assert!((row.avg - 20.0).abs() < 1e-9);
    }

    #[test]
    fn synthetic_problem_is_well_formed() {
        let p = synthetic_problem(20, 2, 3, Time::from_ms(5), 0);
        assert_eq!(p.process_count(), 20);
        p.graph().validate().unwrap();
    }

    #[test]
    fn tiny_overhead_run_is_positive() {
        // A minimal smoke test of the full experiment pipeline.
        let cfg = SearchConfig {
            goal: Goal::MinimizeLength,
            time_limit: Some(Duration::from_millis(50)),
            max_tabu_iterations: 5,
            ..SearchConfig::default()
        };
        let problem = synthetic_problem(10, 2, 2, Time::from_ms(5), 1);
        let mxr = run_strategy(&problem, Strategy::Mxr, &cfg);
        let nft = run_strategy(&problem, Strategy::Nft, &cfg);
        assert!(
            mxr.length() >= nft.length(),
            "fault tolerance cannot be free"
        );
    }
}
