//! The crash matrix over the *real* sweep adapters: for every
//! registered fault point, crash a sweep mid-run, reopen, resume —
//! and require byte-identical aggregate results.
//!
//! This is the end-to-end form of the property the `ftdes-serve` toy
//! matrix isolates: the optimizer jobs are iteration-bounded (no
//! wall-clock limits), results carry no timestamps, and committed
//! results replay from the log, so crashing a sweep at any durability
//! boundary must not change a single byte of what it finally reports.

use std::path::{Path, PathBuf};

use ftdes_bench::jobs::{ChiSweep, RepairSweep, SweepExec, SweepSpec};
use ftdes_serve::{
    drive, CrashMode, DriveError, Injector, SweepClock, SweepState, SweepStore, WorkerConfig,
    FAULT_POINTS,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ftdes-bench-crash-matrix");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Small enough to finish a full matrix in seconds, large enough to
/// exercise every job kind (generate, optimize, faultsim, aggregate).
fn tiny_chi() -> SweepSpec {
    SweepSpec::Chi(ChiSweep {
        processes: 6,
        nodes: 2,
        faults: 1,
        mu_ms: 5,
        seeds: 1,
        chi_permille: vec![50],
        max_checkpoints: 2,
        max_iterations: 2,
        faultsim_samples: 8,
    })
}

fn cfg(worker: &str, takeover: bool) -> WorkerConfig {
    WorkerConfig {
        worker: worker.into(),
        lease_ms: 1_000,
        max_attempts: 2,
        backoff_base_ms: 10,
        takeover,
    }
}

/// Every committed result, serialized in job order — the sweep's
/// byte-level identity.
fn results_bytes(state: &SweepState) -> String {
    let mut out = String::new();
    for job in state.jobs() {
        out.push_str(&format!(
            "{} {}\n",
            job.spec.name,
            state
                .result(job.spec.id)
                .map(|v| serde_json::to_string(v).unwrap())
                .unwrap_or_else(|| "<none>".into()),
        ));
    }
    out
}

fn run_uncrashed(spec: &SweepSpec, path: &Path) -> String {
    let (mut store, mut state) = SweepStore::create(path, spec.name(), &spec.jobs()).unwrap();
    let clock = SweepClock::virtual_at(0);
    drive(
        &mut store,
        &mut state,
        &SweepExec::new(),
        &clock,
        &mut Injector::none(),
        &cfg("base", false),
    )
    .unwrap();
    assert!(state.is_complete(), "uncrashed sweep completes fully");
    results_bytes(&state)
}

#[test]
fn chi_sweep_resumes_bit_identically_after_every_crash_point() {
    let spec = tiny_chi();
    let baseline = run_uncrashed(&spec, &tmp("chi-baseline.jsonl"));

    // No failing jobs in this sweep, so the fail/quarantine points
    // never fire — drive then completes uncrashed, which is the
    // correct degenerate case (crash-at-point ≡ no-crash when the
    // point is never reached).
    for &point in FAULT_POINTS {
        let path = tmp(&format!("chi-{}.jsonl", point.replace('.', "-")));
        let (mut store, mut state) = SweepStore::create(&path, spec.name(), &spec.jobs()).unwrap();
        let clock = SweepClock::virtual_at(0);
        let mut injector = Injector::at(point, 1, CrashMode::Error).unwrap();
        let crashed = drive(
            &mut store,
            &mut state,
            &SweepExec::new(),
            &clock,
            &mut injector,
            &cfg("victim", false),
        );
        match crashed {
            Err(DriveError::InjectedCrash { point: p }) => assert_eq!(p, point),
            Ok(_) => assert!(
                point.starts_with("fail.") || point.starts_with("quarantine."),
                "[{point}] only failure points may go unfired on a healthy sweep"
            ),
            Err(other) => panic!("[{point}] unexpected error {other:?}"),
        }
        drop(store);

        // A fresh executor simulates the fresh process of a real
        // resume: empty cache pool, no carried state.
        let (mut store, mut state, report) = SweepStore::open(&path).unwrap();
        assert_eq!(
            report.dropped_torn_line,
            point == "done.torn_append",
            "[{point}] torn-line detection"
        );
        drive(
            &mut store,
            &mut state,
            &SweepExec::new(),
            &clock,
            &mut Injector::none(),
            &cfg("rescuer", true),
        )
        .unwrap();
        assert!(state.is_complete(), "[{point}] resumed sweep completes");
        assert_eq!(
            results_bytes(&state),
            baseline,
            "[{point}] resumed results differ from the uncrashed run"
        );
    }
}

#[test]
fn repair_sweep_crash_resume_is_bit_identical() {
    // One representative crash point for the heavier repair sweep:
    // the result-loss case (job ran, commit never landed), which
    // forces a full re-execution of a repair job on resume.
    let spec = SweepSpec::Repair(RepairSweep {
        processes: 6,
        comm_processes: 5,
        nodes: 3,
        faults: 1,
        mu_ms: 5,
        seeds: 1,
        max_iterations: 2,
    });
    let baseline = run_uncrashed(&spec, &tmp("repair-baseline.jsonl"));

    let path = tmp("repair-crash.jsonl");
    let (mut store, mut state) = SweepStore::create(&path, spec.name(), &spec.jobs()).unwrap();
    let clock = SweepClock::virtual_at(0);
    // Crash on the 4th commit: deep enough that generates and an
    // optimize have landed and an in-flight job's work is lost.
    let mut injector = Injector::at("done.before_append", 4, CrashMode::Error).unwrap();
    drive(
        &mut store,
        &mut state,
        &SweepExec::new(),
        &clock,
        &mut injector,
        &cfg("victim", false),
    )
    .unwrap_err();
    drop(store);

    let (mut store, mut state, _) = SweepStore::open(&path).unwrap();
    drive(
        &mut store,
        &mut state,
        &SweepExec::new(),
        &clock,
        &mut Injector::none(),
        &cfg("rescuer", true),
    )
    .unwrap();
    assert!(state.is_complete());
    assert_eq!(results_bytes(&state), baseline);
}
