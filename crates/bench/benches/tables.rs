//! Downsized Criterion versions of the paper's table experiments:
//! one MXR-vs-NFT overhead measurement per table, small enough to run
//! inside `cargo bench` (the full sweeps live in the `table1a` /
//! `table1b` / `table1c` / `fig10` binaries).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use ftdes_bench::{run_strategy, synthetic_problem};
use ftdes_core::{overhead_percent, Goal, SearchConfig, Strategy};
use ftdes_model::time::Time;

fn tiny_cfg() -> SearchConfig {
    SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: Some(Duration::from_millis(40)),
        max_tabu_iterations: 10,
        ..SearchConfig::default()
    }
}

fn bench_table1a_cell(c: &mut Criterion) {
    // Table 1a's first cell: 20 processes / 2 nodes / k = 3.
    let mut group = c.benchmark_group("table1a_cell_20p");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let problem = synthetic_problem(20, 2, 3, Time::from_ms(5), 0);
    group.bench_function("mxr_vs_nft", |b| {
        b.iter(|| {
            let cfg = tiny_cfg();
            let mxr = run_strategy(&problem, Strategy::Mxr, &cfg);
            let nft = run_strategy(&problem, Strategy::Nft, &cfg);
            overhead_percent(&mxr, &nft)
        });
    });
    group.finish();
}

fn bench_table1b_cell(c: &mut Criterion) {
    // Table 1b's k = 4 cell on a downsized 30-process application.
    let mut group = c.benchmark_group("table1b_cell_k4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let problem = synthetic_problem(30, 4, 4, Time::from_ms(5), 0);
    group.bench_function("mxr_vs_nft", |b| {
        b.iter(|| {
            let cfg = tiny_cfg();
            let mxr = run_strategy(&problem, Strategy::Mxr, &cfg);
            let nft = run_strategy(&problem, Strategy::Nft, &cfg);
            overhead_percent(&mxr, &nft)
        });
    });
    group.finish();
}

fn bench_table1c_cell(c: &mut Criterion) {
    // Table 1c's µ = 20 ms cell.
    let mut group = c.benchmark_group("table1c_cell_mu20");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let problem = synthetic_problem(20, 2, 3, Time::from_ms(20), 0);
    group.bench_function("mxr_vs_nft", |b| {
        b.iter(|| {
            let cfg = tiny_cfg();
            let mxr = run_strategy(&problem, Strategy::Mxr, &cfg);
            let nft = run_strategy(&problem, Strategy::Nft, &cfg);
            overhead_percent(&mxr, &nft)
        });
    });
    group.finish();
}

fn bench_fig10_point(c: &mut Criterion) {
    // One Fig. 10 point: MX deviation from MXR at 20 processes.
    let mut group = c.benchmark_group("fig10_point_20p");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let problem = synthetic_problem(20, 2, 1, Time::from_ms(5), 0);
    group.bench_function("mx_vs_mxr", |b| {
        b.iter(|| {
            let cfg = tiny_cfg();
            let mxr = run_strategy(&problem, Strategy::Mxr, &cfg);
            let mx = run_strategy(&problem, Strategy::Mx, &cfg);
            (mx.length().as_us() as f64 - mxr.length().as_us() as f64) / mxr.length().as_us() as f64
        });
    });
    group.finish();
}

fn bench_cruise_controller(c: &mut Criterion) {
    // The CC case study under a tight budget.
    let mut group = c.benchmark_group("cruise_controller");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(12));
    let cc = ftdes_gen::cruise_controller();
    let bus = ftdes_ttp::BusConfig::initial(&cc.arch, 3, Time::from_us(500)).expect("3 nodes");
    let problem = ftdes_core::Problem::new(
        cc.graph.clone(),
        cc.arch.clone(),
        cc.wcet.clone(),
        cc.fault_model,
        bus,
    )
    .with_constraints(cc.constraints.clone());
    group.bench_function("mxr", |b| {
        b.iter(|| run_strategy(&problem, Strategy::Mxr, &tiny_cfg()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1a_cell,
    bench_table1b_cell,
    bench_table1c_cell,
    bench_fig10_point,
    bench_cruise_controller
);
criterion_main!(benches);
