//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! tabu aspiration, diversification, and the neighbourhood cap. Each
//! variant runs the same bounded search; Criterion reports the cost,
//! and the resulting schedule lengths are printed once so the quality
//! impact is visible alongside the throughput.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftdes_bench::{run_strategy, synthetic_problem};
use ftdes_core::{Goal, SearchConfig, Strategy};
use ftdes_model::time::Time;

fn variant(name: &str) -> SearchConfig {
    let base = SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: None,
        max_tabu_iterations: 40,
        ..SearchConfig::default()
    };
    match name {
        "full" => base,
        "no_aspiration" => SearchConfig {
            aspiration: false,
            ..base
        },
        "no_diversification" => SearchConfig {
            diversification: false,
            ..base
        },
        "tight_cap" => SearchConfig {
            max_moves_per_iteration: 24,
            ..base
        },
        "unstaged" => SearchConfig {
            staged_tabu: false,
            ..base
        },
        _ => unreachable!("unknown variant"),
    }
}

static PRINT_QUALITY: Once = Once::new();

fn bench_tabu_ablation(c: &mut Criterion) {
    let problem = synthetic_problem(20, 2, 3, Time::from_ms(5), 4);

    PRINT_QUALITY.call_once(|| {
        eprintln!("\nablation schedule quality (40 tabu iterations, 20p/2n/k3):");
        for name in [
            "full",
            "no_aspiration",
            "no_diversification",
            "tight_cap",
            "unstaged",
        ] {
            let outcome = run_strategy(&problem, Strategy::Mxr, &variant(name));
            eprintln!(
                "  {name:20} delta = {:>9}  evaluations = {}",
                outcome.length().to_string(),
                outcome.stats.evaluations
            );
        }
        eprintln!();
    });

    let mut group = c.benchmark_group("tabu_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for name in [
        "full",
        "no_aspiration",
        "no_diversification",
        "tight_cap",
        "unstaged",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            let cfg = variant(name);
            b.iter(|| run_strategy(&problem, Strategy::Mxr, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tabu_ablation);
criterion_main!(benches);
