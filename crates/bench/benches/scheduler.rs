//! Criterion micro-benchmarks of the list scheduler — the inner loop
//! of the whole optimization (it runs once per candidate move).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftdes_bench::synthetic_problem;
use ftdes_core::{initial, PolicySpace};
use ftdes_model::time::Time;

fn bench_list_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_schedule");
    for &(procs, nodes, k) in &[(20usize, 2usize, 3u32), (60, 4, 5), (100, 6, 7)] {
        let problem = synthetic_problem(procs, nodes, k, Time::from_ms(5), 1);
        let design = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}p_{nodes}n_k{k}")),
            &(problem, design),
            |b, (problem, design)| {
                b.iter(|| problem.evaluate(design).expect("schedulable inputs"));
            },
        );
    }
    group.finish();
}

fn bench_replicated_schedule(c: &mut Criterion) {
    // Replica-heavy designs are the expensive end of the move
    // evaluation: schedule the fully replicated variant.
    let mut group = c.benchmark_group("list_schedule_replicated");
    for &(procs, nodes) in &[(20usize, 3usize), (60, 4)] {
        let k = nodes as u32 - 1; // full replication feasible
        let problem = synthetic_problem(procs, nodes, k, Time::from_ms(5), 1);
        let design =
            initial::initial_mpa(&problem, PolicySpace::ReplicationOnly).expect("placeable");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}p_{nodes}n_k{k}")),
            &(problem, design),
            |b, (problem, design)| {
                b.iter(|| problem.evaluate(design).expect("schedulable inputs"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_list_schedule, bench_replicated_schedule);
criterion_main!(benches);
