//! Ablation benchmark of the shared re-execution slack (paper
//! Fig. 3b): compares worst-case schedule lengths with sharing on
//! (the paper's scheduler) and off (naive per-process reserves) on
//! the same designs, and measures the analysis cost of both.

use std::sync::Once;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftdes_bench::synthetic_problem;
use ftdes_core::{initial, PolicySpace};
use ftdes_model::time::Time;
use ftdes_sched::{list_schedule_with, ScheduleOptions};

static PRINT_QUALITY: Once = Once::new();

fn bench_slack_sharing(c: &mut Criterion) {
    let configs = [(20usize, 2usize, 3u32), (60, 4, 5)];

    PRINT_QUALITY.call_once(|| {
        eprintln!("\nslack-sharing ablation (same initial design):");
        for &(procs, nodes, k) in &configs {
            let problem = synthetic_problem(procs, nodes, k, Time::from_ms(5), 3);
            let design = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
            let mut lengths = [Time::ZERO; 2];
            for (i, sharing) in [true, false].into_iter().enumerate() {
                let s = list_schedule_with(
                    problem.graph(),
                    problem.arch(),
                    problem.wcet(),
                    problem.fault_model(),
                    problem.bus(),
                    &design,
                    ScheduleOptions {
                        slack_sharing: sharing,
                        ..ScheduleOptions::default()
                    },
                )
                .expect("schedulable inputs");
                lengths[i] = s.length();
            }
            let gain = 100.0 * (lengths[1].as_us() as f64 - lengths[0].as_us() as f64)
                / lengths[0].as_us() as f64;
            eprintln!(
                "  {procs}p/{nodes}n/k{k}: shared {} vs unshared {} (+{gain:.1}%)",
                lengths[0], lengths[1]
            );
        }
        eprintln!();
    });

    let mut group = c.benchmark_group("slack_sharing");
    group.measurement_time(Duration::from_secs(6));
    for &(procs, nodes, k) in &configs {
        let problem = synthetic_problem(procs, nodes, k, Time::from_ms(5), 3);
        let design = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
        for sharing in [true, false] {
            let label = format!(
                "{procs}p_k{k}_{}",
                if sharing { "shared" } else { "unshared" }
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(problem.clone(), design.clone(), sharing),
                |b, (problem, design, sharing)| {
                    b.iter(|| {
                        list_schedule_with(
                            problem.graph(),
                            problem.arch(),
                            problem.wcet(),
                            problem.fault_model(),
                            problem.bus(),
                            design,
                            ScheduleOptions {
                                slack_sharing: *sharing,
                                ..ScheduleOptions::default()
                            },
                        )
                        .expect("schedulable inputs")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_slack_sharing);
criterion_main!(benches);
