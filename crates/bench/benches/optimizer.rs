//! Criterion benchmarks of the optimization layers: neighbourhood
//! generation, a single greedy pass, and a bounded tabu search.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ftdes_bench::synthetic_problem;
use ftdes_core::{greedy, initial, moves, tabu, Goal, PolicySpace, SearchConfig, SearchStats};
use ftdes_model::time::Time;

fn quick_cfg(iterations: usize) -> SearchConfig {
    SearchConfig {
        goal: Goal::MinimizeLength,
        time_limit: None,
        max_tabu_iterations: iterations,
        ..SearchConfig::default()
    }
}

fn bench_neighbourhood(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_moves");
    for &procs in &[20usize, 60] {
        let problem = synthetic_problem(procs, 4, 3, Time::from_ms(5), 2);
        let design = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
        let schedule = problem.evaluate(&design).expect("schedulable");
        let cp = schedule.critical_path(problem.graph());
        group.bench_with_input(
            BenchmarkId::from_parameter(procs),
            &(problem, design, cp),
            |b, (problem, design, cp)| {
                b.iter(|| moves::generate_moves(problem, PolicySpace::Mixed, design, cp));
            },
        );
    }
    group.finish();
}

fn bench_greedy_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_mpa");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let problem = synthetic_problem(20, 2, 3, Time::from_ms(5), 0);
    group.bench_function("20p_2n_k3", |b| {
        b.iter(|| {
            let mut stats = SearchStats::default();
            let start = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
            greedy::greedy_mpa(
                &problem,
                PolicySpace::Mixed,
                start,
                &quick_cfg(0),
                None,
                &mut stats,
            )
            .expect("greedy runs")
        });
    });
    group.finish();
}

fn bench_tabu_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("tabu_10_iterations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let problem = synthetic_problem(20, 2, 3, Time::from_ms(5), 0);
    let start = initial::initial_mpa(&problem, PolicySpace::Mixed).expect("placeable");
    let schedule = problem.evaluate(&start).expect("schedulable");
    group.bench_function("20p_2n_k3", |b| {
        b.iter(|| {
            let mut stats = SearchStats::default();
            tabu::tabu_search_mpa(
                &problem,
                PolicySpace::Mixed,
                (start.clone(), schedule.clone()),
                &quick_cfg(10),
                None,
                &mut stats,
            )
            .expect("tabu runs")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_neighbourhood,
    bench_greedy_step,
    bench_tabu_iterations
);
criterion_main!(benches);
