//! The `ftdes` command-line driver.
//!
//! ```text
//! ftdes solve <problem.ftd> [--strategy mxr|mx|mr|sfx|nft]
//!                           [--time-ms N] [--goal deadline|length]
//!                           [--json <out.json>] [--gantt] [--bus-opt]
//! ftdes inject <problem.ftd> [--strategy ...] [--scenarios N] [--seed S]
//! ftdes info  <problem.ftd>
//! ```

use std::process::ExitCode;
use std::time::Duration;

use ftdes_core::{optimize, optimize_bus, BusOptConfig, Goal, SearchConfig, Strategy};
use ftdes_faultsim::{adversarial_scenario, random_scenarios, simulate};
use ftdes_io::format::parse_problem;
use ftdes_io::report::{solution_report, to_json};
use ftdes_sched::render::{render_gantt, render_medl, render_tables};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    strategy: Strategy,
    time_ms: u64,
    goal: Goal,
    json: Option<String>,
    gantt: bool,
    bus_opt: bool,
    scenarios: usize,
    seed: u64,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            strategy: Strategy::Mxr,
            time_ms: 2_000,
            goal: Goal::MeetDeadline,
            json: None,
            gantt: false,
            bus_opt: false,
            scenarios: 100,
            seed: 0,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--strategy" => {
                    o.strategy = match value("--strategy")?.to_lowercase().as_str() {
                        "mxr" => Strategy::Mxr,
                        "mx" => Strategy::Mx,
                        "mr" => Strategy::Mr,
                        "sfx" => Strategy::Sfx,
                        "nft" => Strategy::Nft,
                        other => return Err(format!("unknown strategy {other:?}")),
                    };
                }
                "--time-ms" => {
                    o.time_ms = value("--time-ms")?
                        .parse()
                        .map_err(|_| "invalid --time-ms".to_owned())?;
                }
                "--goal" => {
                    o.goal = match value("--goal")?.as_str() {
                        "deadline" => Goal::MeetDeadline,
                        "length" => Goal::MinimizeLength,
                        other => return Err(format!("unknown goal {other:?}")),
                    };
                }
                "--json" => o.json = Some(value("--json")?),
                "--gantt" => o.gantt = true,
                "--bus-opt" => o.bus_opt = true,
                "--scenarios" => {
                    o.scenarios = value("--scenarios")?
                        .parse()
                        .map_err(|_| "invalid --scenarios".to_owned())?;
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "invalid --seed".to_owned())?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(o)
    }

    fn search_config(&self) -> SearchConfig {
        SearchConfig {
            goal: self.goal,
            time_limit: Some(Duration::from_millis(self.time_ms)),
            ..SearchConfig::default()
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(usage());
    };
    let Some((path, flags)) = rest.split_first() else {
        return Err(usage());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec = parse_problem(&text).map_err(|e| format!("{path}: {e}"))?;
    let node_names: Vec<String> = spec.arch.nodes().iter().map(|n| n.name.clone()).collect();
    let options = Options::parse(flags)?;
    let (problem, _merged) = spec.into_problem().map_err(|e| e.to_string())?;

    match command.as_str() {
        "info" => {
            println!(
                "processes: {}, edges: {}, nodes: {}, k = {}, mu = {}",
                problem.process_count(),
                problem.graph().edge_count(),
                problem.arch().node_count(),
                problem.fault_model().k(),
                problem.fault_model().mu()
            );
            println!(
                "bus: {} slots of {} ({} bytes each), round {}",
                problem.bus().slots_per_round(),
                problem.bus().slot_length(),
                problem.bus().slot_bytes(),
                problem.bus().round_length()
            );
            Ok(())
        }
        "solve" => {
            let mut outcome = optimize(&problem, options.strategy, &options.search_config())
                .map_err(|e| e.to_string())?;
            if options.bus_opt {
                let bused = optimize_bus(&problem, &outcome.design, &BusOptConfig::default())
                    .map_err(|e| e.to_string())?;
                if bused.schedule.cost() < outcome.schedule.cost() {
                    println!(
                        "bus-access optimization improved delta: {} -> {}",
                        outcome.schedule.length(),
                        bused.schedule.length()
                    );
                    outcome.schedule = bused.schedule;
                }
            }
            println!(
                "{}: delta = {}, schedulable: {}",
                options.strategy,
                outcome.length(),
                outcome.is_schedulable()
            );
            print!("{}", render_tables(&outcome.schedule, problem.graph()));
            print!("{}", render_medl(&outcome.schedule));
            if options.gantt {
                print!("{}", render_gantt(&outcome.schedule, problem.graph(), 72));
            }
            if let Some(out) = &options.json {
                let report = solution_report(
                    options.strategy.name(),
                    problem.graph(),
                    &node_names,
                    &outcome,
                );
                std::fs::write(out, to_json(&report)).map_err(|e| format!("writing {out}: {e}"))?;
                println!("report written to {out}");
            }
            Ok(())
        }
        "inject" => {
            let outcome = optimize(&problem, options.strategy, &options.search_config())
                .map_err(|e| e.to_string())?;
            let schedule = &outcome.schedule;
            let fm = problem.fault_model();
            let mut scenarios = random_scenarios(schedule, fm, options.scenarios, options.seed);
            scenarios.push(adversarial_scenario(schedule, fm));
            let mut worst = ftdes_model::time::Time::ZERO;
            for scenario in &scenarios {
                let report = simulate(schedule, problem.graph(), fm.mu(), scenario);
                if !report.all_processes_complete() {
                    return Err(format!("a process died under {scenario:?}"));
                }
                if let Some(over) = report.max_overrun() {
                    return Err(format!("worst-case bound violated: {over:?}"));
                }
                worst = worst.max(report.realized_length());
            }
            println!(
                "{} scenarios replayed: worst realized length {} <= bound {}",
                scenarios.len(),
                worst,
                outcome.length()
            );
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: ftdes <solve|inject|info> <problem.ftd> [flags]\n\
     flags: --strategy mxr|mx|mr|sfx|nft  --time-ms N  --goal deadline|length\n\
     \x20      --json out.json  --gantt  --bus-opt  --scenarios N  --seed S"
        .to_owned()
}
