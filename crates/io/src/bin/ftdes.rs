//! The `ftdes` command-line driver.
//!
//! ```text
//! ftdes solve <problem.ftd> [--strategy mxr|mx|mr|sfx|nft]
//!                           [--time-ms N] [--goal deadline|length]
//!                           [--json <out.json>] [--gantt] [--bus-opt]
//! ftdes inject <problem.ftd> [--strategy ...] [--scenarios N] [--seed S]
//! ftdes repair <problem.ftd> --delta <spec> [--delta <spec> ...]
//!                            [--repair-ms N] [--strategy ...] [--scenarios N]
//! ftdes info  <problem.ftd>
//! ftdes sweep run    --spec <sweep.txt> --store <log.jsonl> [--out results.json]
//!                    [--workers N] [--lease-ms N] [--max-attempts N]
//! ftdes sweep resume --store <log.jsonl> [--takeover] [--out results.json] [--workers N]
//! ftdes sweep status --store <log.jsonl>
//! ```
//!
//! `sweep` drives a whole experiment sweep (a χ trade-off table or a
//! degrade-and-repair study — see [`ftdes_io::sweep`] for the spec
//! format) as a crash-safe job DAG over an append-only event log
//! (`ftdes-serve`). Kill the process at any instant and `sweep
//! resume --takeover` continues from the log; the final results are
//! bit-identical to an uncrashed run. `FTDES_CRASH_AT=<point>[:<n>]`
//! arms the crash-injection harness (real `abort()` at a registered
//! fault point) for exactly that drill.
//!
//! Exit codes are classified sysexits-style: `2` usage, `65` malformed
//! input (problem file, sweep spec, or corrupt store), `74` I/O
//! failure, `1` anything else (solver errors, stalled sweeps, ...).
//!
//! `repair` optimizes the intact problem, applies the composite
//! delta (`kill-node:N1`, `degrade-node:N1:150`, `rescale-wcet:120`,
//! `remove-process:P2`, `add-process:w:N0=10ms,...` — see
//! [`ftdes_io::delta`]), repairs the design through the escalation
//! ladder within `--repair-ms`, prints the per-rung audit trail, and
//! replays fault scenarios against the repaired schedule.
//!
//! Instead of a problem file, every command also accepts a generated
//! instance: `--family comm-heavy|paper` with `--procs N`, `--nodes N`,
//! `--k N`, `--mu-ms N`, `--chi-ms N` (checkpointing overhead χ;
//! non-zero values open the optimizer's checkpoint move axis, capped
//! by `--max-checkpoints N`), `--seed S` and (comm-heavy only) the
//! family knobs `--density F` (mean edges per process) and
//! `--msg-wcet-ratio F` (mean message transfer time over mean WCET) —
//! the communication-heavy family the benchmarks sweep, reachable
//! straight from the CLI:
//!
//! ```text
//! ftdes solve --family comm-heavy --procs 50 --density 5 \
//!             --msg-wcet-ratio 0.5 --goal length --bus-opt
//! ```

use std::fmt;
use std::process::ExitCode;
use std::time::Duration;

use ftdes_bench::jobs::SweepExec;
use ftdes_core::repair::{repair, RepairBudget};
use ftdes_core::{
    optimize, optimize_bus, optimize_portfolio, BusOptConfig, Goal, PolicySpace, PortfolioConfig,
    Problem, SearchConfig, Strategy,
};
use ftdes_faultsim::{adversarial_scenario, random_scenarios, simulate};
use ftdes_gen::{comm_heavy, paper_workload, CommHeavyParams};
use ftdes_io::delta::parse_delta_with;
use ftdes_io::format::parse_problem;
use ftdes_io::report::{solution_report, to_json};
use ftdes_io::sweep::parse_sweep;
use ftdes_model::architecture::Architecture;
use ftdes_model::fault::FaultModel;
use ftdes_model::time::Time;
use ftdes_sched::render::{render_gantt, render_medl, render_tables};
use ftdes_serve::{
    drive, drive_parallel, Injector, JobStatus, StoreError, SweepClock, SweepState, SweepStore,
    WorkerConfig,
};
use ftdes_ttp::config::BusConfig;
use serde::Value;

/// A classified CLI failure. The variant picks the process exit code
/// (sysexits-style) so scripts and the e2e tests can tell *why* a run
/// failed without parsing stderr.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown command/flag, missing argument. Exit 2.
    Usage(String),
    /// Malformed input data: problem file, sweep spec, corrupt or
    /// inconsistent store. Exit 65 (`EX_DATAERR`).
    Parse(String),
    /// The OS said no: unreadable file, failed write/sync. Exit 74
    /// (`EX_IOERR`).
    Io(String),
    /// Everything else (solver failure, stalled sweep, ...). Exit 1.
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 65,
            CliError::Io(_) => 74,
            CliError::Other(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Parse(m) | CliError::Io(m) | CliError::Other(m) => {
                f.write_str(m)
            }
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Other(message)
    }
}

/// Store failures keep their classification: OS errors are I/O,
/// corrupt or inconsistent logs are data errors.
fn store_err(e: StoreError) -> CliError {
    match e {
        StoreError::Io { .. } => CliError::Io(e.to_string()),
        _ => CliError::Parse(e.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((command, rest)) if command == "sweep" => run_sweep(rest),
        _ => run(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}

/// A generated-instance request (`--family …`) in place of a problem
/// file.
struct FamilyOptions {
    family: String,
    procs: usize,
    nodes: usize,
    k: u32,
    mu_ms: u64,
    chi_ms: u64,
    density: f64,
    msg_wcet_ratio: f64,
}

impl Default for FamilyOptions {
    fn default() -> Self {
        let dense = CommHeavyParams::dense(50);
        FamilyOptions {
            family: String::new(),
            procs: 50,
            nodes: 4,
            k: 2,
            mu_ms: 5,
            chi_ms: 0,
            density: dense.edge_density,
            msg_wcet_ratio: dense.msg_wcet_ratio,
        }
    }
}

impl FamilyOptions {
    /// Builds the generated problem instance.
    fn into_problem(self, seed: u64) -> Result<Problem, String> {
        let arch = Architecture::with_node_count(self.nodes);
        let fm = FaultModel::new(self.k, Time::from_ms(self.mu_ms))
            .with_checkpoint_overhead(Time::from_ms(self.chi_ms));
        let (workload, byte_time) = match self.family.as_str() {
            "comm-heavy" => {
                let params = CommHeavyParams::dense(self.procs)
                    .with_density(self.density)
                    .with_ratio(self.msg_wcet_ratio);
                (comm_heavy(&params, &arch, seed), params.byte_time())
            }
            // The paper's synthetic family: 1–4 byte messages over the
            // experiments' 2.5 ms/byte bus.
            "paper" => (
                paper_workload(self.procs, &arch, seed),
                Time::from_us(2_500),
            ),
            other => return Err(format!("unknown family {other:?} (comm-heavy | paper)")),
        };
        let largest = workload
            .graph
            .edges()
            .iter()
            .map(|e| e.message.size)
            .max()
            .unwrap_or(1)
            .max(1);
        let bus = BusConfig::initial(&arch, largest, byte_time).map_err(|e| e.to_string())?;
        Ok(Problem::new(workload.graph, arch, workload.wcet, fm, bus))
    }
}

struct Options {
    strategy: Strategy,
    time_ms: u64,
    goal: Goal,
    json: Option<String>,
    gantt: bool,
    bus_opt: bool,
    scenarios: usize,
    seed: u64,
    family: Option<FamilyOptions>,
    max_checkpoints: Option<u32>,
    deltas: Vec<String>,
    repair_ms: u64,
    portfolio: usize,
    epoch_candidates: usize,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            strategy: Strategy::Mxr,
            time_ms: 2_000,
            goal: Goal::MeetDeadline,
            json: None,
            gantt: false,
            bus_opt: false,
            scenarios: 100,
            seed: 0,
            family: None,
            max_checkpoints: None,
            deltas: Vec::new(),
            repair_ms: 500,
            portfolio: 0,
            epoch_candidates: 4_096,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--strategy" => {
                    o.strategy = match value("--strategy")?.to_lowercase().as_str() {
                        "mxr" => Strategy::Mxr,
                        "mx" => Strategy::Mx,
                        "mr" => Strategy::Mr,
                        "sfx" => Strategy::Sfx,
                        "nft" => Strategy::Nft,
                        other => return Err(format!("unknown strategy {other:?}")),
                    };
                }
                "--time-ms" => {
                    o.time_ms = value("--time-ms")?
                        .parse()
                        .map_err(|_| "invalid --time-ms".to_owned())?;
                }
                "--goal" => {
                    o.goal = match value("--goal")?.as_str() {
                        "deadline" => Goal::MeetDeadline,
                        "length" => Goal::MinimizeLength,
                        other => return Err(format!("unknown goal {other:?}")),
                    };
                }
                "--json" => o.json = Some(value("--json")?),
                "--delta" => o.deltas.push(value("--delta")?),
                "--repair-ms" => {
                    o.repair_ms = value("--repair-ms")?
                        .parse()
                        .map_err(|_| "invalid --repair-ms".to_owned())?;
                }
                "--gantt" => o.gantt = true,
                "--bus-opt" => o.bus_opt = true,
                "--portfolio" => {
                    o.portfolio = value("--portfolio")?
                        .parse()
                        .map_err(|_| "invalid --portfolio".to_owned())?;
                }
                "--epoch-candidates" => {
                    o.epoch_candidates = value("--epoch-candidates")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --epoch-candidates".to_owned())?
                        .max(1);
                }
                "--scenarios" => {
                    o.scenarios = value("--scenarios")?
                        .parse()
                        .map_err(|_| "invalid --scenarios".to_owned())?;
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "invalid --seed".to_owned())?;
                }
                "--family" => {
                    let mut fam = o.family.take().unwrap_or_default();
                    fam.family = value("--family")?.to_lowercase();
                    o.family = Some(fam);
                }
                "--procs" => {
                    o.family.get_or_insert_with(Default::default).procs = value("--procs")?
                        .parse()
                        .map_err(|_| "invalid --procs".to_owned())?;
                }
                "--nodes" => {
                    o.family.get_or_insert_with(Default::default).nodes = value("--nodes")?
                        .parse()
                        .map_err(|_| "invalid --nodes".to_owned())?;
                }
                "--k" => {
                    o.family.get_or_insert_with(Default::default).k = value("--k")?
                        .parse()
                        .map_err(|_| "invalid --k".to_owned())?;
                }
                "--mu-ms" => {
                    o.family.get_or_insert_with(Default::default).mu_ms = value("--mu-ms")?
                        .parse()
                        .map_err(|_| "invalid --mu-ms".to_owned())?;
                }
                "--chi-ms" => {
                    o.family.get_or_insert_with(Default::default).chi_ms = value("--chi-ms")?
                        .parse()
                        .map_err(|_| "invalid --chi-ms".to_owned())?;
                }
                "--max-checkpoints" => {
                    o.max_checkpoints = Some(
                        value("--max-checkpoints")?
                            .parse()
                            .map_err(|_| "invalid --max-checkpoints".to_owned())?,
                    );
                }
                "--density" => {
                    o.family.get_or_insert_with(Default::default).density = value("--density")?
                        .parse()
                        .map_err(|_| "invalid --density".to_owned())?;
                }
                "--msg-wcet-ratio" => {
                    o.family.get_or_insert_with(Default::default).msg_wcet_ratio =
                        value("--msg-wcet-ratio")?
                            .parse()
                            .map_err(|_| "invalid --msg-wcet-ratio".to_owned())?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(o)
    }

    fn search_config(&self) -> SearchConfig {
        SearchConfig {
            goal: self.goal,
            time_limit: Some(Duration::from_millis(self.time_ms)),
            ..SearchConfig::default()
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage(usage()));
    };
    // Either a problem file, or a generated instance (`--family …` —
    // the flags then start right after the command).
    let (path, flags) = match rest.split_first() {
        Some((p, tail)) if !p.starts_with("--") => (Some(p.as_str()), tail),
        _ => (None, rest),
    };
    let mut options = Options::parse(flags).map_err(CliError::Usage)?;
    let (problem, node_names) = match (path, options.family.take()) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Io(format!("reading {path}: {e}")))?;
            let spec = parse_problem(&text).map_err(|e| CliError::Parse(format!("{path}: {e}")))?;
            let names: Vec<String> = spec.arch.nodes().iter().map(|n| n.name.clone()).collect();
            let (problem, _merged) = spec
                .into_problem()
                .map_err(|e| CliError::Parse(e.to_string()))?;
            (problem, names)
        }
        (None, Some(family)) => {
            if family.family.is_empty() {
                return Err(CliError::Usage(
                    "generator knobs need --family comm-heavy|paper".to_owned(),
                ));
            }
            let problem = family.into_problem(options.seed)?;
            let names = (0..problem.arch().node_count())
                .map(|i| format!("N{i}"))
                .collect();
            (problem, names)
        }
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "pass either a problem file or --family, not both".to_owned(),
            ))
        }
        (None, None) => return Err(CliError::Usage(usage())),
    };
    let problem = match options.max_checkpoints {
        Some(n) => problem.with_max_checkpoints(n),
        None => problem,
    };
    let options = options;

    match command.as_str() {
        "info" => {
            println!(
                "processes: {}, edges: {}, nodes: {}, k = {}, mu = {}, chi = {} \
                 (checkpoint levels: {})",
                problem.process_count(),
                problem.graph().edge_count(),
                problem.arch().node_count(),
                problem.fault_model().k(),
                problem.fault_model().mu(),
                problem.fault_model().chi(),
                problem.max_checkpoints()
            );
            println!(
                "bus: {} slots of {} ({} bytes each), round {}",
                problem.bus().slots_per_round(),
                problem.bus().slot_length(),
                problem.bus().slot_bytes(),
                problem.bus().round_length()
            );
            Ok(())
        }
        "solve" => {
            let mut outcome = if options.portfolio > 0 {
                // The portfolio diversifies the tabu phase of one
                // policy space; the SFX/NFT baselines have no tabu
                // phase worth diversifying.
                let space = match options.strategy {
                    Strategy::Mxr => PolicySpace::Mixed,
                    Strategy::Mx => PolicySpace::ReexecutionOnly,
                    Strategy::Mr => PolicySpace::ReplicationOnly,
                    Strategy::Sfx | Strategy::Nft => {
                        return Err(CliError::Usage(
                            "--portfolio needs --strategy mxr|mx|mr".to_owned(),
                        ))
                    }
                };
                let pcfg = PortfolioConfig {
                    workers: options.portfolio,
                    epoch_candidates: options.epoch_candidates,
                    seed: options.seed ^ PortfolioConfig::default().seed,
                    ..PortfolioConfig::default()
                };
                let p = optimize_portfolio(&problem, space, &options.search_config(), &pcfg)
                    .map_err(|e| e.to_string())?;
                for w in &p.workers {
                    println!(
                        "worker {} [{}]: best = {}, iterations = {}, lookups = {}, adopted = {}",
                        w.index,
                        w.label,
                        w.best
                            .map_or_else(|| "-".to_owned(), |c| format!("{}", c.length)),
                        w.tabu_iterations,
                        w.lookups,
                        w.adopted
                    );
                }
                println!(
                    "portfolio: {} workers, {} epochs, {} elite exchanges",
                    p.workers.len(),
                    p.epochs,
                    p.exchanges
                );
                p.outcome
            } else {
                optimize(&problem, options.strategy, &options.search_config())
                    .map_err(|e| e.to_string())?
            };
            if options.bus_opt {
                let bused = optimize_bus(&problem, &outcome.design, &BusOptConfig::default())
                    .map_err(|e| e.to_string())?;
                if bused.schedule.cost() < outcome.schedule.cost() {
                    println!(
                        "bus-access optimization improved delta: {} -> {}",
                        outcome.schedule.length(),
                        bused.schedule.length()
                    );
                    outcome.schedule = bused.schedule;
                }
            }
            println!(
                "{}: delta = {}, schedulable: {}",
                options.strategy,
                outcome.length(),
                outcome.is_schedulable()
            );
            print!("{}", render_tables(&outcome.schedule, problem.graph()));
            print!("{}", render_medl(&outcome.schedule));
            if options.gantt {
                print!("{}", render_gantt(&outcome.schedule, problem.graph(), 72));
            }
            if let Some(out) = &options.json {
                let report = solution_report(
                    options.strategy.name(),
                    problem.graph(),
                    &node_names,
                    &outcome,
                );
                std::fs::write(out, to_json(&report))
                    .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
                println!("report written to {out}");
            }
            Ok(())
        }
        "inject" => {
            let outcome = optimize(&problem, options.strategy, &options.search_config())
                .map_err(|e| e.to_string())?;
            let schedule = &outcome.schedule;
            let fm = problem.fault_model();
            let mut scenarios = random_scenarios(schedule, fm, options.scenarios, options.seed);
            scenarios.push(adversarial_scenario(schedule, fm));
            let mut worst = ftdes_model::time::Time::ZERO;
            for scenario in &scenarios {
                let report = simulate(schedule, problem.graph(), fm, scenario);
                if !report.all_processes_complete() {
                    return Err(CliError::Other(format!(
                        "a process died under {scenario:?}"
                    )));
                }
                if let Some(over) = report.max_overrun() {
                    return Err(CliError::Other(format!(
                        "worst-case bound violated: {over:?}"
                    )));
                }
                worst = worst.max(report.realized_length());
            }
            println!(
                "{} scenarios replayed: worst realized length {} <= bound {}",
                scenarios.len(),
                worst,
                outcome.length()
            );
            Ok(())
        }
        "repair" => {
            if options.deltas.is_empty() {
                return Err(CliError::Usage(
                    "repair needs at least one --delta <spec>".to_owned(),
                ));
            }
            let names = ftdes_io::DeltaNames {
                nodes: node_names.clone(),
                processes: problem
                    .graph()
                    .processes()
                    .iter()
                    .map(|p| p.name.clone())
                    .collect(),
            };
            let delta = parse_delta_with(&options.deltas, &names)
                .map_err(|e| CliError::Parse(e.to_string()))?;
            let outcome = optimize(&problem, options.strategy, &options.search_config())
                .map_err(|e| e.to_string())?;
            println!(
                "intact {}: delta = {}, schedulable: {}",
                options.strategy,
                outcome.length(),
                outcome.is_schedulable()
            );
            println!("applying: {delta}");
            let budget = RepairBudget::from_total(Duration::from_millis(options.repair_ms));
            let repaired = repair(
                &problem,
                &outcome.design,
                &delta,
                &budget,
                &options.search_config(),
            )
            .map_err(|e| e.to_string())?;
            println!(
                "compatibility: {}/{} decisions survive ({} dirty, {} removed)",
                repaired.report.clean().len(),
                repaired.report.clean().len() + repaired.report.dirty().len(),
                repaired.report.dirty().len(),
                repaired.report.removed().len()
            );
            for attempt in &repaired.attempts {
                let length = match attempt.length {
                    Some(l) => format!(", delta = {l}"),
                    None => String::new(),
                };
                println!(
                    "  {}: {:?} in {:?}{length}",
                    attempt.rung, attempt.status, attempt.elapsed
                );
            }
            println!(
                "repaired by {}: delta = {}, schedulable: {}",
                repaired.rung,
                repaired.length(),
                repaired.is_schedulable()
            );
            if !repaired.is_schedulable() {
                return Err(CliError::Other(
                    "no schedulable repair within the budget".to_owned(),
                ));
            }
            let post = &repaired.problem;
            let fm = post.fault_model();
            let mut scenarios =
                random_scenarios(&repaired.schedule, fm, options.scenarios, options.seed);
            scenarios.push(adversarial_scenario(&repaired.schedule, fm));
            for scenario in &scenarios {
                let report = simulate(&repaired.schedule, post.graph(), fm, scenario);
                if !report.all_processes_complete() {
                    return Err(CliError::Other(format!(
                        "a process died under {scenario:?}"
                    )));
                }
                if let Some(over) = report.max_overrun() {
                    return Err(CliError::Other(format!(
                        "worst-case bound violated: {over:?}"
                    )));
                }
            }
            println!(
                "{} scenarios replayed against the repaired schedule: all complete in bound",
                scenarios.len()
            );
            if options.gantt {
                print!("{}", render_gantt(&repaired.schedule, post.graph(), 72));
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

/// Flags of the `sweep` subcommands.
struct SweepOptions {
    store: Option<String>,
    spec: Option<String>,
    out: Option<String>,
    workers: usize,
    takeover: bool,
    lease_ms: u64,
    max_attempts: u32,
}

impl SweepOptions {
    fn parse(args: &[String]) -> Result<SweepOptions, CliError> {
        let mut o = SweepOptions {
            store: None,
            spec: None,
            out: None,
            workers: 1,
            takeover: false,
            lease_ms: 60_000,
            max_attempts: 3,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            let number = |name: &str, v: String| {
                v.parse::<u64>()
                    .map_err(|_| CliError::Usage(format!("invalid {name}: {v:?}")))
            };
            match flag.as_str() {
                "--store" => o.store = Some(value("--store")?),
                "--spec" => o.spec = Some(value("--spec")?),
                "--out" => o.out = Some(value("--out")?),
                "--takeover" => o.takeover = true,
                "--workers" => o.workers = number("--workers", value("--workers")?)? as usize,
                "--lease-ms" => o.lease_ms = number("--lease-ms", value("--lease-ms")?)?,
                "--max-attempts" => {
                    o.max_attempts = number("--max-attempts", value("--max-attempts")?)? as u32;
                }
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown sweep flag {other:?}\n{}",
                        sweep_usage()
                    )))
                }
            }
        }
        Ok(o)
    }

    fn store(&self) -> Result<&str, CliError> {
        self.store
            .as_deref()
            .ok_or_else(|| CliError::Usage("sweep needs --store <log.jsonl>".to_owned()))
    }

    fn worker_config(&self, takeover: bool) -> WorkerConfig {
        WorkerConfig {
            worker: format!("cli-{}", std::process::id()),
            lease_ms: self.lease_ms,
            max_attempts: self.max_attempts,
            takeover,
            ..WorkerConfig::default()
        }
    }
}

fn run_sweep(args: &[String]) -> Result<(), CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(CliError::Usage(sweep_usage()));
    };
    let o = SweepOptions::parse(rest)?;
    match sub.as_str() {
        "run" => {
            let spec_path = o
                .spec
                .as_deref()
                .ok_or_else(|| CliError::Usage("sweep run needs --spec <sweep.txt>".to_owned()))?;
            let text = std::fs::read_to_string(spec_path)
                .map_err(|e| CliError::Io(format!("reading {spec_path}: {e}")))?;
            let spec =
                parse_sweep(&text).map_err(|e| CliError::Parse(format!("{spec_path}: {e}")))?;
            let jobs = spec.jobs();
            println!(
                "sweep {}: {} jobs -> {}",
                spec.name(),
                jobs.len(),
                o.store()?
            );
            let (mut store, mut state) =
                SweepStore::create(std::path::Path::new(o.store()?), spec.name(), &jobs)
                    .map_err(store_err)?;
            drive_sweep(&o, &mut store, &mut state, false)?;
            finish_sweep(&o, &state)
        }
        "resume" => {
            let (mut store, mut state, report) =
                SweepStore::open(std::path::Path::new(o.store()?)).map_err(store_err)?;
            if report.dropped_torn_line {
                println!("recovered from a torn append (dropped the partial line)");
            }
            println!(
                "resuming sweep {} from {} replayed events",
                state.sweep, report.events
            );
            drive_sweep(&o, &mut store, &mut state, o.takeover)?;
            finish_sweep(&o, &state)
        }
        "status" => {
            let (_store, state, report) =
                SweepStore::open(std::path::Path::new(o.store()?)).map_err(store_err)?;
            print_status(&state, report.events, report.dropped_torn_line);
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown sweep subcommand {other:?}\n{}",
            sweep_usage()
        ))),
    }
}

/// Drives the sweep to a settled state. A crash injector armed via
/// `FTDES_CRASH_AT` forces the single-worker loop (injection is a
/// single-worker instrument); otherwise `--workers N` fans out.
fn drive_sweep(
    o: &SweepOptions,
    store: &mut SweepStore,
    state: &mut SweepState,
    takeover: bool,
) -> Result<(), CliError> {
    let mut injector = Injector::from_env().map_err(CliError::Usage)?;
    let exec = SweepExec::new();
    let cfg = o.worker_config(takeover);
    let report = if o.workers > 1 && injector.armed_point().is_none() {
        drive_parallel(store, state, &exec, &SweepClock::Wall, &cfg, o.workers)
    } else {
        drive(store, state, &exec, &SweepClock::Wall, &mut injector, &cfg)
    }
    .map_err(|e| match e {
        ftdes_serve::DriveError::Store(s) => store_err(s),
        other => CliError::Other(other.to_string()),
    })?;
    println!(
        "drove sweep: {} executed, {} reclaimed, {} failed attempts, {} quarantined, {} blocked",
        report.executed,
        report.reclaimed,
        report.failed_attempts,
        report.quarantined,
        report.blocked
    );
    Ok(())
}

/// Prints the outcome and writes `--out` (deterministic job-order
/// JSON — the file two independent complete runs must agree on
/// byte-for-byte).
fn finish_sweep(o: &SweepOptions, state: &SweepState) -> Result<(), CliError> {
    print_status(state, 0, false);
    if let Some(out) = &o.out {
        if !state.is_complete() {
            return Err(CliError::Other(
                "sweep settled with unfinished jobs; not writing --out".to_owned(),
            ));
        }
        let json = results_json(state)?;
        std::fs::write(out, json).map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
        println!("results written to {out}");
    }
    if !state.is_complete() {
        return Err(CliError::Other(
            "sweep settled but some jobs are quarantined or blocked".to_owned(),
        ));
    }
    Ok(())
}

/// Every committed result in job order, as one stable JSON document.
fn results_json(state: &SweepState) -> Result<String, CliError> {
    let jobs: Vec<Value> = state
        .jobs()
        .map(|job| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(job.spec.name.clone())),
                (
                    "result".to_owned(),
                    state.result(job.spec.id).cloned().unwrap_or(Value::Null),
                ),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("sweep".to_owned(), Value::Str(state.sweep.clone())),
        ("jobs".to_owned(), Value::Array(jobs)),
    ]);
    serde_json::to_string(&doc)
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| CliError::Other(format!("encoding results: {e:?}")))
}

fn print_status(state: &SweepState, events: usize, torn: bool) {
    let c = state.counts();
    println!(
        "sweep {} [fp {:016x}]: {} done, {} ready, {} waiting, {} claimed, {} failed, \
         {} quarantined{}{}",
        state.sweep,
        state.spec_fp,
        c.done,
        c.ready,
        c.waiting,
        c.claimed,
        c.failed,
        c.quarantined,
        if events > 0 {
            format!(" ({events} events replayed)")
        } else {
            String::new()
        },
        if torn { ", torn line dropped" } else { "" },
    );
    for job in state.jobs() {
        let line = match &job.status {
            JobStatus::Done { .. } => continue,
            JobStatus::Ready if state.deps_done(job.spec.id) => "ready".to_owned(),
            JobStatus::Ready if state.blocked_forever(job.spec.id) => {
                "blocked (dependency quarantined)".to_owned()
            }
            JobStatus::Ready => "waiting on dependencies".to_owned(),
            JobStatus::Claimed {
                worker,
                attempt,
                expires_ms,
            } => format!("claimed by {worker} (attempt {attempt}, lease to {expires_ms})"),
            JobStatus::Failed { attempt, retry_ms } => {
                format!("failed attempt {attempt}, retry at {retry_ms}")
            }
            JobStatus::Quarantined => format!(
                "quarantined after {} attempts: {}",
                job.failures.len(),
                job.failures.last().map_or("", String::as_str)
            ),
        };
        println!("  {}: {line}", job.spec.name);
    }
}

fn sweep_usage() -> String {
    "usage: ftdes sweep run    --spec <sweep.txt> --store <log.jsonl> [--out results.json]\n\
     \x20                     [--workers N] [--lease-ms N] [--max-attempts N]\n\
     \x20      ftdes sweep resume --store <log.jsonl> [--takeover] [--out results.json] [--workers N]\n\
     \x20      ftdes sweep status --store <log.jsonl>\n\
     crash drills: FTDES_CRASH_AT=<fault-point>[:<n>] aborts the worker at a registered\n\
     durability boundary; `sweep resume --takeover` then continues from the log"
        .to_owned()
}

fn usage() -> String {
    "usage: ftdes <solve|inject|repair|info|sweep> <problem.ftd | --family comm-heavy|paper> [flags]\n\
     flags: --strategy mxr|mx|mr|sfx|nft  --time-ms N  --goal deadline|length\n\
     \x20      --json out.json  --gantt  --bus-opt  --scenarios N  --seed S\n\
     \x20      --portfolio N (diversified parallel tabu workers, mxr|mx|mr only)\n\
     \x20      --epoch-candidates N (candidates per worker between elite exchanges)\n\
     repair: --delta kill-node:N1|degrade-node:N1:150|rescale-wcet:120|remove-process:P2\n\
     \x20      --delta add-process:name:N0=10ms,...  (repeatable)  --repair-ms N\n\
     generated instances: --family comm-heavy|paper  --procs N  --nodes N  --k N  --mu-ms N\n\
     \x20      --chi-ms N (checkpoint overhead)  --max-checkpoints N (move axis cap)\n\
     \x20      comm-heavy knobs: --density F (mean edges/process)  --msg-wcet-ratio F"
        .to_owned()
}
