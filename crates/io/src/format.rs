//! The `ftdes` problem-file format.
//!
//! A line-oriented text format in the spirit of TGFF task-graph
//! files, covering everything the optimizer needs:
//!
//! ```text
//! # comments run to end of line
//! architecture ETM ABS TCM
//! fault_model k=2 mu=2ms
//! bus slot_bytes=4 byte_time=500us         # order=ABS,ETM,TCM optional
//!
//! graph period=250ms deadline=250ms
//!   process sense release=0ms
//!   process compute deadline=200ms
//!   process act
//!   edge sense compute bytes=2
//!   edge compute act bytes=4
//!
//! wcet sense ETM 3ms        # node name or * for every node
//! wcet compute * 10ms
//! wcet act TCM 4ms
//! fix_mapping sense ETM
//! fix_policy compute replication
//! ```
//!
//! Times accept `ms` and `us` suffixes (a bare number means
//! milliseconds).

use std::collections::HashMap;

use ftdes_core::problem::Problem;
use ftdes_model::application::{Application, GraphSpec};
use ftdes_model::architecture::Architecture;
use ftdes_model::design::DesignConstraints;
use ftdes_model::fault::FaultModel;
use ftdes_model::graph::{Message, ProcessGraph};
use ftdes_model::ids::{GraphId, NodeId, ProcessId};
use ftdes_model::merge::MergedApplication;
use ftdes_model::policy::{MappingConstraint, PolicyConstraint};
use ftdes_model::time::Time;
use ftdes_model::wcet::WcetTable;
use ftdes_ttp::config::BusConfig;

use crate::error::{ErrorKind, ParseProblemError};

/// A fully parsed problem file, before graph merging.
#[derive(Debug, Clone)]
pub struct ProblemSpec {
    /// The architecture (node names in declaration order).
    pub arch: Architecture,
    /// The fault hypothesis.
    pub fault_model: FaultModel,
    /// The bus configuration.
    pub bus: BusConfig,
    /// The application graphs with periods/deadlines.
    pub application: Application,
    /// Per-graph WCET tables (indexed like the application's specs).
    pub wcet: Vec<WcetTable>,
    /// Constraints as `(graph index, local process, ...)`.
    pub fixed_mappings: Vec<(usize, ProcessId, NodeId)>,
    /// Policy constraints per `(graph index, local process)`.
    pub fixed_policies: Vec<(usize, ProcessId, PolicyConstraint)>,
}

impl ProblemSpec {
    /// Merges the application and assembles the [`Problem`] plus the
    /// merge bookkeeping (to map results back to source names).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseProblemError`] (line 0, kind
    /// [`ErrorKind::Structure`]) when the model is structurally
    /// invalid: cyclic graphs, deadline beyond period, or a process
    /// with no WCET entry on any node (unmappable).
    pub fn into_problem(self) -> Result<(Problem, MergedApplication), ParseProblemError> {
        let merged = MergedApplication::merge(&self.application)
            .map_err(|e| ParseProblemError::with_kind(0, ErrorKind::Structure, e.to_string()))?;
        let wcet = merged.remap_wcet(&self.wcet);
        // A process nobody can execute would only surface as a solver
        // failure (or worse) much later; reject it here, by name.
        let ids = (0..merged.process_count()).map(|i| ProcessId::new(i as u32));
        wcet.validate(ids, &self.arch).map_err(|e| {
            let message = match e {
                ftdes_model::error::ModelError::Unmappable { process } => format!(
                    "process {:?} has no WCET entry on any node",
                    merged.graph().process(process).name
                ),
                other => other.to_string(),
            };
            ParseProblemError::with_kind(0, ErrorKind::Structure, message)
        })?;
        let mut constraints = DesignConstraints::free(merged.process_count());
        for global in 0..merged.process_count() {
            let gid = ProcessId::new(global as u32);
            let origin = merged.origin(gid);
            for &(graph_index, local, node) in &self.fixed_mappings {
                if origin.graph_index == graph_index && origin.local == local {
                    constraints.set_mapping(gid, MappingConstraint::Fixed(node));
                }
            }
            for &(graph_index, local, policy) in &self.fixed_policies {
                if origin.graph_index == graph_index && origin.local == local {
                    constraints.set_policy(gid, policy);
                }
            }
        }
        let problem = Problem::new(
            merged.graph().clone(),
            self.arch,
            wcet,
            self.fault_model,
            self.bus,
        )
        .with_constraints(constraints);
        Ok((problem, merged))
    }
}

/// Parses a problem file.
///
/// # Errors
///
/// Returns a [`ParseProblemError`] pointing at the offending line.
pub fn parse_problem(input: &str) -> Result<ProblemSpec, ParseProblemError> {
    Parser::new(input).run()
}

struct GraphDraft {
    graph: ProcessGraph,
    period: Time,
    deadline: Time,
    names: HashMap<String, ProcessId>,
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    node_names: HashMap<String, NodeId>,
    arch: Option<Architecture>,
    fault_model: Option<FaultModel>,
    bus_slot_bytes: u32,
    bus_byte_time: Time,
    bus_order: Option<Vec<NodeId>>,
    graphs: Vec<GraphDraft>,
    wcet_lines: Vec<(usize, String, Option<String>, Time)>,
    fixed_mappings: Vec<(usize, String, String)>,
    fixed_policies: Vec<(usize, String, String)>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let lines = input
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let body = l.split('#').next().unwrap_or("").trim();
                (i + 1, body)
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            lines,
            node_names: HashMap::new(),
            arch: None,
            fault_model: None,
            bus_slot_bytes: 0,
            bus_byte_time: Time::ZERO,
            bus_order: None,
            graphs: Vec::new(),
            wcet_lines: Vec::new(),
            fixed_mappings: Vec::new(),
            fixed_policies: Vec::new(),
        }
    }

    fn run(mut self) -> Result<ProblemSpec, ParseProblemError> {
        let lines = std::mem::take(&mut self.lines);
        for (ln, line) in lines {
            let mut tokens = line.split_whitespace();
            let directive = tokens.next().expect("non-empty line");
            let rest: Vec<&str> = tokens.collect();
            match directive {
                "architecture" => self.architecture(ln, &rest)?,
                "fault_model" => self.fault_model(ln, &rest)?,
                "bus" => self.bus(ln, &rest)?,
                "graph" => self.graph(ln, &rest)?,
                "process" => self.process(ln, &rest)?,
                "edge" => self.edge(ln, &rest)?,
                "wcet" => self.wcet(ln, &rest)?,
                "fix_mapping" => self.fix_mapping(ln, &rest)?,
                "fix_policy" => self.fix_policy(ln, &rest)?,
                other => {
                    return Err(ParseProblemError::new(
                        ln,
                        format!("unknown directive {other:?}"),
                    ))
                }
            }
        }
        self.finish()
    }

    fn architecture(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        if rest.is_empty() {
            return Err(ParseProblemError::new(
                ln,
                "architecture needs at least one node name",
            ));
        }
        for (i, name) in rest.iter().enumerate() {
            if self
                .node_names
                .insert((*name).to_owned(), NodeId::new(i as u32))
                .is_some()
            {
                return Err(ParseProblemError::with_kind(
                    ln,
                    ErrorKind::Duplicate,
                    format!("duplicate node name {name:?}"),
                ));
            }
        }
        self.arch = Some(Architecture::with_names(rest.iter().copied()));
        Ok(())
    }

    fn fault_model(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        let mut k = None;
        let mut mu = None;
        let mut chi = None;
        for tok in rest {
            let (key, value) = split_kv(ln, tok)?;
            match key {
                "k" => {
                    k = Some(value.parse::<u32>().map_err(|_| {
                        ParseProblemError::with_kind(
                            ln,
                            ErrorKind::InvalidValue,
                            format!("invalid fault count {value:?}"),
                        )
                    })?);
                }
                "mu" => mu = Some(parse_time(ln, value)?),
                "chi" => chi = Some(parse_time(ln, value)?),
                _ => return Err(ParseProblemError::new(ln, format!("unknown key {key:?}"))),
            }
        }
        let k = k.ok_or_else(|| ParseProblemError::new(ln, "fault_model needs k="))?;
        let mu = mu.ok_or_else(|| ParseProblemError::new(ln, "fault_model needs mu="))?;
        // chi is optional: pre-checkpointing problem files stay valid.
        self.fault_model =
            Some(FaultModel::new(k, mu).with_checkpoint_overhead(chi.unwrap_or_default()));
        Ok(())
    }

    fn bus(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        for tok in rest {
            let (key, value) = split_kv(ln, tok)?;
            match key {
                "slot_bytes" => {
                    self.bus_slot_bytes = value.parse().map_err(|_| {
                        ParseProblemError::with_kind(
                            ln,
                            ErrorKind::InvalidValue,
                            format!("invalid slot_bytes {value:?}"),
                        )
                    })?;
                }
                "byte_time" => self.bus_byte_time = parse_time(ln, value)?,
                "order" => {
                    let order = value
                        .split(',')
                        .map(|name| self.node(ln, name))
                        .collect::<Result<Vec<_>, _>>()?;
                    self.bus_order = Some(order);
                }
                _ => return Err(ParseProblemError::new(ln, format!("unknown key {key:?}"))),
            }
        }
        Ok(())
    }

    fn graph(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        let mut period = None;
        let mut deadline = None;
        for tok in rest {
            let (key, value) = split_kv(ln, tok)?;
            match key {
                "period" => period = Some(parse_time(ln, value)?),
                "deadline" => deadline = Some(parse_time(ln, value)?),
                _ => return Err(ParseProblemError::new(ln, format!("unknown key {key:?}"))),
            }
        }
        let period = period.ok_or_else(|| ParseProblemError::new(ln, "graph needs period="))?;
        let deadline = deadline.unwrap_or(period);
        self.graphs.push(GraphDraft {
            graph: ProcessGraph::new(GraphId::new(self.graphs.len() as u32)),
            period,
            deadline,
            names: HashMap::new(),
        });
        Ok(())
    }

    fn current_graph(&mut self, ln: usize) -> Result<&mut GraphDraft, ParseProblemError> {
        self.graphs
            .last_mut()
            .ok_or_else(|| ParseProblemError::new(ln, "directive before any graph"))
    }

    fn process(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        let Some((name, opts)) = rest.split_first() else {
            return Err(ParseProblemError::new(ln, "process needs a name"));
        };
        let mut release = Time::ZERO;
        let mut deadline = None;
        for tok in opts {
            let (key, value) = split_kv(ln, tok)?;
            match key {
                "release" => release = parse_time(ln, value)?,
                "deadline" => deadline = Some(parse_time(ln, value)?),
                _ => return Err(ParseProblemError::new(ln, format!("unknown key {key:?}"))),
            }
        }
        let name = (*name).to_owned();
        let draft = self.current_graph(ln)?;
        if draft.names.contains_key(&name) {
            return Err(ParseProblemError::with_kind(
                ln,
                ErrorKind::Duplicate,
                format!("duplicate process {name:?}"),
            ));
        }
        let id = draft.graph.add_process();
        let p = draft.graph.process_mut(id);
        p.name.clone_from(&name);
        p.release = release;
        p.deadline = deadline;
        draft.names.insert(name, id);
        Ok(())
    }

    fn edge(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        let [from, to, opts @ ..] = rest else {
            return Err(ParseProblemError::new(ln, "edge needs <from> <to>"));
        };
        let mut bytes = 1u32;
        for tok in opts {
            let (key, value) = split_kv(ln, tok)?;
            match key {
                "bytes" => {
                    bytes = value.parse().map_err(|_| {
                        ParseProblemError::with_kind(
                            ln,
                            ErrorKind::InvalidValue,
                            format!("invalid bytes {value:?}"),
                        )
                    })?;
                }
                _ => return Err(ParseProblemError::new(ln, format!("unknown key {key:?}"))),
            }
        }
        let draft = self.current_graph(ln)?;
        let f = *draft.names.get(*from).ok_or_else(|| {
            ParseProblemError::with_kind(
                ln,
                ErrorKind::UnknownReference,
                format!("unknown process {from:?}"),
            )
        })?;
        let t = *draft.names.get(*to).ok_or_else(|| {
            ParseProblemError::with_kind(
                ln,
                ErrorKind::UnknownReference,
                format!("unknown process {to:?}"),
            )
        })?;
        draft
            .graph
            .add_edge(f, t, Message::new(bytes))
            .map_err(|e| ParseProblemError::with_kind(ln, ErrorKind::Structure, e.to_string()))?;
        Ok(())
    }

    fn wcet(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        let [process, node, time] = rest else {
            return Err(ParseProblemError::new(
                ln,
                "wcet needs <process> <node|*> <time>",
            ));
        };
        let t = parse_time(ln, time)?;
        let node = if *node == "*" {
            None
        } else {
            Some((*node).to_owned())
        };
        self.wcet_lines.push((ln, (*process).to_owned(), node, t));
        Ok(())
    }

    fn fix_mapping(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        let [process, node] = rest else {
            return Err(ParseProblemError::new(
                ln,
                "fix_mapping needs <process> <node>",
            ));
        };
        self.fixed_mappings
            .push((ln, (*process).to_owned(), (*node).to_owned()));
        Ok(())
    }

    fn fix_policy(&mut self, ln: usize, rest: &[&str]) -> Result<(), ParseProblemError> {
        let [process, policy] = rest else {
            return Err(ParseProblemError::new(
                ln,
                "fix_policy needs <process> <policy>",
            ));
        };
        self.fixed_policies
            .push((ln, (*process).to_owned(), (*policy).to_owned()));
        Ok(())
    }

    fn node(&self, ln: usize, name: &str) -> Result<NodeId, ParseProblemError> {
        self.node_names.get(name).copied().ok_or_else(|| {
            ParseProblemError::with_kind(
                ln,
                ErrorKind::UnknownReference,
                format!("unknown node {name:?}"),
            )
        })
    }

    /// Finds the unique graph declaring `name`.
    fn resolve(&self, ln: usize, name: &str) -> Result<(usize, ProcessId), ParseProblemError> {
        let mut found = None;
        for (gi, draft) in self.graphs.iter().enumerate() {
            if let Some(&p) = draft.names.get(name) {
                if found.is_some() {
                    return Err(ParseProblemError::with_kind(
                        ln,
                        ErrorKind::Duplicate,
                        format!("process name {name:?} is ambiguous across graphs"),
                    ));
                }
                found = Some((gi, p));
            }
        }
        found.ok_or_else(|| {
            ParseProblemError::with_kind(
                ln,
                ErrorKind::UnknownReference,
                format!("unknown process {name:?}"),
            )
        })
    }

    fn finish(self) -> Result<ProblemSpec, ParseProblemError> {
        let arch = self
            .arch
            .clone()
            .ok_or_else(|| ParseProblemError::new(0, "missing architecture directive"))?;
        let fault_model = self
            .fault_model
            .ok_or_else(|| ParseProblemError::new(0, "missing fault_model directive"))?;
        if self.graphs.is_empty() {
            return Err(ParseProblemError::new(0, "missing graph directive"));
        }

        // WCET tables per graph.
        let mut wcet: Vec<WcetTable> = self.graphs.iter().map(|_| WcetTable::new()).collect();
        for (ln, process, node, t) in &self.wcet_lines {
            let (gi, p) = self.resolve(*ln, process)?;
            match node {
                Some(name) => {
                    wcet[gi].set(p, self.node(*ln, name)?, *t);
                }
                None => {
                    for n in arch.node_ids() {
                        wcet[gi].set(p, n, *t);
                    }
                }
            }
        }

        // Bus configuration: default the slot size to the largest
        // message, the byte time to 2.5 ms (the paper's figures).
        let largest = self
            .graphs
            .iter()
            .flat_map(|d| d.graph.edges())
            .map(|e| e.message.size)
            .max()
            .unwrap_or(1)
            .max(1);
        let slot_bytes = if self.bus_slot_bytes == 0 {
            largest
        } else {
            self.bus_slot_bytes
        };
        let byte_time = if self.bus_byte_time.is_zero() {
            ftdes_ttp::DEFAULT_BYTE_TIME
        } else {
            self.bus_byte_time
        };
        let bus = match &self.bus_order {
            Some(order) => BusConfig::with_order(order.clone(), slot_bytes, byte_time),
            None => BusConfig::initial(&arch, slot_bytes, byte_time),
        }
        .map_err(|e| ParseProblemError::with_kind(0, ErrorKind::Structure, e.to_string()))?;

        // Constraints.
        let mut fixed_mappings = Vec::new();
        for (ln, process, node) in &self.fixed_mappings {
            let (gi, p) = self.resolve(*ln, process)?;
            fixed_mappings.push((gi, p, self.node(*ln, node)?));
        }
        let mut fixed_policies = Vec::new();
        for (ln, process, policy) in &self.fixed_policies {
            let (gi, p) = self.resolve(*ln, process)?;
            let c = match policy.as_str() {
                "reexecution" => PolicyConstraint::Reexecution,
                "replication" => PolicyConstraint::Replication,
                other => {
                    return Err(ParseProblemError::with_kind(
                        *ln,
                        ErrorKind::InvalidValue,
                        format!("unknown policy {other:?} (use reexecution or replication)"),
                    ))
                }
            };
            fixed_policies.push((gi, p, c));
        }

        let application: Application = self
            .graphs
            .into_iter()
            .map(|d| GraphSpec::new(d.graph, d.period, d.deadline))
            .collect();

        Ok(ProblemSpec {
            arch,
            fault_model,
            bus,
            application,
            wcet,
            fixed_mappings,
            fixed_policies,
        })
    }
}

fn split_kv(ln: usize, tok: &str) -> Result<(&str, &str), ParseProblemError> {
    tok.split_once('=')
        .ok_or_else(|| ParseProblemError::new(ln, format!("expected key=value, got {tok:?}")))
}

fn parse_time(ln: usize, value: &str) -> Result<Time, ParseProblemError> {
    let (digits, scale) = if let Some(v) = value.strip_suffix("us") {
        (v, 1u64)
    } else if let Some(v) = value.strip_suffix("ms") {
        (v, 1_000)
    } else {
        (value, 1_000)
    };
    // u64 parsing rejects negative and non-finite spellings ("-5ms",
    // "NaN", "inf") outright; the multiply is checked so a hostile
    // magnitude is an error, not a wrap-around.
    let n: u64 = digits.parse().map_err(|_| {
        ParseProblemError::with_kind(
            ln,
            ErrorKind::InvalidValue,
            format!("invalid time {value:?}"),
        )
    })?;
    let us = n.checked_mul(scale).ok_or_else(|| {
        ParseProblemError::with_kind(ln, ErrorKind::Overflow, format!("time {value:?} overflows"))
    })?;
    Ok(Time::from_us(us))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# a tiny two-node system
architecture N1 N2
fault_model k=1 mu=10ms
bus slot_bytes=4 byte_time=2500us

graph period=300ms deadline=260ms
  process src
  process mid release=5ms
  process dst deadline=250ms
  edge src mid bytes=2
  edge mid dst bytes=4

wcet src * 20ms
wcet mid N1 30ms
wcet mid N2 35ms
wcet dst * 25ms
fix_mapping src N1
fix_policy dst reexecution
";

    #[test]
    fn parses_complete_file() {
        let spec = parse_problem(SAMPLE).unwrap();
        assert_eq!(spec.arch.node_count(), 2);
        assert_eq!(spec.fault_model.k(), 1);
        assert_eq!(spec.application.process_count(), 3);
        assert_eq!(spec.bus.slot_length(), Time::from_ms(10));
        assert_eq!(spec.wcet[0].len(), 2 + 2 + 2);
        assert_eq!(spec.fixed_mappings.len(), 1);
        assert_eq!(spec.fixed_policies.len(), 1);
    }

    #[test]
    fn converts_to_problem() {
        let spec = parse_problem(SAMPLE).unwrap();
        let (problem, merged) = spec.into_problem().unwrap();
        assert_eq!(problem.process_count(), 3);
        assert_eq!(merged.hyperperiod(), Time::from_ms(300));
        // Constraint carried over to the merged process.
        let src = ProcessId::new(0);
        assert_eq!(
            problem.constraints().mapping(src),
            MappingConstraint::Fixed(NodeId::new(0))
        );
        // Individual deadline tightened the graph deadline.
        let dst = merged
            .graph()
            .processes()
            .iter()
            .find(|p| p.name == "dst")
            .unwrap();
        assert_eq!(dst.deadline, Some(Time::from_ms(250)));
        // Release times survive.
        let mid = merged
            .graph()
            .processes()
            .iter()
            .find(|p| p.name == "mid")
            .unwrap();
        assert_eq!(mid.release, Time::from_ms(5));
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = parse_problem("flux_capacitor on").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown directive"));
    }

    #[test]
    fn rejects_unknown_process_in_edge() {
        let text = "architecture A\nfault_model k=0 mu=0ms\ngraph period=10ms\nprocess x\nedge x y";
        let err = parse_problem(text).unwrap_err();
        assert_eq!(err.line, 5);
    }

    #[test]
    fn rejects_duplicate_node() {
        let err = parse_problem("architecture A A").unwrap_err();
        assert!(err.message.contains("duplicate node"));
    }

    #[test]
    fn default_bus_sizes_to_largest_message() {
        let text = "
architecture A B
fault_model k=0 mu=0ms
graph period=10ms
process x
process y
edge x y bytes=3
wcet x * 1ms
wcet y * 1ms
";
        let spec = parse_problem(text).unwrap();
        assert_eq!(spec.bus.slot_bytes(), 3);
        assert_eq!(spec.bus.byte_time(), ftdes_ttp::DEFAULT_BYTE_TIME);
    }

    #[test]
    fn time_suffixes() {
        assert_eq!(parse_time(1, "5ms").unwrap(), Time::from_ms(5));
        assert_eq!(parse_time(1, "1500us").unwrap(), Time::from_us(1500));
        assert_eq!(parse_time(1, "7").unwrap(), Time::from_ms(7));
        assert!(parse_time(1, "abc").is_err());
    }

    #[test]
    fn bus_order_override() {
        let text = "
architecture A B
fault_model k=0 mu=0ms
bus order=B,A
graph period=10ms
process x
wcet x * 1ms
";
        let spec = parse_problem(text).unwrap();
        assert_eq!(spec.bus.slot_of_node(NodeId::new(1)), 0, "B first");
    }

    #[test]
    fn multi_graph_resolution() {
        let text = "
architecture A
fault_model k=0 mu=0ms
graph period=20ms
process x
graph period=40ms
process y
wcet x * 1ms
wcet y * 2ms
";
        let spec = parse_problem(text).unwrap();
        let (problem, merged) = spec.into_problem().unwrap();
        assert_eq!(merged.hyperperiod(), Time::from_ms(40));
        // x activates twice, y once.
        assert_eq!(problem.process_count(), 3);
    }
}
