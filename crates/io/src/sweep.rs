//! Sweep-specification parsing for `ftdes sweep`.
//!
//! A sweep spec is a small line-oriented text file selecting one of
//! the predefined experiment sweeps (`ftdes_bench::jobs`) and
//! overriding its knobs. Grammar:
//!
//! ```text
//! # comment
//! sweep chi | repair          (required header, first content line)
//! <key> <value>               (one knob per line, any order)
//! chi_permille 10 20 50       (the one list-valued key; chi only)
//! ```
//!
//! Keys for `sweep chi`: `processes`, `nodes`, `faults`, `mu_ms`,
//! `seeds`, `chi_permille` (one or more values), `max_checkpoints`,
//! `max_iterations`, `faultsim_samples`.
//!
//! Keys for `sweep repair`: `processes`, `comm_processes`, `nodes`,
//! `faults`, `mu_ms`, `seeds`, `max_iterations`.
//!
//! Every key is optional — omitted knobs take the defaults of the
//! corresponding benchmark binaries (`cptable` / `repairbench`). All
//! values are unsigned integers.
//!
//! Malformed input comes back as a structured [`ParseSweepError`]
//! carrying the same [`ErrorKind`] taxonomy as the problem-file
//! parser — never a panic, never a silently defaulted knob:
//!
//! * unknown key / missing value / missing header — [`ErrorKind::Syntax`],
//! * a value that does not parse as an unsigned integer —
//!   [`ErrorKind::InvalidValue`],
//! * a value that parses but overflows `u64` — [`ErrorKind::Overflow`],
//! * the same key given twice — [`ErrorKind::Duplicate`],
//! * a key that exists but belongs to the *other* sweep kind —
//!   [`ErrorKind::UnknownReference`],
//! * a spec that parses line-by-line but fails
//!   [`SweepSpec::validate`] — [`ErrorKind::Structure`].
//!
//! # Examples
//!
//! ```
//! use ftdes_io::sweep::parse_sweep;
//!
//! let spec = parse_sweep(
//!     "# tiny χ sweep\n\
//!      sweep chi\n\
//!      processes 6\n\
//!      seeds 1\n\
//!      chi_permille 50 100\n",
//! )?;
//! assert_eq!(spec.name(), "chi");
//! assert!(!spec.jobs().is_empty());
//! # Ok::<(), ftdes_io::sweep::ParseSweepError>(())
//! ```

use std::error::Error;
use std::fmt;

use ftdes_bench::jobs::{ChiSweep, RepairSweep, SweepSpec};

use crate::error::ErrorKind;

/// A sweep-spec parse error with its line number and classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSweepError {
    /// 1-based line where the error occurred (0 = whole file).
    pub line: usize,
    /// Why the input was rejected.
    pub kind: ErrorKind,
    /// What went wrong.
    pub message: String,
}

impl ParseSweepError {
    fn new(line: usize, kind: ErrorKind, message: impl Into<String>) -> Self {
        ParseSweepError {
            line,
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseSweepError {}

/// The `cptable` defaults, as a parser baseline for `sweep chi`.
fn default_chi() -> ChiSweep {
    ChiSweep {
        processes: 24,
        nodes: 4,
        faults: 2,
        mu_ms: 5,
        seeds: 3,
        chi_permille: vec![10, 20, 50, 100, 250, 500],
        max_checkpoints: 4,
        max_iterations: 4_000,
        faultsim_samples: 100,
    }
}

/// The `repairbench` defaults, as a parser baseline for `sweep repair`.
fn default_repair() -> RepairSweep {
    RepairSweep {
        processes: 15,
        comm_processes: 12,
        nodes: 4,
        faults: 1,
        mu_ms: 5,
        seeds: 3,
        max_iterations: 10_000,
    }
}

const CHI_KEYS: &[&str] = &[
    "processes",
    "nodes",
    "faults",
    "mu_ms",
    "seeds",
    "chi_permille",
    "max_checkpoints",
    "max_iterations",
    "faultsim_samples",
];

const REPAIR_KEYS: &[&str] = &[
    "processes",
    "comm_processes",
    "nodes",
    "faults",
    "mu_ms",
    "seeds",
    "max_iterations",
];

/// Parses `text` as a sweep specification.
///
/// # Errors
///
/// A [`ParseSweepError`] with the offending line and an
/// [`ErrorKind`] classification (see the module docs for the
/// taxonomy).
pub fn parse_sweep(text: &str) -> Result<SweepSpec, ParseSweepError> {
    let mut lines = content_lines(text);
    let Some((header_no, header)) = lines.next() else {
        return Err(ParseSweepError::new(
            0,
            ErrorKind::Syntax,
            "empty spec: expected a `sweep chi|repair` header",
        ));
    };
    let mut header_tokens = header.split_whitespace();
    if header_tokens.next() != Some("sweep") {
        return Err(ParseSweepError::new(
            header_no,
            ErrorKind::Syntax,
            format!("expected `sweep chi|repair` header, found {header:?}"),
        ));
    }
    let kind = header_tokens.next().ok_or_else(|| {
        ParseSweepError::new(header_no, ErrorKind::Syntax, "`sweep` needs a kind")
    })?;
    if header_tokens.next().is_some() {
        return Err(ParseSweepError::new(
            header_no,
            ErrorKind::Syntax,
            "`sweep` takes exactly one kind",
        ));
    }
    let mut spec = match kind {
        "chi" => SweepSpec::Chi(default_chi()),
        "repair" => SweepSpec::Repair(default_repair()),
        other => {
            return Err(ParseSweepError::new(
                header_no,
                ErrorKind::InvalidValue,
                format!("unknown sweep kind {other:?} (chi | repair)"),
            ))
        }
    };

    let mut seen: Vec<String> = Vec::new();
    for (no, line) in lines {
        let mut tokens = line.split_whitespace();
        let Some(key) = tokens.next() else { continue };
        let values: Vec<&str> = tokens.collect();
        check_key(&spec, key, no)?;
        if seen.iter().any(|s| s == key) {
            return Err(ParseSweepError::new(
                no,
                ErrorKind::Duplicate,
                format!("key {key:?} given twice"),
            ));
        }
        seen.push(key.to_owned());
        apply_key(&mut spec, key, &values, no)?;
    }

    spec.validate()
        .map_err(|message| ParseSweepError::new(0, ErrorKind::Structure, message))?;
    Ok(spec)
}

/// Numbered non-blank, non-comment lines.
fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

/// Rejects keys the spec kind does not have, distinguishing "belongs
/// to the other sweep kind" from "no sweep has this".
fn check_key(spec: &SweepSpec, key: &str, no: usize) -> Result<(), ParseSweepError> {
    let (own, other, other_name) = match spec {
        SweepSpec::Chi(_) => (CHI_KEYS, REPAIR_KEYS, "repair"),
        SweepSpec::Repair(_) => (REPAIR_KEYS, CHI_KEYS, "chi"),
    };
    if own.contains(&key) {
        return Ok(());
    }
    if other.contains(&key) {
        return Err(ParseSweepError::new(
            no,
            ErrorKind::UnknownReference,
            format!("key {key:?} only applies to `sweep {other_name}`"),
        ));
    }
    Err(ParseSweepError::new(
        no,
        ErrorKind::Syntax,
        format!("unknown key {key:?} (expected one of: {})", own.join(", ")),
    ))
}

fn apply_key(
    spec: &mut SweepSpec,
    key: &str,
    values: &[&str],
    no: usize,
) -> Result<(), ParseSweepError> {
    // The one list-valued key.
    if key == "chi_permille" {
        if values.is_empty() {
            return Err(ParseSweepError::new(
                no,
                ErrorKind::Syntax,
                "chi_permille needs at least one value",
            ));
        }
        let rows = values
            .iter()
            .map(|v| parse_u64(v, key, no))
            .collect::<Result<Vec<u64>, ParseSweepError>>()?;
        if let SweepSpec::Chi(s) = spec {
            s.chi_permille = rows;
        }
        return Ok(());
    }
    let [value] = values else {
        return Err(ParseSweepError::new(
            no,
            ErrorKind::Syntax,
            format!("key {key:?} expects exactly one value"),
        ));
    };
    let v = parse_u64(value, key, no)?;
    let slot = match spec {
        SweepSpec::Chi(s) => match key {
            "processes" => &mut s.processes,
            "nodes" => &mut s.nodes,
            "faults" => &mut s.faults,
            "mu_ms" => &mut s.mu_ms,
            "seeds" => &mut s.seeds,
            "max_checkpoints" => &mut s.max_checkpoints,
            "max_iterations" => &mut s.max_iterations,
            "faultsim_samples" => &mut s.faultsim_samples,
            _ => unreachable!("check_key admits only known keys"),
        },
        SweepSpec::Repair(s) => match key {
            "processes" => &mut s.processes,
            "comm_processes" => &mut s.comm_processes,
            "nodes" => &mut s.nodes,
            "faults" => &mut s.faults,
            "mu_ms" => &mut s.mu_ms,
            "seeds" => &mut s.seeds,
            "max_iterations" => &mut s.max_iterations,
            _ => unreachable!("check_key admits only known keys"),
        },
    };
    *slot = v;
    Ok(())
}

/// `u64` with the Overflow/InvalidValue distinction: a pure digit
/// string that fails to parse can only have overflowed.
fn parse_u64(token: &str, key: &str, no: usize) -> Result<u64, ParseSweepError> {
    token.parse::<u64>().map_err(|_| {
        if !token.is_empty() && token.bytes().all(|b| b.is_ascii_digit()) {
            ParseSweepError::new(
                no,
                ErrorKind::Overflow,
                format!("{key}: value {token:?} overflows u64"),
            )
        } else {
            ParseSweepError::new(
                no,
                ErrorKind::InvalidValue,
                format!("{key}: expected an unsigned integer, found {token:?}"),
            )
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fill_omitted_keys() {
        let spec = parse_sweep("sweep chi\n").expect("bare header parses");
        assert_eq!(spec, SweepSpec::Chi(default_chi()));
        let spec = parse_sweep("sweep repair\nseeds 1\n").expect("override parses");
        let SweepSpec::Repair(s) = spec else {
            panic!("wrong kind")
        };
        assert_eq!(s.seeds, 1);
        assert_eq!(s.processes, default_repair().processes);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let spec = parse_sweep("\n# a χ sweep\n\nsweep chi\n  # indented comment\nseeds 2\n")
            .expect("parses");
        let SweepSpec::Chi(s) = spec else {
            panic!("wrong kind")
        };
        assert_eq!(s.seeds, 2);
    }

    #[test]
    fn chi_permille_takes_a_list() {
        let spec = parse_sweep("sweep chi\nchi_permille 10 250 500\n").expect("parses");
        let SweepSpec::Chi(s) = spec else {
            panic!("wrong kind")
        };
        assert_eq!(s.chi_permille, vec![10, 250, 500]);
    }

    #[test]
    fn errors_carry_lines_and_kinds() {
        let err = parse_sweep("").expect_err("empty rejected");
        assert_eq!((err.line, err.kind), (0, ErrorKind::Syntax));
        let err = parse_sweep("sweep chi\nseeds 1\nseeds 2\n").expect_err("dup rejected");
        assert_eq!((err.line, err.kind), (3, ErrorKind::Duplicate));
        let err = parse_sweep("sweep repair\nfaultsim_samples 9\n").expect_err("cross-kind");
        assert_eq!((err.line, err.kind), (2, ErrorKind::UnknownReference));
    }
}
