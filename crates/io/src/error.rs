//! Error type for problem-file parsing.

use std::error::Error;
use std::fmt;

/// A parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProblemError {
    /// 1-based line where the error occurred (0 = end of input).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseProblemError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseProblemError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProblemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_line_numbers() {
        let e = ParseProblemError::new(7, "unknown directive");
        assert_eq!(e.to_string(), "line 7: unknown directive");
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParseProblemError>();
    }
}
