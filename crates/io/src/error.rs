//! Error type for problem-file parsing.

use std::error::Error;
use std::fmt;

/// Coarse classification of a parse failure, so callers (and the
/// malformed-input test matrix) can assert on *why* a file was
/// rejected without string-matching the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Malformed line shape: unknown directive/key, missing tokens.
    Syntax,
    /// A value that does not parse or is out of range (bad time,
    /// negative/non-finite number where an unsigned value is needed).
    InvalidValue,
    /// A numeric value that parses but overflows its representation.
    Overflow,
    /// A node or process declared twice.
    Duplicate,
    /// A reference to a node or process that was never declared.
    UnknownReference,
    /// The file parses line-by-line but the assembled model is
    /// invalid (cyclic graph, unmappable process, bad bus order).
    Structure,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::Syntax => "syntax",
            ErrorKind::InvalidValue => "invalid value",
            ErrorKind::Overflow => "overflow",
            ErrorKind::Duplicate => "duplicate",
            ErrorKind::UnknownReference => "unknown reference",
            ErrorKind::Structure => "structure",
        })
    }
}

/// A parse error with its line number and classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProblemError {
    /// 1-based line where the error occurred (0 = end of input).
    pub line: usize,
    /// Why the input was rejected.
    pub kind: ErrorKind,
    /// What went wrong.
    pub message: String,
}

impl ParseProblemError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseProblemError {
            line,
            kind: ErrorKind::Syntax,
            message: message.into(),
        }
    }

    pub(crate) fn with_kind(line: usize, kind: ErrorKind, message: impl Into<String>) -> Self {
        ParseProblemError {
            line,
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProblemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_line_numbers() {
        let e = ParseProblemError::new(7, "unknown directive");
        assert_eq!(e.to_string(), "line 7: unknown directive");
        assert_eq!(e.kind, ErrorKind::Syntax);
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParseProblemError>();
    }

    #[test]
    fn kinds_are_displayable() {
        assert_eq!(ErrorKind::Overflow.to_string(), "overflow");
        assert_eq!(
            ParseProblemError::with_kind(2, ErrorKind::Duplicate, "dup").kind,
            ErrorKind::Duplicate
        );
    }
}
