//! # ftdes-io
//!
//! Problem-file parsing and result reporting for the `ftdes` tool
//! suite:
//!
//! * [`mod@format`] — a TGFF-style text format describing an
//!   architecture, a fault model, periodic process graphs, WCETs and
//!   designer constraints (see the module docs for the grammar),
//! * [`mod@delta`] — `--delta` spec parsing for the `repair` command,
//! * [`report`] — stable JSON serialization of optimization results,
//! * [`mod@sweep`] — sweep-spec parsing for the crash-safe experiment
//!   orchestrator (`ftdes-serve` + `ftdes-bench::jobs`),
//! * the `ftdes` binary — `solve` / `inject` / `repair` / `info`
//!   commands over problem files, plus `sweep run|resume|status`
//!   over sweep stores.
//!
//! # Examples
//!
//! ```
//! use ftdes_io::format::parse_problem;
//!
//! let spec = parse_problem(r"
//! architecture A B
//! fault_model k=1 mu=5ms
//! graph period=100ms
//!   process x
//!   process y
//!   edge x y bytes=2
//! wcet x * 10ms
//! wcet y * 20ms
//! ")?;
//! let (problem, _merged) = spec.into_problem()?;
//! assert_eq!(problem.process_count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod delta;
pub mod error;
pub mod format;
pub mod report;
pub mod sweep;
pub mod write;

pub use delta::{
    parse_delta, parse_delta_op, parse_delta_op_with, parse_delta_with, DeltaNames, ParseDeltaError,
};
pub use error::{ErrorKind, ParseProblemError};
pub use format::{parse_problem, ProblemSpec};
pub use report::{solution_report, to_json, SolutionReport};
pub use sweep::{parse_sweep, ParseSweepError};
pub use write::write_problem;
