//! Parsing of `--delta` specs into a [`ProblemDelta`].
//!
//! The `ftdes repair` command takes one or more `--delta <spec>`
//! flags; each spec is one elementary [`DeltaOp`], colon-separated:
//!
//! ```text
//! kill-node:<node>                     kill-node:N1
//! degrade-node:<node>:<percent>        degrade-node:N1:150
//! rescale-wcet:<percent>               rescale-wcet:120
//! rescale-wcet:<process>:<percent>     rescale-wcet:P3:120
//! remove-process:<process>             remove-process:P2
//! add-process:<name>:<node>=<time>[,<node>=<time>...]
//!                                      add-process:watchdog:N0=10ms,N2=12ms
//! ```
//!
//! Node references are `N<i>` or a bare index; process references are
//! `P<i>` or a bare index (post-parse ids, i.e. declaration order in
//! the problem file). When the caller knows the problem — the CLI
//! does — [`parse_delta_with`] additionally resolves the *declared*
//! names (`kill-node:TCM`, `remove-process:sense`) via
//! [`DeltaNames`]. Times take a `us`, `ms` or `s` suffix.
//!
//! # Examples
//!
//! ```
//! use ftdes_io::delta::parse_delta;
//!
//! let delta = parse_delta(&["kill-node:N1".into(), "rescale-wcet:120".into()])?;
//! assert_eq!(delta.ops().len(), 2);
//! # Ok::<(), ftdes_io::delta::ParseDeltaError>(())
//! ```

use std::error::Error;
use std::fmt;

use ftdes_model::delta::{DeltaOp, NewProcess, ProblemDelta};
use ftdes_model::ids::{NodeId, ProcessId};
use ftdes_model::time::Time;

/// A malformed `--delta` spec, with the spec that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeltaError {
    /// The offending spec, verbatim.
    pub spec: String,
    /// What went wrong.
    pub message: String,
}

impl ParseDeltaError {
    fn new(spec: &str, message: impl Into<String>) -> Self {
        ParseDeltaError {
            spec: spec.to_owned(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseDeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "--delta {:?}: {}", self.spec, self.message)
    }
}

impl Error for ParseDeltaError {}

/// Name→id context for resolving references in delta specs.
///
/// The bare parser accepts `N<i>` / `P<i>` / bare indices; a caller
/// that knows the problem can pass the declared node and process
/// names so specs read the way the problem file does
/// (`kill-node:TCM`, `remove-process:sense`). Names are tried first,
/// so a node literally named `N1` resolves by name, not by index.
#[derive(Debug, Clone, Default)]
pub struct DeltaNames {
    /// Node names, indexed by [`NodeId`] (declaration order).
    pub nodes: Vec<String>,
    /// Process names, indexed by [`ProcessId`] (post-merge order).
    pub processes: Vec<String>,
}

/// Parses one `--delta` spec into its [`DeltaOp`].
///
/// # Errors
///
/// [`ParseDeltaError`] naming the offending spec on any syntax
/// problem (unknown op, malformed reference, zero percent, ...).
pub fn parse_delta_op(spec: &str) -> Result<DeltaOp, ParseDeltaError> {
    parse_delta_op_with(spec, &DeltaNames::default())
}

/// [`parse_delta_op`] with declared-name resolution (see
/// [`DeltaNames`]).
///
/// # Errors
///
/// [`ParseDeltaError`] naming the offending spec.
pub fn parse_delta_op_with(spec: &str, names: &DeltaNames) -> Result<DeltaOp, ParseDeltaError> {
    let (op, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match op {
        "kill-node" => Ok(DeltaOp::KillNode {
            node: parse_node(spec, rest, names)?,
        }),
        "degrade-node" => {
            let (node, percent) = rest.split_once(':').ok_or_else(|| {
                ParseDeltaError::new(spec, "expected degrade-node:<node>:<percent>")
            })?;
            Ok(DeltaOp::DegradeNode {
                node: parse_node(spec, node, names)?,
                percent: parse_percent(spec, percent)?,
            })
        }
        "rescale-wcet" => match rest.split_once(':') {
            Some((process, percent)) => Ok(DeltaOp::RescaleWcet {
                process: Some(parse_process(spec, process, names)?),
                percent: parse_percent(spec, percent)?,
            }),
            None => Ok(DeltaOp::RescaleWcet {
                process: None,
                percent: parse_percent(spec, rest)?,
            }),
        },
        "remove-process" => Ok(DeltaOp::RemoveProcess {
            process: parse_process(spec, rest, names)?,
        }),
        "add-process" => {
            let (name, entries) = rest.split_once(':').ok_or_else(|| {
                ParseDeltaError::new(spec, "expected add-process:<name>:<node>=<time>,...")
            })?;
            if name.is_empty() {
                return Err(ParseDeltaError::new(spec, "process name is empty"));
            }
            let mut wcet = Vec::new();
            for entry in entries.split(',') {
                let (node, time) = entry.split_once('=').ok_or_else(|| {
                    ParseDeltaError::new(spec, format!("expected <node>=<time>, got {entry:?}"))
                })?;
                wcet.push((parse_node(spec, node, names)?, parse_time(spec, time)?));
            }
            if wcet.is_empty() {
                return Err(ParseDeltaError::new(spec, "add-process needs a WCET entry"));
            }
            Ok(DeltaOp::AddProcess(Box::new(NewProcess::named(name, wcet))))
        }
        other => Err(ParseDeltaError::new(
            spec,
            format!(
                "unknown delta op {other:?} (kill-node | degrade-node | rescale-wcet | \
                 remove-process | add-process)"
            ),
        )),
    }
}

/// Parses a sequence of `--delta` specs into one composite
/// [`ProblemDelta`], applied in order.
///
/// # Errors
///
/// The first [`ParseDeltaError`] among the specs.
pub fn parse_delta(specs: &[String]) -> Result<ProblemDelta, ParseDeltaError> {
    parse_delta_with(specs, &DeltaNames::default())
}

/// [`parse_delta`] with declared-name resolution (see [`DeltaNames`]).
///
/// # Errors
///
/// The first [`ParseDeltaError`] among the specs.
pub fn parse_delta_with(
    specs: &[String],
    names: &DeltaNames,
) -> Result<ProblemDelta, ParseDeltaError> {
    let mut delta = ProblemDelta::new();
    for spec in specs {
        delta.push(parse_delta_op_with(spec, names)?);
    }
    Ok(delta)
}

fn parse_node(spec: &str, text: &str, names: &DeltaNames) -> Result<NodeId, ParseDeltaError> {
    if let Some(i) = names.nodes.iter().position(|n| n == text) {
        return Ok(NodeId::new(i as u32));
    }
    let digits = text.strip_prefix(['N', 'n']).unwrap_or(text);
    digits
        .parse::<u32>()
        .map(NodeId::new)
        .map_err(|_| ParseDeltaError::new(spec, format!("invalid node reference {text:?}")))
}

fn parse_process(spec: &str, text: &str, names: &DeltaNames) -> Result<ProcessId, ParseDeltaError> {
    if let Some(i) = names.processes.iter().position(|p| p == text) {
        return Ok(ProcessId::new(i as u32));
    }
    let digits = text.strip_prefix(['P', 'p']).unwrap_or(text);
    digits
        .parse::<u32>()
        .map(ProcessId::new)
        .map_err(|_| ParseDeltaError::new(spec, format!("invalid process reference {text:?}")))
}

fn parse_percent(spec: &str, text: &str) -> Result<u32, ParseDeltaError> {
    let percent: u32 = text
        .strip_suffix('%')
        .unwrap_or(text)
        .parse()
        .map_err(|_| ParseDeltaError::new(spec, format!("invalid percent {text:?}")))?;
    if percent == 0 {
        return Err(ParseDeltaError::new(spec, "percent must be non-zero"));
    }
    Ok(percent)
}

fn parse_time(spec: &str, text: &str) -> Result<Time, ParseDeltaError> {
    let err = || {
        ParseDeltaError::new(
            spec,
            format!("invalid time {text:?} (e.g. 10ms, 250us, 1s)"),
        )
    };
    let (digits, scale) = if let Some(d) = text.strip_suffix("us") {
        (d, 1u64)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        return Err(err());
    };
    let n: u64 = digits.parse().map_err(|_| err())?;
    let us = n.checked_mul(scale).ok_or_else(err)?;
    if us == 0 {
        return Err(ParseDeltaError::new(spec, "time must be non-zero"));
    }
    Ok(Time::from_us(us))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op_form() {
        assert_eq!(
            parse_delta_op("kill-node:N1").unwrap(),
            DeltaOp::KillNode {
                node: NodeId::new(1)
            }
        );
        assert_eq!(
            parse_delta_op("degrade-node:2:150%").unwrap(),
            DeltaOp::DegradeNode {
                node: NodeId::new(2),
                percent: 150
            }
        );
        assert_eq!(
            parse_delta_op("rescale-wcet:120").unwrap(),
            DeltaOp::RescaleWcet {
                process: None,
                percent: 120
            }
        );
        assert_eq!(
            parse_delta_op("rescale-wcet:P3:80").unwrap(),
            DeltaOp::RescaleWcet {
                process: Some(ProcessId::new(3)),
                percent: 80
            }
        );
        assert_eq!(
            parse_delta_op("remove-process:P2").unwrap(),
            DeltaOp::RemoveProcess {
                process: ProcessId::new(2)
            }
        );
        let DeltaOp::AddProcess(spec) =
            parse_delta_op("add-process:watchdog:N0=10ms,N2=250us").unwrap()
        else {
            panic!("expected AddProcess");
        };
        assert_eq!(spec.name, "watchdog");
        assert_eq!(
            spec.wcet,
            vec![
                (NodeId::new(0), Time::from_ms(10)),
                (NodeId::new(2), Time::from_us(250)),
            ]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "explode",
            "kill-node:",
            "kill-node:Nx",
            "degrade-node:N1",
            "degrade-node:N1:0",
            "rescale-wcet:",
            "rescale-wcet:P1:pct",
            "remove-process:",
            "add-process:w",
            "add-process::N0=1ms",
            "add-process:w:N0",
            "add-process:w:N0=10",
            "add-process:w:N0=0ms",
        ] {
            let err = parse_delta_op(bad).unwrap_err();
            assert_eq!(err.spec, bad);
            assert!(err.to_string().contains("--delta"), "{err}");
        }
    }

    #[test]
    fn resolves_declared_names_before_index_forms() {
        let names = DeltaNames {
            nodes: vec!["ETM".into(), "ABS".into(), "N0".into()],
            processes: vec!["sense".into(), "act".into()],
        };
        assert_eq!(
            parse_delta_op_with("kill-node:TCM", &names)
                .unwrap_err()
                .message,
            "invalid node reference \"TCM\""
        );
        assert_eq!(
            parse_delta_op_with("kill-node:ABS", &names).unwrap(),
            DeltaOp::KillNode {
                node: NodeId::new(1)
            }
        );
        // A node literally named "N0" wins over the index reading.
        assert_eq!(
            parse_delta_op_with("kill-node:N0", &names).unwrap(),
            DeltaOp::KillNode {
                node: NodeId::new(2)
            }
        );
        assert_eq!(
            parse_delta_op_with("remove-process:act", &names).unwrap(),
            DeltaOp::RemoveProcess {
                process: ProcessId::new(1)
            }
        );
        let delta = parse_delta_with(
            &[
                "degrade-node:ETM:150".into(),
                "rescale-wcet:sense:120".into(),
            ],
            &names,
        )
        .unwrap();
        assert_eq!(
            delta.ops(),
            &[
                DeltaOp::DegradeNode {
                    node: NodeId::new(0),
                    percent: 150
                },
                DeltaOp::RescaleWcet {
                    process: Some(ProcessId::new(0)),
                    percent: 120
                },
            ]
        );
        let DeltaOp::AddProcess(spec) =
            parse_delta_op_with("add-process:watchdog:ABS=10ms", &names).unwrap()
        else {
            panic!("expected AddProcess");
        };
        assert_eq!(spec.wcet, vec![(NodeId::new(1), Time::from_ms(10))]);
    }

    #[test]
    fn composes_specs_in_order() {
        let delta =
            parse_delta(&["kill-node:N0".to_owned(), "rescale-wcet:110".to_owned()]).unwrap();
        assert_eq!(delta.ops().len(), 2);
        assert_eq!(delta.to_string(), "kill-node N0 + rescale-wcet to 110%");
    }
}
