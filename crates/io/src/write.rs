//! Writing problem files — the inverse of [`crate::format`].
//!
//! Enables round-tripping generated workloads to disk so experiments
//! are archivable and reproducible outside this process.

use std::fmt::Write as _;

use ftdes_model::policy::PolicyConstraint;
use ftdes_model::time::Time;

use crate::format::ProblemSpec;

/// Renders `spec` in the problem-file format parsed by
/// [`crate::format::parse_problem`].
///
/// Process names are taken from the graphs; they must be unique
/// across graphs for the file to parse back (the parser resolves
/// `wcet` lines by name).
#[must_use]
pub fn write_problem(spec: &ProblemSpec) -> String {
    let mut out = String::new();
    let node_name = |i: usize| spec.arch.nodes()[i].name.clone();

    let names: Vec<String> = spec.arch.nodes().iter().map(|n| n.name.clone()).collect();
    let _ = writeln!(out, "architecture {}", names.join(" "));
    if spec.fault_model.chi().is_zero() {
        let _ = writeln!(
            out,
            "fault_model k={} mu={}",
            spec.fault_model.k(),
            fmt_time(spec.fault_model.mu())
        );
    } else {
        let _ = writeln!(
            out,
            "fault_model k={} mu={} chi={}",
            spec.fault_model.k(),
            fmt_time(spec.fault_model.mu()),
            fmt_time(spec.fault_model.chi())
        );
    }
    let order: Vec<String> = spec
        .bus
        .slot_order()
        .iter()
        .map(|n| node_name(n.index()))
        .collect();
    let _ = writeln!(
        out,
        "bus slot_bytes={} byte_time={} order={}",
        spec.bus.slot_bytes(),
        fmt_time(spec.bus.byte_time()),
        order.join(",")
    );

    for (gi, g) in spec.application.specs().iter().enumerate() {
        let _ = writeln!(
            out,
            "\ngraph period={} deadline={}",
            fmt_time(g.period),
            fmt_time(g.deadline)
        );
        for p in g.graph.processes() {
            let _ = write!(out, "  process {}", p.name);
            if !p.release.is_zero() {
                let _ = write!(out, " release={}", fmt_time(p.release));
            }
            if let Some(d) = p.deadline {
                let _ = write!(out, " deadline={}", fmt_time(d));
            }
            let _ = writeln!(out);
        }
        for e in g.graph.edges() {
            let _ = writeln!(
                out,
                "  edge {} {} bytes={}",
                g.graph.process(e.from).name,
                g.graph.process(e.to).name,
                e.message.size
            );
        }
        let _ = writeln!(out);
        for p in g.graph.processes() {
            for (node, c) in spec.wcet[gi].eligible_nodes(p.id) {
                let _ = writeln!(
                    out,
                    "wcet {} {} {}",
                    p.name,
                    node_name(node.index()),
                    fmt_time(c)
                );
            }
        }
    }

    for &(gi, p, node) in &spec.fixed_mappings {
        let name = &spec.application.specs()[gi].graph.process(p).name;
        let _ = writeln!(out, "fix_mapping {} {}", name, node_name(node.index()));
    }
    for &(gi, p, c) in &spec.fixed_policies {
        let name = &spec.application.specs()[gi].graph.process(p).name;
        let policy = match c {
            PolicyConstraint::Reexecution => "reexecution",
            PolicyConstraint::Replication => "replication",
            PolicyConstraint::Free => continue,
        };
        let _ = writeln!(out, "fix_policy {name} {policy}");
    }
    out
}

fn fmt_time(t: Time) -> String {
    if t.as_us().is_multiple_of(1_000) {
        format!("{}ms", t.as_ms())
    } else {
        format!("{}us", t.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_problem;

    const SAMPLE: &str = r"
architecture ECU1 ECU2
fault_model k=2 mu=1500us
bus slot_bytes=4 byte_time=2500us order=ECU2,ECU1

graph period=100ms deadline=90ms
  process a release=1ms
  process b deadline=80ms
  edge a b bytes=3

wcet a ECU1 10ms
wcet a ECU2 12ms
wcet b ECU1 20ms
fix_mapping a ECU1
fix_policy b reexecution
";

    #[test]
    fn round_trip_preserves_structure() {
        let spec = parse_problem(SAMPLE).unwrap();
        let written = write_problem(&spec);
        let reparsed = parse_problem(&written)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{written}"));

        assert_eq!(reparsed.arch, spec.arch);
        assert_eq!(reparsed.fault_model, spec.fault_model);
        assert_eq!(reparsed.bus, spec.bus);
        assert_eq!(reparsed.wcet, spec.wcet);
        assert_eq!(reparsed.fixed_mappings.len(), 1);
        assert_eq!(reparsed.fixed_policies.len(), 1);
        // Graph structure identical (names, releases, deadlines, edges).
        let a = &spec.application.specs()[0].graph;
        let b = &reparsed.application.specs()[0].graph;
        assert_eq!(a, b);
    }

    #[test]
    fn written_problems_solve() {
        let spec = parse_problem(SAMPLE).unwrap();
        let written = write_problem(&spec);
        let (problem, _) = parse_problem(&written).unwrap().into_problem().unwrap();
        assert_eq!(problem.process_count(), 2);
        let outcome = ftdes_core::optimize(
            &problem,
            ftdes_core::Strategy::Mxr,
            &ftdes_core::SearchConfig::default(),
        )
        .unwrap();
        assert!(outcome.length() > ftdes_model::time::Time::ZERO);
    }
}
