//! JSON reports of optimization results.
//!
//! A flat, stable serialization of an [`Outcome`] for toolchains that
//! post-process the synthesis result (visualisation, code
//! generation, CI diffing).

use serde::Serialize;

use ftdes_core::Outcome;
use ftdes_model::graph::ProcessGraph;
use ftdes_model::ids::NodeId;

/// The policy of one process in the report.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyReport {
    /// Replication level `r`.
    pub replicas: u32,
    /// Re-execution budget `e`.
    pub reexecutions: u32,
    /// Checkpoint count `n` of the primary (1 = no checkpointing).
    pub checkpoints: u32,
    /// Node names, primary first.
    pub nodes: Vec<String>,
}

/// One process of the solution.
#[derive(Debug, Clone, Serialize)]
pub struct ProcessReport {
    /// Process name from the problem file.
    pub name: String,
    /// Assigned fault-tolerance policy and mapping.
    pub policy: PolicyReport,
    /// Guaranteed worst-case completion in microseconds.
    pub completion_us: u64,
}

/// One schedule-table entry.
#[derive(Debug, Clone, Serialize)]
pub struct SlotReport {
    /// Process name.
    pub process: String,
    /// Replica number (0 = primary).
    pub replica: u32,
    /// Fault-free start (µs).
    pub start_us: u64,
    /// Fault-free finish (µs).
    pub finish_us: u64,
    /// Worst-case finish (µs).
    pub worst_finish_us: u64,
}

/// A node's schedule table.
#[derive(Debug, Clone, Serialize)]
pub struct NodeTableReport {
    /// Node name.
    pub node: String,
    /// Entries in execution order.
    pub entries: Vec<SlotReport>,
}

/// One MEDL frame.
#[derive(Debug, Clone, Serialize)]
pub struct FrameReport {
    /// TDMA round.
    pub round: u64,
    /// Slot within the round.
    pub slot: usize,
    /// Sending node name.
    pub sender: String,
    /// Frame start (µs).
    pub start_us: u64,
    /// Frame end / message arrival (µs).
    pub end_us: u64,
    /// Messages packed as `edge/replica` labels.
    pub messages: Vec<String>,
}

/// Search statistics.
#[derive(Debug, Clone, Serialize)]
pub struct StatsReport {
    /// `ListScheduling` invocations.
    pub evaluations: usize,
    /// Candidate evaluations served from the memoization cache.
    pub cache_hits: usize,
    /// Tabu iterations.
    pub tabu_iterations: usize,
    /// Wall-clock milliseconds.
    pub elapsed_ms: u128,
}

/// The complete solution report.
#[derive(Debug, Clone, Serialize)]
pub struct SolutionReport {
    /// Strategy name (`MXR`, ...).
    pub strategy: String,
    /// All deadlines guaranteed?
    pub schedulable: bool,
    /// Worst-case schedule length δ (µs).
    pub length_us: u64,
    /// Largest deadline overrun (µs, 0 when schedulable).
    pub violation_us: u64,
    /// Per-process decisions.
    pub processes: Vec<ProcessReport>,
    /// Per-node schedule tables.
    pub node_tables: Vec<NodeTableReport>,
    /// The bus MEDL.
    pub medl: Vec<FrameReport>,
    /// Search statistics.
    pub stats: StatsReport,
}

/// Builds the report for `outcome` (names resolved through `graph`
/// and `node_names`).
#[must_use]
pub fn solution_report(
    strategy: &str,
    graph: &ProcessGraph,
    node_names: &[String],
    outcome: &Outcome,
) -> SolutionReport {
    let schedule = &outcome.schedule;
    let node_name = |n: NodeId| {
        node_names
            .get(n.index())
            .cloned()
            .unwrap_or_else(|| n.to_string())
    };

    let processes = outcome
        .design
        .iter()
        .map(|(p, d)| ProcessReport {
            name: graph.process(p).name.clone(),
            policy: PolicyReport {
                replicas: d.policy.replicas(),
                reexecutions: d.policy.reexecutions(),
                checkpoints: d.policy.checkpoints(),
                nodes: d.mapping.iter().map(|&n| node_name(n)).collect(),
            },
            completion_us: schedule.completion(p).as_us(),
        })
        .collect();

    let node_tables = (0..schedule.node_count())
        .map(|n| {
            let node = NodeId::new(n as u32);
            NodeTableReport {
                node: node_name(node),
                entries: schedule
                    .node_table(node)
                    .iter()
                    .map(|&iid| {
                        let s = schedule.slot(iid);
                        SlotReport {
                            process: graph.process(s.instance.process).name.clone(),
                            replica: s.instance.replica,
                            start_us: s.start.as_us(),
                            finish_us: s.finish.as_us(),
                            worst_finish_us: s.worst_finish.as_us(),
                        }
                    })
                    .collect(),
            }
        })
        .collect();

    let medl = schedule
        .bus()
        .medl()
        .into_iter()
        .map(|e| FrameReport {
            round: e.round,
            slot: e.slot,
            sender: node_name(e.sender),
            start_us: e.start.as_us(),
            end_us: e.end.as_us(),
            messages: e
                .messages
                .iter()
                .map(|t| format!("{}/{}", t.edge, t.sender_replica + 1))
                .collect(),
        })
        .collect();

    SolutionReport {
        strategy: strategy.to_owned(),
        schedulable: outcome.is_schedulable(),
        length_us: outcome.length().as_us(),
        violation_us: outcome.schedule.cost().violation.as_us(),
        processes,
        node_tables,
        medl,
        stats: StatsReport {
            evaluations: outcome.stats.evaluations,
            cache_hits: outcome.stats.cache_hits,
            tabu_iterations: outcome.stats.tabu_iterations,
            elapsed_ms: outcome.stats.elapsed.as_millis(),
        },
    }
}

/// Serializes a report to pretty JSON.
///
/// # Panics
///
/// Never panics: the report contains no non-string map keys.
#[must_use]
pub fn to_json(report: &SolutionReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdes_core::{optimize, Problem, SearchConfig, Strategy};
    use ftdes_model::architecture::Architecture;
    use ftdes_model::fault::FaultModel;
    use ftdes_model::graph::Message;
    use ftdes_model::time::Time;
    use ftdes_model::wcet::WcetTable;
    use ftdes_ttp::BusConfig;

    #[test]
    fn report_round_trips_to_json() {
        let mut g = ProcessGraph::new(0.into());
        let a = g.add_process();
        let b = g.add_process();
        g.process_mut(a).name = "acq".into();
        g.process_mut(b).name = "ctl".into();
        g.add_edge(a, b, Message::new(2)).unwrap();
        let wcet: WcetTable = [
            (a, NodeId::new(0), Time::from_ms(10)),
            (a, NodeId::new(1), Time::from_ms(12)),
            (b, NodeId::new(0), Time::from_ms(20)),
            (b, NodeId::new(1), Time::from_ms(22)),
        ]
        .into_iter()
        .collect();
        let arch = Architecture::with_names(["ECU1", "ECU2"]);
        let fm = FaultModel::new(1, Time::from_ms(5));
        let bus = BusConfig::initial(&arch, 2, Time::from_ms(1)).unwrap();
        let problem = Problem::new(g.clone(), arch, wcet, fm, bus);
        let outcome = optimize(&problem, Strategy::Mxr, &SearchConfig::default()).unwrap();

        let names = vec!["ECU1".to_owned(), "ECU2".to_owned()];
        let report = solution_report("MXR", &g, &names, &outcome);
        assert_eq!(report.strategy, "MXR");
        assert_eq!(report.processes.len(), 2);
        assert_eq!(report.node_tables.len(), 2);
        let json = to_json(&report);
        assert!(json.contains("\"acq\""));
        assert!(json.contains("\"ECU1\""));
        // The JSON parses back as a generic value.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["strategy"], "MXR");
        assert!(value["length_us"].as_u64().unwrap() > 0);
    }
}
