//! End-to-end tests of the `ftdes` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn write_problem(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ftdes-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write problem");
    path
}

const PIPELINE: &str = r"
architecture A B
fault_model k=1 mu=5ms
graph period=500ms deadline=400ms
  process x
  process y
  edge x y bytes=2
wcet x * 20ms
wcet y * 30ms
";

fn ftdes(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ftdes"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn info_prints_summary() {
    let path = write_problem("info.ftd", PIPELINE);
    let out = ftdes(&["info", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("processes: 2"));
    assert!(stdout.contains("k = 1"));
}

#[test]
fn solve_emits_tables_and_json() {
    let path = write_problem("solve.ftd", PIPELINE);
    let json = std::env::temp_dir()
        .join("ftdes-cli-tests")
        .join("solve.json");
    let out = ftdes(&[
        "solve",
        path.to_str().unwrap(),
        "--strategy",
        "mxr",
        "--time-ms",
        "200",
        "--gantt",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("schedulable: true"));
    assert!(stdout.contains("x/1"));
    assert!(stdout.contains("bus"), "gantt includes a bus row");
    let report = std::fs::read_to_string(&json).expect("json written");
    assert!(report.contains("\"strategy\": \"MXR\""));
}

#[test]
fn inject_validates_schedule() {
    let path = write_problem("inject.ftd", PIPELINE);
    let out = ftdes(&[
        "inject",
        path.to_str().unwrap(),
        "--scenarios",
        "50",
        "--time-ms",
        "200",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scenarios replayed"));
}

#[test]
fn bad_file_reports_line() {
    let path = write_problem("bad.ftd", "architecture A\nbogus directive\n");
    let out = ftdes(&["info", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
}

#[test]
fn unknown_flag_rejected() {
    let path = write_problem("flags.ftd", PIPELINE);
    let out = ftdes(&["solve", path.to_str().unwrap(), "--warp-speed"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn missing_arguments_show_usage() {
    let out = ftdes(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

const THREE_NODE: &str = r"
architecture A B C
fault_model k=1 mu=5ms
graph period=500ms deadline=400ms
  process x
  process y
  edge x y bytes=2
wcet x * 20ms
wcet y * 30ms
";

#[test]
fn repair_kills_a_node_and_replays() {
    let path = write_problem("repair.ftd", THREE_NODE);
    let out = ftdes(&[
        "repair",
        path.to_str().unwrap(),
        "--time-ms",
        "200",
        "--repair-ms",
        "200",
        "--scenarios",
        "20",
        "--delta",
        "kill-node:N2",
        "--delta",
        "rescale-wcet:110",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applying: kill-node N2 + rescale-wcet to 110%"));
    assert!(stdout.contains("repaired by rung"), "stdout: {stdout}");
    assert!(stdout.contains("scenarios replayed against the repaired schedule"));
}

#[test]
fn repair_rejects_malformed_delta() {
    let path = write_problem("repair-bad.ftd", THREE_NODE);
    let out = ftdes(&["repair", path.to_str().unwrap(), "--delta", "explode:N1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown delta op"));
}

#[test]
fn repair_requires_a_delta() {
    let path = write_problem("repair-none.ftd", THREE_NODE);
    let out = ftdes(&["repair", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--delta"));
}
