//! End-to-end crash drills of `ftdes sweep`: a real subprocess, a
//! real `abort()` at every registered fault point, a real resume —
//! and byte-identical `--out` files afterwards.
//!
//! The in-process crash matrices (`ftdes-serve` and `ftdes-bench`)
//! check the same property with `CrashMode::Error`; this suite closes
//! the loop at the process boundary: `FTDES_CRASH_AT` kills the
//! worker for real, and a fresh `ftdes sweep resume --takeover`
//! process recovers from nothing but the log file. It also pins the
//! CLI's classified exit codes (usage 2, data 65, I/O 74).

use std::path::PathBuf;
use std::process::{Command, Output};

use ftdes_serve::FAULT_POINTS;

/// A sweep small enough for the full fault-point loop to run in
/// seconds, with every job kind present.
const TINY_CHI: &str = "# tiny χ sweep for crash drills\n\
     sweep chi\n\
     processes 6\n\
     nodes 2\n\
     faults 1\n\
     mu_ms 5\n\
     seeds 1\n\
     chi_permille 50\n\
     max_checkpoints 2\n\
     max_iterations 2\n\
     faultsim_samples 8\n";

fn dir() -> PathBuf {
    let dir = std::env::temp_dir().join("ftdes-sweep-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn fresh(name: &str) -> PathBuf {
    let path = dir().join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn write_spec(name: &str, contents: &str) -> PathBuf {
    let path = dir().join(name);
    std::fs::write(&path, contents).expect("write spec");
    path
}

fn ftdes(args: &[&str], crash_at: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ftdes"));
    cmd.args(args);
    match crash_at {
        Some(point) => cmd.env("FTDES_CRASH_AT", point),
        None => cmd.env_remove("FTDES_CRASH_AT"),
    };
    cmd.output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// One uncrashed run's `--out` bytes — the identity every crashed
/// variant must reproduce.
fn baseline() -> Vec<u8> {
    let spec = write_spec("baseline.spec", TINY_CHI);
    let store = fresh("baseline.jsonl");
    let out = fresh("baseline.json");
    let run = ftdes(
        &[
            "sweep",
            "run",
            "--spec",
            spec.to_str().expect("utf8 path"),
            "--store",
            store.to_str().expect("utf8 path"),
            "--out",
            out.to_str().expect("utf8 path"),
        ],
        None,
    );
    assert!(run.status.success(), "baseline run: {}", stderr(&run));
    std::fs::read(&out).expect("baseline results")
}

#[test]
fn killed_at_every_fault_point_resume_reproduces_the_baseline_bytes() {
    let want = baseline();
    let spec = write_spec("matrix.spec", TINY_CHI);

    for &point in FAULT_POINTS {
        let tag = point.replace('.', "-");
        let store = fresh(&format!("matrix-{tag}.jsonl"));
        let out = fresh(&format!("matrix-{tag}.json"));
        let run = ftdes(
            &[
                "sweep",
                "run",
                "--spec",
                spec.to_str().expect("utf8 path"),
                "--store",
                store.to_str().expect("utf8 path"),
            ],
            Some(point),
        );
        if run.status.success() {
            // A healthy sweep never reaches the failure-path points;
            // completing uncrashed is the correct degenerate case.
            assert!(
                point.starts_with("fail.") || point.starts_with("quarantine."),
                "[{point}] only failure points may go unfired"
            );
        } else {
            // SIGABRT, not a clean exit: the harness really killed us.
            assert_eq!(
                run.status.code(),
                None,
                "[{point}] expected a signal kill, got exit {:?} ({})",
                run.status.code(),
                stderr(&run)
            );
        }

        let resume = ftdes(
            &[
                "sweep",
                "resume",
                "--store",
                store.to_str().expect("utf8 path"),
                "--takeover",
                "--out",
                out.to_str().expect("utf8 path"),
            ],
            None,
        );
        assert!(
            resume.status.success(),
            "[{point}] resume: {}",
            stderr(&resume)
        );
        let got = std::fs::read(&out).expect("resumed results");
        assert_eq!(
            got, want,
            "[{point}] resumed results differ from the uncrashed run"
        );
    }
}

#[test]
fn status_reports_progress_without_driving() {
    let spec = write_spec("status.spec", TINY_CHI);
    let store = fresh("status.jsonl");
    let run = ftdes(
        &[
            "sweep",
            "run",
            "--spec",
            spec.to_str().expect("utf8 path"),
            "--store",
            store.to_str().expect("utf8 path"),
        ],
        Some("claim.after_append"),
    );
    assert!(!run.status.success(), "crash drill must kill the run");

    let status = ftdes(
        &["sweep", "status", "--store", store.to_str().expect("utf8")],
        None,
    );
    assert!(status.status.success(), "status: {}", stderr(&status));
    let text = String::from_utf8_lossy(&status.stdout).into_owned();
    assert!(text.contains("sweep chi"), "stdout: {text}");
    assert!(text.contains("claimed by"), "dead lease visible: {text}");

    // Status must not have advanced the sweep: a second call sees the
    // identical picture.
    let again = ftdes(
        &["sweep", "status", "--store", store.to_str().expect("utf8")],
        None,
    );
    assert_eq!(status.stdout, again.stdout, "status is read-only");
}

#[test]
fn exit_codes_classify_failures() {
    // Usage errors: exit 2.
    for args in [
        vec!["sweep"],
        vec!["sweep", "conduct"],
        vec!["sweep", "run", "--warp-speed"],
        vec!["sweep", "run", "--store", "x.jsonl"], // missing --spec
    ] {
        let out = ftdes(&args, None);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
    }

    // Malformed sweep spec: exit 65 with a line number.
    let bad = write_spec("bad.spec", "sweep chi\nseeds nope\n");
    let store = fresh("bad.jsonl");
    let out = ftdes(
        &[
            "sweep",
            "run",
            "--spec",
            bad.to_str().expect("utf8 path"),
            "--store",
            store.to_str().expect("utf8 path"),
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(65), "{}", stderr(&out));
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));

    // Missing store file: exit 74.
    let gone = fresh("never-created.jsonl");
    let out = ftdes(
        &["sweep", "status", "--store", gone.to_str().expect("utf8")],
        None,
    );
    assert_eq!(out.status.code(), Some(74), "{}", stderr(&out));

    // A store damaged in the middle (not a crash signature): exit 65.
    let spec = write_spec("corrupt.spec", TINY_CHI);
    let store = fresh("corrupt.jsonl");
    let run = ftdes(
        &[
            "sweep",
            "run",
            "--spec",
            spec.to_str().expect("utf8 path"),
            "--store",
            store.to_str().expect("utf8 path"),
        ],
        None,
    );
    assert!(run.status.success(), "{}", stderr(&run));
    let mut bytes = std::fs::read(&store).expect("read store");
    bytes[2] = b'#';
    std::fs::write(&store, bytes).expect("damage store");
    let out = ftdes(
        &["sweep", "status", "--store", store.to_str().expect("utf8")],
        None,
    );
    assert_eq!(out.status.code(), Some(65), "{}", stderr(&out));
    assert!(stderr(&out).contains("corrupt"), "{}", stderr(&out));

    // Problem-file commands are classified too: unreadable file is
    // I/O, a malformed one is a data error.
    let out = ftdes(&["info", "no-such-problem.ftd"], None);
    assert_eq!(out.status.code(), Some(74), "{}", stderr(&out));
    let prob = write_spec("bad.ftd", "architecture A\nbogus directive\n");
    let out = ftdes(&["info", prob.to_str().expect("utf8 path")], None);
    assert_eq!(out.status.code(), Some(65), "{}", stderr(&out));
}
