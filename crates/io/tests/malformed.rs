//! Malformed-input matrix for the problem-file parser.
//!
//! Every case here is hostile or corrupt input that must come back as
//! a structured [`ParseProblemError`] — never a panic, never a
//! silently wrong model. Cases assert the error *kind* so regressions
//! in classification are caught, not just rejection.

use ftdes_io::{parse_problem, ErrorKind};

/// A valid prefix that cases below corrupt one line at a time.
const VALID: &str = "
architecture A B
fault_model k=1 mu=10ms
graph period=100ms
process x
process y
edge x y bytes=2
wcet x * 1ms
wcet y * 1ms
";

fn parse_err(text: &str) -> ftdes_io::ParseProblemError {
    match parse_problem(text) {
        Err(e) => e,
        Ok(spec) => match spec.into_problem() {
            Err(e) => e,
            Ok(_) => panic!("malformed input accepted:\n{text}"),
        },
    }
}

#[test]
fn accepts_the_valid_baseline() {
    let spec = parse_problem(VALID).expect("baseline parses");
    spec.into_problem().expect("baseline converts");
}

#[test]
fn rejects_negative_times() {
    for field in [
        "fault_model k=1 mu=-10ms",
        "graph period=-100ms",
        "process x release=-1ms",
    ] {
        let text = format!("architecture A\n{field}\n");
        let err = parse_err(&text);
        assert_eq!(err.kind, ErrorKind::InvalidValue, "{field}: {err}");
    }
}

#[test]
fn rejects_non_finite_times() {
    for bad in ["NaN", "inf", "-inf", "1e9ms", "0x10ms"] {
        let text = format!("architecture A\nfault_model k=1 mu={bad}\n");
        let err = parse_err(&text);
        assert_eq!(err.kind, ErrorKind::InvalidValue, "mu={bad}: {err}");
    }
}

#[test]
fn rejects_overflowing_times() {
    // Parses as u64 microseconds-per-ms but the multiply overflows.
    let text = "architecture A\nfault_model k=1 mu=99999999999999999999us\n";
    assert_eq!(parse_err(text).kind, ErrorKind::InvalidValue);
    let text = "architecture A\nfault_model k=1 mu=18446744073709551615ms\n";
    let err = parse_err(text);
    assert_eq!(err.kind, ErrorKind::Overflow, "{err}");
    assert!(err.message.contains("overflows"), "{err}");
}

#[test]
fn rejects_negative_counts() {
    for field in ["fault_model k=-1 mu=1ms", "bus slot_bytes=-4"] {
        let text = format!("architecture A\n{field}\n");
        let err = parse_err(&text);
        assert_eq!(err.kind, ErrorKind::InvalidValue, "{field}: {err}");
    }
    let text = format!("{VALID}bus slot_bytes=4\n");
    parse_problem(&text).expect("valid bus accepted");
}

#[test]
fn rejects_duplicate_node_ids() {
    let err = parse_err("architecture A B A\n");
    assert_eq!(err.kind, ErrorKind::Duplicate);
    assert!(err.message.contains('A'), "{err}");
}

#[test]
fn rejects_duplicate_process_ids() {
    let text = "
architecture A
fault_model k=0 mu=1ms
graph period=10ms
process x
process x
";
    let err = parse_err(text);
    assert_eq!(err.kind, ErrorKind::Duplicate);
    assert_eq!(err.line, 6, "points at the second declaration");
}

#[test]
fn rejects_ambiguous_cross_graph_references() {
    let text = "
architecture A
fault_model k=0 mu=1ms
graph period=10ms
process x
graph period=20ms
process x
wcet x * 1ms
";
    let err = parse_err(text);
    assert_eq!(err.kind, ErrorKind::Duplicate);
    assert!(err.message.contains("ambiguous"), "{err}");
}

#[test]
fn rejects_edges_referencing_unknown_processes() {
    for edge in ["edge x ghost", "edge ghost y"] {
        let text = format!("{VALID}{edge}\n");
        let err = parse_err(&text);
        assert_eq!(err.kind, ErrorKind::UnknownReference, "{edge}: {err}");
        assert!(err.message.contains("ghost"), "{err}");
    }
}

#[test]
fn rejects_wcet_and_constraints_on_unknown_names() {
    for line in [
        "wcet ghost * 1ms",
        "wcet x GhostNode 1ms",
        "fix_mapping ghost A",
        "fix_mapping x GhostNode",
        "fix_policy ghost replication",
        "bus order=A,GhostNode",
    ] {
        let text = format!("{VALID}{line}\n");
        let err = parse_err(&text);
        assert_eq!(err.kind, ErrorKind::UnknownReference, "{line}: {err}");
    }
}

#[test]
fn rejects_unmappable_processes_at_conversion() {
    // `y` never gets a WCET entry: the file parses line-by-line but
    // the assembled model is rejected instead of panicking later in
    // the solver.
    let text = "
architecture A
fault_model k=0 mu=1ms
graph period=10ms
process x
process y
wcet x * 1ms
";
    let spec = parse_problem(text).expect("parses line-by-line");
    let err = spec.into_problem().unwrap_err();
    assert_eq!(err.kind, ErrorKind::Structure);
    assert!(err.message.contains("\"y\""), "{err}");
}

#[test]
fn rejects_cyclic_graphs_at_conversion() {
    let text = "
architecture A
fault_model k=0 mu=1ms
graph period=10ms
process x
process y
edge x y
edge y x
wcet x * 1ms
wcet y * 1ms
";
    let err = parse_err(text);
    assert_eq!(err.kind, ErrorKind::Structure, "{err}");
}

#[test]
fn rejects_syntax_garbage() {
    for text in [
        "flux_capacitor on",
        "architecture A\nfault_model k=1\n",
        "architecture A\nfault_model mu=1ms\n",
        "architecture A\nfault_model k=1 mu=1ms warp=9\n",
        "architecture\n",
        "process orphan\n",
        "architecture A\nfault_model k=0 mu=1ms\ngraph\n",
        "architecture A\nfault_model k=0 mu=1ms\ngraph period=10ms\nwcet\n",
    ] {
        let err = parse_err(text);
        assert_eq!(err.kind, ErrorKind::Syntax, "{text:?}: {err}");
    }
}

#[test]
fn unknown_policy_is_an_invalid_value() {
    let text = format!("{VALID}fix_policy x voodoo\n");
    let err = parse_err(&text);
    assert_eq!(err.kind, ErrorKind::InvalidValue);
    assert!(err.message.contains("voodoo"), "{err}");
}

#[test]
fn errors_carry_the_offending_line() {
    let err = parse_err("architecture A\nfault_model k=1 mu=bogus\n");
    assert_eq!(err.line, 2);
    assert!(err.to_string().starts_with("line 2:"), "{err}");
}

// ---------------------------------------------------------------
// Sweep-spec parser: the same contract, the same taxonomy. Hostile
// sweep specs come back as structured `ParseSweepError`s — never a
// panic, never a silently defaulted knob.
// ---------------------------------------------------------------

use ftdes_io::sweep::{parse_sweep, ParseSweepError};

fn sweep_err(text: &str) -> ParseSweepError {
    match parse_sweep(text) {
        Err(e) => e,
        Ok(spec) => panic!("malformed sweep spec accepted as {spec:?}:\n{text}"),
    }
}

#[test]
fn sweep_accepts_the_valid_baselines() {
    parse_sweep("sweep chi\n").expect("bare chi header");
    parse_sweep("sweep repair\nseeds 2\nmax_iterations 10\n").expect("repair overrides");
}

#[test]
fn sweep_rejects_missing_or_garbled_headers() {
    for text in [
        "",
        "# only comments\n",
        "processes 6\n",
        "sweep\n",
        "sweep chi repair\n",
        "sweep chi\nprocesses\n",
        "sweep chi\nprocesses 1 2\n",
        "sweep chi\nwarp_factor 9\n",
    ] {
        let err = sweep_err(text);
        assert_eq!(err.kind, ErrorKind::Syntax, "{text:?}: {err}");
    }
}

#[test]
fn sweep_rejects_bad_values() {
    for text in [
        "sweep warp\n",
        "sweep chi\nseeds -1\n",
        "sweep chi\nseeds 1.5\n",
        "sweep chi\nprocesses many\n",
        "sweep chi\nchi_permille 10 x 30\n",
    ] {
        let err = sweep_err(text);
        assert_eq!(err.kind, ErrorKind::InvalidValue, "{text:?}: {err}");
    }
}

#[test]
fn sweep_distinguishes_overflow_from_noise() {
    let err = sweep_err("sweep chi\nseeds 99999999999999999999999\n");
    assert_eq!(err.kind, ErrorKind::Overflow, "{err}");
    assert_eq!(err.line, 2);
    assert!(err.message.contains("overflows"), "{err}");
}

#[test]
fn sweep_rejects_duplicate_keys() {
    let err = sweep_err("sweep chi\nseeds 1\nnodes 2\nseeds 3\n");
    assert_eq!(err.kind, ErrorKind::Duplicate, "{err}");
    assert_eq!(err.line, 4);
}

#[test]
fn sweep_rejects_cross_kind_keys_as_unknown_references() {
    let err = sweep_err("sweep repair\nchi_permille 10\n");
    assert_eq!(err.kind, ErrorKind::UnknownReference, "{err}");
    let err = sweep_err("sweep chi\ncomm_processes 12\n");
    assert_eq!(err.kind, ErrorKind::UnknownReference, "{err}");
    assert!(
        err.message.contains("repair"),
        "names the right kind: {err}"
    );
}

#[test]
fn sweep_rejects_degenerate_specs_as_structure_errors() {
    for text in [
        "sweep chi\nseeds 0\n",
        "sweep chi\nprocesses 0\n",
        "sweep chi\nmax_iterations 0\n",
        "sweep chi\nmax_checkpoints 0\n",
        "sweep repair\nnodes 0\n",
    ] {
        let err = sweep_err(text);
        assert_eq!(err.kind, ErrorKind::Structure, "{text:?}: {err}");
    }
}

#[test]
fn sweep_errors_carry_the_offending_line() {
    let err = sweep_err("sweep chi\n\n# pad\nnodes zero\n");
    assert_eq!(err.line, 4);
    assert!(err.to_string().starts_with("line 4:"), "{err}");
}
