//! Property test: generated workloads survive a full
//! write-problem / parse-problem / solve round trip.

use proptest::prelude::*;

use ftdes_core::problem::Problem;
use ftdes_gen::paper_workload;
use ftdes_io::format::{parse_problem, ProblemSpec};
use ftdes_io::write::write_problem;
use ftdes_model::application::Application;
use ftdes_model::architecture::Architecture;
use ftdes_model::fault::FaultModel;
use ftdes_model::time::Time;
use ftdes_ttp::config::BusConfig;

/// Wraps a generated workload in a `ProblemSpec` the writer accepts.
fn spec_from_workload(processes: usize, nodes: usize, k: u32, seed: u64) -> ProblemSpec {
    let arch = Architecture::with_node_count(nodes);
    let mut w = paper_workload(processes, &arch, seed);
    // The writer needs unique names; generated graphs use P<i>.
    for i in 0..w.graph.process_count() {
        let id = ftdes_model::ids::ProcessId::new(i as u32);
        w.graph.process_mut(id).name = format!("p{i}");
    }
    let largest = w
        .graph
        .edges()
        .iter()
        .map(|e| e.message.size)
        .max()
        .unwrap_or(1)
        .max(1);
    let bus = BusConfig::initial(&arch, largest, Time::from_us(2_500)).unwrap();
    let period = Time::from_ms(100_000);
    ProblemSpec {
        arch,
        fault_model: FaultModel::new(k, Time::from_ms(5)),
        bus,
        application: Application::single(w.graph, period, period),
        wcet: vec![w.wcet],
        fixed_mappings: Vec::new(),
        fixed_policies: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn write_parse_round_trip(
        processes in 2usize..16,
        nodes in 1usize..5,
        k in 0u32..4,
        seed in 0u64..1_000,
    ) {
        let spec = spec_from_workload(processes, nodes, k, seed);
        let text = write_problem(&spec);
        let reparsed = parse_problem(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{text}"));
        prop_assert_eq!(&reparsed.arch, &spec.arch);
        prop_assert_eq!(reparsed.fault_model, spec.fault_model);
        prop_assert_eq!(&reparsed.bus, &spec.bus);
        prop_assert_eq!(&reparsed.wcet, &spec.wcet);
        prop_assert_eq!(
            &reparsed.application.specs()[0].graph,
            &spec.application.specs()[0].graph
        );
    }

    #[test]
    fn round_tripped_problems_schedule_identically(
        processes in 2usize..12,
        nodes in 1usize..4,
        k in 0u32..3,
        seed in 0u64..1_000,
    ) {
        let spec = spec_from_workload(processes, nodes, k, seed);
        let text = write_problem(&spec);
        let (p1, _) = spec.into_problem().unwrap();
        let (p2, _) = parse_problem(&text).unwrap().into_problem().unwrap();
        // Schedule the same deterministic initial design on both.
        let d1 = ftdes_core::initial::initial_mpa(&p1, ftdes_core::PolicySpace::Mixed).unwrap();
        let d2 = ftdes_core::initial::initial_mpa(&p2, ftdes_core::PolicySpace::Mixed).unwrap();
        prop_assert_eq!(&d1, &d2, "identical problems give identical initial designs");
        let s1 = Problem::evaluate(&p1, &d1).unwrap();
        let s2 = Problem::evaluate(&p2, &d2).unwrap();
        prop_assert_eq!(s1.length(), s2.length());
        prop_assert_eq!(s1.cost(), s2.cost());
    }
}
