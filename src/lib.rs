//! # ftdes — fault-tolerant distributed embedded system design
//!
//! A complete, self-contained implementation of *“Design Optimization
//! of Time- and Cost-Constrained Fault-Tolerant Distributed Embedded
//! Systems”* (Izosimov, Pop, Eles, Peng — DATE 2005): given a set of
//! periodic process graphs mapped onto nodes connected by a
//! time-triggered (TDMA) bus, and a fault hypothesis of at most `k`
//! transient faults of duration `µ` per cycle, find a mapping and a
//! per-process mix of **re-execution** and **active replication**
//! such that a static cyclic schedule tolerates every admissible
//! fault scenario and still meets all deadlines — without adding
//! hardware.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — application graphs, architectures, WCET tables,
//!   fault models, policies and designs,
//! * [`ttp`] — the TDMA bus: slots, rounds, frame packing, MEDL,
//! * [`sched`] — the fault-tolerance-aware list scheduler
//!   (transparent re-execution, slack sharing, contingency
//!   schedules),
//! * [`faultsim`] — a replay engine that injects concrete fault
//!   scenarios, validates the analytic worst case, and drives
//!   end-to-end degrade-and-repair recovery scenarios,
//! * [`core`] — the optimization strategies (MXR / MX / MR / SFX /
//!   NFT: initial construction, greedy improvement, tabu search) and
//!   the problem-delta repair ladder for graceful degradation,
//! * [`gen`] — synthetic workload generation and the 32-process
//!   cruise-controller case study,
//! * [`serve`] — crash-safe sweep orchestration: experiment DAGs over
//!   an append-only event log, lease-based claims, bounded retries
//!   with quarantine, and a crash-injection harness whose contract is
//!   *resume ≡ uncrashed, bit-identical*,
//! * [`mod@bench`] — the experiment harness regenerating the paper's
//!   tables, plus the sweep-job adapters that map χ and repair
//!   sweeps onto [`serve`] job DAGs.
//!
//! # Quickstart
//!
//! ```
//! use ftdes::prelude::*;
//!
//! // A three-process pipeline on a two-node architecture.
//! let mut g = ProcessGraph::new(0.into());
//! let sense = g.add_process();
//! let compute = g.add_process();
//! let actuate = g.add_process();
//! g.add_edge(sense, compute, Message::new(4))?;
//! g.add_edge(compute, actuate, Message::new(2))?;
//!
//! let mut wcet = WcetTable::new();
//! for p in [sense, compute, actuate] {
//!     wcet.set(p, 0.into(), Time::from_ms(20));
//!     wcet.set(p, 1.into(), Time::from_ms(25));
//! }
//!
//! let arch = Architecture::with_node_count(2);
//! let fault_model = FaultModel::new(1, Time::from_ms(5));
//! let bus = BusConfig::initial(&arch, 4, Time::from_us(2_500))?;
//! let problem = Problem::new(g, arch, wcet, fault_model, bus);
//!
//! let outcome = optimize(&problem, Strategy::Mxr, &SearchConfig::experiments())?;
//! println!("worst-case delay: {}", outcome.length());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use ftdes_bench as bench;
pub use ftdes_core as core;
pub use ftdes_faultsim as faultsim;
pub use ftdes_gen as gen;
pub use ftdes_model as model;
pub use ftdes_sched as sched;
pub use ftdes_serve as serve;
pub use ftdes_ttp as ttp;

/// One-stop imports for applications using the library.
pub mod prelude {
    pub use ftdes_core::prelude::*;
    pub use ftdes_faultsim::{
        adversarial_scenario, degrade_and_repair, degrade_and_repair_adversarial,
        enumerate_scenarios, length_distribution, most_loaded_node, random_scenarios, simulate,
        DegradeError, DegradeReport, FaultHit, FaultScenario, LengthDistribution,
    };
    pub use ftdes_gen::{
        comm_heavy, cruise_controller, generate, paper_workload, CommHeavyParams, WorkloadParams,
    };
    pub use ftdes_model::prelude::*;
    pub use ftdes_sched::{list_schedule, Schedule, ScheduleCost};
    pub use ftdes_ttp::{BusConfig, BusSchedule, MessageTag};
}
